"""Reusable temporal-logic specification patterns.

The paper's driving rule book (Appendix C) repeatedly uses a handful of
shapes — "always, if trigger then eventually response", "never do X while Y",
etc.  These helpers build those shapes from atom names so domain modules stay
readable and new rule books are easy to write.
"""

from __future__ import annotations

from repro.logic.ast import (
    And,
    Atom,
    Eventually,
    Formula,
    Always,
    Implies,
    Not,
    Or,
    conjunction,
    disjunction,
)


def response(trigger: str | Formula, reaction: str | Formula) -> Formula:
    """``□(trigger → ♢ reaction)`` — e.g. Φ1: pedestrian ⇒ eventually stop."""
    return Always(Implies(_formula(trigger), Eventually(_formula(reaction))))


def prohibition(condition: str | Formula, action: str | Formula) -> Formula:
    """``□(condition → ¬action)`` — e.g. Φ3: no green light ⇒ do not go straight."""
    return Always(Implies(_formula(condition), Not(_formula(action))))


def invariant(condition: str | Formula) -> Formula:
    """``□ condition`` — a safety invariant."""
    return Always(_formula(condition))


def never(condition: str | Formula) -> Formula:
    """``□ ¬condition``."""
    return Always(Not(_formula(condition)))


def one_of(*atoms: str) -> Formula:
    """``□(a1 ∨ ... ∨ an)`` — e.g. Φ6: some action is always chosen."""
    return Always(disjunction([Atom(a) for a in atoms]))


def eventually_given(trigger: str | Formula, outcome: str | Formula) -> Formula:
    """``♢ trigger → ♢ outcome`` — e.g. Φ7."""
    return Implies(Eventually(_formula(trigger)), Eventually(_formula(outcome)))


def conditional_requirement(action: str | Formula, requirement: str | Formula) -> Formula:
    """``□(action → requirement)`` — acting requires the precondition."""
    return Always(Implies(_formula(action), _formula(requirement)))


def all_of(*formulas: Formula) -> Formula:
    """Conjunction of several specifications (useful for combined checks)."""
    return conjunction(list(formulas))


def _formula(value: str | Formula) -> Formula:
    if isinstance(value, Formula):
        return value
    return Atom(value)
