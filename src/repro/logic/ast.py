"""Abstract syntax tree for linear temporal logic (LTL).

The grammar follows the paper's Appendix A:

    φ := p | ¬φ | φ ∨ φ | φ ∧ φ | φ → φ | ◦φ | ♢φ | □φ | φ U φ | φ R φ

Formulas are immutable dataclasses; convenience constructors live at module
level (``G``, ``F``, ``X``, ``U``, ...) so specifications read close to their
mathematical form, e.g. ``G(Implies(Atom("pedestrian"), F(Atom("stop"))))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.automata.alphabet import canonical


class Formula:
    """Base class of all LTL formula nodes."""

    def atoms(self) -> frozenset:
        """All atomic propositions occurring in the formula."""
        return frozenset(node.name for node in self.walk() if isinstance(node, Atom))

    def walk(self) -> Iterator["Formula"]:
        """Pre-order traversal of the syntax tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple:
        """Immediate sub-formulas."""
        return ()

    def is_propositional(self) -> bool:
        """True if the formula contains no temporal operator."""
        return not any(isinstance(n, (Next, Eventually, Always, Until, Release)) for n in self.walk())

    def size(self) -> int:
        """Number of syntax-tree nodes."""
        return sum(1 for _ in self.walk())

    # Operator sugar for building formulas programmatically.
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The constant ``true``."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """The constant ``false``."""

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Atom(Formula):
    """An atomic proposition (canonicalised name)."""

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", canonical(self.name))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    """Negation ``¬φ``."""

    operand: Formula

    def children(self) -> tuple:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!{_wrap(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction ``φ ∧ ψ``."""

    left: Formula
    right: Formula

    def children(self) -> tuple:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_wrap(self.left)} & {_wrap(self.right)}"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction ``φ ∨ ψ``."""

    left: Formula
    right: Formula

    def children(self) -> tuple:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_wrap(self.left)} | {_wrap(self.right)}"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``φ → ψ``."""

    left: Formula
    right: Formula

    def children(self) -> tuple:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_wrap(self.left)} -> {_wrap(self.right)}"


@dataclass(frozen=True)
class Next(Formula):
    """Next ``◦φ`` (also written ``X φ``)."""

    operand: Formula

    def children(self) -> tuple:
        return (self.operand,)

    def __str__(self) -> str:
        return f"X {_wrap(self.operand)}"


@dataclass(frozen=True)
class Eventually(Formula):
    """Eventually ``♢φ`` (also written ``F φ``)."""

    operand: Formula

    def children(self) -> tuple:
        return (self.operand,)

    def __str__(self) -> str:
        return f"F {_wrap(self.operand)}"


@dataclass(frozen=True)
class Always(Formula):
    """Always ``□φ`` (also written ``G φ``)."""

    operand: Formula

    def children(self) -> tuple:
        return (self.operand,)

    def __str__(self) -> str:
        return f"G {_wrap(self.operand)}"


@dataclass(frozen=True)
class Until(Formula):
    """Until ``φ U ψ``."""

    left: Formula
    right: Formula

    def children(self) -> tuple:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_wrap(self.left)} U {_wrap(self.right)}"


@dataclass(frozen=True)
class Release(Formula):
    """Release ``φ R ψ`` — the dual of Until, used by negation normal form."""

    left: Formula
    right: Formula

    def children(self) -> tuple:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_wrap(self.left)} R {_wrap(self.right)}"


def _wrap(formula: Formula) -> str:
    """Parenthesise binary sub-formulas for unambiguous printing."""
    text = str(formula)
    if isinstance(formula, (And, Or, Implies, Until, Release)):
        return f"({text})"
    return text


# --------------------------------------------------------------------------- #
# Convenience constructors mirroring the paper's notation.
# --------------------------------------------------------------------------- #

TRUE = TrueFormula()
FALSE = FalseFormula()


def A(name: str) -> Atom:
    """Atomic proposition constructor (short alias)."""
    return Atom(name)


def G(operand: Formula) -> Always:
    """``□`` (always)."""
    return Always(operand)


def F(operand: Formula) -> Eventually:
    """``♢`` (eventually)."""
    return Eventually(operand)


def X(operand: Formula) -> Next:
    """``◦`` (next)."""
    return Next(operand)


def U(left: Formula, right: Formula) -> Until:
    """``U`` (until)."""
    return Until(left, right)


def R(left: Formula, right: Formula) -> Release:
    """``R`` (release)."""
    return Release(left, right)


def Neg(operand: Formula) -> Not:
    """``¬`` (negation)."""
    return Not(operand)


def conjunction(formulas: list) -> Formula:
    """Fold a list of formulas into a conjunction (``true`` if empty)."""
    if not formulas:
        return TRUE
    result = formulas[0]
    for f in formulas[1:]:
        result = And(result, f)
    return result


def disjunction(formulas: list) -> Formula:
    """Fold a list of formulas into a disjunction (``false`` if empty)."""
    if not formulas:
        return FALSE
    result = formulas[0]
    for f in formulas[1:]:
        result = Or(result, f)
    return result
