"""LTL → Büchi automaton translation (tableau construction).

Implements the classic on-the-fly construction of Gerth, Peled, Vardi and
Wolper (GPVW, 1995): the formula (in negation normal form over
{literals, ∧, ∨, X, U, R}) is expanded into a graph of *nodes*, each carrying
the obligations ``Old`` (processed formulas), ``New`` (pending formulas) and
``Next`` (obligations for the successor position).  The nodes form a
generalized Büchi automaton with one acceptance set per ``Until`` subformula;
degeneralization yields an ordinary Büchi automaton whose transition into a
node is labeled by the literals of that node.

The resulting automaton reads infinite words over ``2^AP`` and accepts exactly
the models of the formula — the property the model checker relies on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.automata.buchi import BuchiAutomaton, GeneralizedBuchiAutomaton, LabelConstraint
from repro.logic.ast import (
    And,
    Atom,
    FalseFormula,
    Formula,
    Next,
    Not,
    Or,
    Release,
    TrueFormula,
    Until,
)
from repro.logic.nnf import to_nnf

#: Name of the artificial initial node used by the construction.
INIT_NODE = "__init__"


@dataclass
class _Node:
    """A tableau node of the GPVW construction."""

    node_id: int
    incoming: set = field(default_factory=set)
    new: set = field(default_factory=set)
    old: set = field(default_factory=set)
    next: set = field(default_factory=set)


class _Translator:
    """Stateful GPVW expansion; one instance per translated formula."""

    def __init__(self) -> None:
        self._counter = itertools.count()
        self.nodes: dict[int, _Node] = {}
        # Committed nodes indexed by their (Old, Next) obligations.  The merge
        # step of GPVW folds a fully-expanded node into the existing node with
        # identical obligations; at most one committed node per key can exist
        # (commit only happens after this lookup misses), so the dict lookup
        # replaces the original O(n) scan over all committed nodes without
        # changing which node absorbs the merge.
        self._by_obligations: dict[tuple, _Node] = {}

    def fresh_node(self, incoming: set, new: set, old: set, nxt: set) -> _Node:
        node = _Node(next(self._counter), set(incoming), set(new), set(old), set(nxt))
        return node

    def translate(self, formula: Formula) -> list:
        initial = self.fresh_node({INIT_NODE}, {formula}, set(), set())
        self.expand(initial)
        return list(self.nodes.values())

    # ------------------------------------------------------------------ #
    def expand(self, node: _Node) -> None:
        if not node.new:
            # All obligations for this position processed: merge or commit.
            key = (frozenset(node.old), frozenset(node.next))
            existing = self._by_obligations.get(key)
            if existing is not None:
                existing.incoming |= node.incoming
                return
            self.nodes[node.node_id] = node
            self._by_obligations[key] = node
            successor = self.fresh_node({node.node_id}, set(node.next), set(), set())
            self.expand(successor)
            return

        formula = node.new.pop()

        if isinstance(formula, TrueFormula):
            node.old.add(formula)
            self.expand(node)
            return
        if isinstance(formula, FalseFormula):
            return  # contradiction: discard this node
        if isinstance(formula, (Atom, Not)):
            if self._contradicts(formula, node.old):
                return
            node.old.add(formula)
            self.expand(node)
            return
        if isinstance(formula, And):
            node.old.add(formula)
            for part in (formula.left, formula.right):
                if part not in node.old:
                    node.new.add(part)
            self.expand(node)
            return
        if isinstance(formula, Next):
            node.old.add(formula)
            node.next.add(formula.operand)
            self.expand(node)
            return
        if isinstance(formula, Or):
            self._split(node, formula, new1={formula.left}, next1=set(), new2={formula.right})
            return
        if isinstance(formula, Until):
            # φ U ψ  ≡  ψ ∨ (φ ∧ X(φ U ψ))
            self._split(node, formula, new1={formula.left}, next1={formula}, new2={formula.right})
            return
        if isinstance(formula, Release):
            # φ R ψ  ≡  (φ ∧ ψ) ∨ (ψ ∧ X(φ R ψ))
            self._split(node, formula, new1={formula.right}, next1={formula}, new2={formula.left, formula.right})
            return
        raise TypeError(f"formula not in negation normal form: {formula!r}")

    def _split(self, node: _Node, formula: Formula, *, new1: set, next1: set, new2: set) -> None:
        """Branch the node into the two disjuncts of an Or/Until/Release expansion."""
        node1 = self.fresh_node(
            node.incoming,
            node.new | (new1 - node.old),
            node.old | {formula},
            node.next | next1,
        )
        node2 = self.fresh_node(
            node.incoming,
            node.new | (new2 - node.old),
            node.old | {formula},
            set(node.next),
        )
        self.expand(node1)
        self.expand(node2)

    @staticmethod
    def _contradicts(literal: Formula, old: set) -> bool:
        if isinstance(literal, Atom):
            return Not(literal) in old
        if isinstance(literal, Not) and isinstance(literal.operand, Atom):
            return literal.operand in old
        return False


def formula_key(formula: Formula) -> str:
    """Canonical text of a formula, usable as a construction-memo key.

    :meth:`Formula.__str__ <repro.logic.ast.Formula>` parenthesizes every
    binary operator, so distinct formula trees never render identically —
    two formulas share a key exactly when they are structurally equal.  The
    fast path's :class:`~repro.modelcheck.fastpath.BuchiMemo` keys its
    translations (and their persisted shard entries) on this string.
    """
    return str(formula)


def _literal_constraint(old: set) -> LabelConstraint:
    """The conjunction of literals a node requires of the symbol it reads."""
    positive = {f.name for f in old if isinstance(f, Atom)}
    negative = {f.operand.name for f in old if isinstance(f, Not) and isinstance(f.operand, Atom)}
    return LabelConstraint(frozenset(positive), frozenset(negative))


def ltl_to_generalized_buchi(formula: Formula, name: str = "gba") -> GeneralizedBuchiAutomaton:
    """Translate an LTL formula (any form) into a generalized Büchi automaton.

    The returned automaton's transition *into* a node is labeled with the
    node's literal constraint; an artificial initial state ``INIT_NODE``
    precedes the first position.
    """
    nnf = to_nnf(formula)
    translator = _Translator()
    nodes = translator.translate(nnf)

    gba = GeneralizedBuchiAutomaton(name=name)
    gba.add_state(INIT_NODE, initial=True)
    for node in nodes:
        gba.add_state(node.node_id)

    for node in nodes:
        constraint = _literal_constraint(node.old)
        for source in node.incoming:
            gba.add_transition(source, constraint, node.node_id)

    # One acceptance set per Until subformula of the NNF:
    #   F_{φUψ} = { nodes q : ψ ∈ Old(q) or (φUψ) ∉ Old(q) }.
    until_subformulas = [f for f in nnf.walk() if isinstance(f, Until)]
    seen: list = []
    for until in until_subformulas:
        if until in seen:
            continue
        seen.append(until)
        acceptance = {
            node.node_id
            for node in nodes
            if until.right in node.old or until not in node.old
        }
        gba.acceptance_sets.append(acceptance)
    return gba


def ltl_to_buchi(formula: Formula, name: str = "buchi") -> BuchiAutomaton:
    """Translate an LTL formula into a (degeneralized) Büchi automaton."""
    gba = ltl_to_generalized_buchi(formula, name=f"{name}_gba")
    nba = gba.degeneralize()
    nba.name = name
    return nba
