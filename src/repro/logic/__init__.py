"""Linear temporal logic: AST, parser, normal forms, automata translation, LTLf.

Import layering note: :mod:`repro.logic.ltl2buchi` depends on
:mod:`repro.automata.buchi`; the automata package never imports from
:mod:`repro.logic`, so there is no import cycle.
"""

from repro.logic.ast import (
    FALSE,
    TRUE,
    A,
    And,
    Atom,
    Eventually,
    F,
    FalseFormula,
    Formula,
    G,
    Always,
    Implies,
    Neg,
    Next,
    Not,
    Or,
    R,
    Release,
    TrueFormula,
    U,
    Until,
    X,
    conjunction,
    disjunction,
)
from repro.logic.finite_trace import evaluate_trace, normalize_trace, satisfaction_fraction
from repro.logic.ltl2buchi import ltl_to_buchi, ltl_to_generalized_buchi
from repro.logic.nnf import is_nnf, negate, simplify_propositional, to_nnf
from repro.logic.parser import parse_ltl

__all__ = [
    "FALSE",
    "TRUE",
    "A",
    "And",
    "Atom",
    "Eventually",
    "F",
    "FalseFormula",
    "Formula",
    "G",
    "Always",
    "Implies",
    "Neg",
    "Next",
    "Not",
    "Or",
    "R",
    "Release",
    "TrueFormula",
    "U",
    "Until",
    "X",
    "conjunction",
    "disjunction",
    "evaluate_trace",
    "normalize_trace",
    "satisfaction_fraction",
    "ltl_to_buchi",
    "ltl_to_generalized_buchi",
    "is_nnf",
    "negate",
    "simplify_propositional",
    "to_nnf",
    "parse_ltl",
]
