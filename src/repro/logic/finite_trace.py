"""LTL semantics over finite traces (LTLf) — the empirical-evaluation checker.

The paper's empirical evaluation (Section 4.2) runs a controller in the
simulator, collects a finite sequence of proposition/action sets
``(2^P × 2^PA)^N`` and checks each sequence against the specifications.  Those
sequences are finite, so we evaluate the specifications under the standard
finite-trace (LTLf) semantics:

* ``X φ`` is *strong* next: false at the last position.
* ``G φ`` holds if φ holds at every remaining position.
* ``F φ`` holds if φ holds at some remaining position.
* ``φ U ψ`` requires ψ at some position with φ holding until then.
* ``φ R ψ`` is the dual: ψ holds up to and including the first φ-position,
  or for the whole remaining trace.
"""

from __future__ import annotations

from typing import Sequence

from repro.automata.alphabet import Symbol, make_symbol
from repro.logic.ast import (
    And,
    Atom,
    Eventually,
    FalseFormula,
    Formula,
    Always,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TrueFormula,
    Until,
)

Trace = Sequence  # Sequence[Symbol]


def normalize_trace(trace: Sequence) -> list:
    """Canonicalise a trace: every step becomes a frozenset of canonical atoms."""
    out = []
    for step in trace:
        if isinstance(step, frozenset):
            out.append(step)
        else:
            out.append(make_symbol(step))
    return out


def evaluate_at(formula: Formula, trace: Sequence, position: int) -> bool:
    """Evaluate ``formula`` on ``trace`` starting at ``position`` (LTLf semantics)."""
    n = len(trace)
    if position >= n:
        # The empty suffix: only `true`, `G φ` and `φ R ψ` hold vacuously.
        if isinstance(formula, TrueFormula):
            return True
        if isinstance(formula, (Always, Release)):
            return True
        if isinstance(formula, Not):
            return not evaluate_at(formula.operand, trace, position)
        if isinstance(formula, And):
            return evaluate_at(formula.left, trace, position) and evaluate_at(formula.right, trace, position)
        if isinstance(formula, Or):
            return evaluate_at(formula.left, trace, position) or evaluate_at(formula.right, trace, position)
        if isinstance(formula, Implies):
            return (not evaluate_at(formula.left, trace, position)) or evaluate_at(formula.right, trace, position)
        return False

    symbol: Symbol = trace[position]
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Atom):
        return formula.name in symbol
    if isinstance(formula, Not):
        return not evaluate_at(formula.operand, trace, position)
    if isinstance(formula, And):
        return evaluate_at(formula.left, trace, position) and evaluate_at(formula.right, trace, position)
    if isinstance(formula, Or):
        return evaluate_at(formula.left, trace, position) or evaluate_at(formula.right, trace, position)
    if isinstance(formula, Implies):
        return (not evaluate_at(formula.left, trace, position)) or evaluate_at(formula.right, trace, position)
    if isinstance(formula, Next):
        return position + 1 < n and evaluate_at(formula.operand, trace, position + 1)
    if isinstance(formula, Eventually):
        return any(evaluate_at(formula.operand, trace, k) for k in range(position, n))
    if isinstance(formula, Always):
        return all(evaluate_at(formula.operand, trace, k) for k in range(position, n))
    if isinstance(formula, Until):
        for k in range(position, n):
            if evaluate_at(formula.right, trace, k):
                return all(evaluate_at(formula.left, trace, j) for j in range(position, k))
        return False
    if isinstance(formula, Release):
        # ψ must hold up to and including the first position where φ holds,
        # or throughout the remaining trace if φ never holds.
        for k in range(position, n):
            if not evaluate_at(formula.right, trace, k):
                return any(evaluate_at(formula.left, trace, j) for j in range(position, k))
        return True
    raise TypeError(f"unknown formula node {formula!r}")


def evaluate_trace(formula: Formula, trace: Sequence) -> bool:
    """Evaluate ``formula`` over a whole finite trace (from position 0).

    An empty trace satisfies only formulas that hold vacuously (``true``,
    ``G``-rooted and ``R``-rooted formulas).
    """
    trace = normalize_trace(trace)
    return evaluate_at(formula, trace, 0)


def satisfaction_fraction(formula: Formula, traces: Sequence) -> float:
    """Fraction ``P_Φ`` of traces satisfying the formula (Eq. 2 of the paper)."""
    traces = list(traces)
    if not traces:
        raise ValueError("satisfaction_fraction requires at least one trace")
    satisfied = sum(1 for t in traces if evaluate_trace(formula, t))
    return satisfied / len(traces)
