"""Parser for LTL formulas written as text.

Accepts both ASCII and the Unicode notation used in the paper:

=============  =======================
ASCII          Unicode / paper
=============  =======================
``G``          ``□`` (always)
``F``          ``♢``, ``◇`` (eventually)
``X``          ``◦``, ``○`` (next)
``U``          ``U`` (until)
``R``          ``R`` (release)
``!``          ``¬``
``&``          ``∧``
``|``          ``∨``
``->``         ``→``
``<->``        ``↔``
=============  =======================

Operator precedence (loosest to tightest):
``<->``  <  ``->``  <  ``|``  <  ``&``  <  ``U``/``R``  <  unary (``!``, ``X``, ``F``, ``G``).
``->`` and ``U`` associate to the right, as is conventional.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import LTLSyntaxError
from repro.logic.ast import (
    And,
    Atom,
    Eventually,
    FalseFormula,
    Formula,
    Always,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TrueFormula,
    Until,
)

_UNICODE_REPLACEMENTS = {
    "□": " G ",
    "◻": " G ",
    "[]": " G ",
    "♢": " F ",
    "◇": " F ",
    "<>": " F ",
    "◦": " X ",
    "○": " X ",
    "¬": " ! ",
    "∧": " & ",
    "∨": " | ",
    "→": " -> ",
    "↔": " <-> ",
    "−>": " -> ",
}

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<iff><->)|(?P<implies>->)"
    r"|(?P<and>&&?|\band\b)|(?P<or>\|\|?|\bor\b)|(?P<not>!|\bnot\b)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_\- ]*?(?=\s*(?:\)|\(|&|\||!|->|<->|$)|\s+[A-Z]\b))"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_]*))"
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str


_KEYWORDS = {"G", "F", "X", "U", "R", "W"}


def _tokenize(text: str) -> list:
    """Tokenize an LTL formula string.

    Proposition names may contain spaces (as in the paper, e.g. ``car from
    left``); a run of lowercase words is folded into a single atom, while the
    single uppercase letters ``G F X U R`` are temporal operators.
    """
    for src, dst in _UNICODE_REPLACEMENTS.items():
        text = text.replace(src, dst)
    # Normalise punctuation spacing so simple splitting is possible.  "<->"
    # must be protected before "->" is padded, or it would be torn apart.
    for ch in "()!&|":
        text = text.replace(ch, f" {ch} ")
    text = text.replace("<->", "  ")
    text = text.replace("->", " -> ")
    text = text.replace("", "<->")
    raw = text.split()

    tokens: list[_Token] = []
    atom_buffer: list[str] = []

    def flush() -> None:
        if atom_buffer:
            tokens.append(_Token("atom", "_".join(atom_buffer)))
            atom_buffer.clear()

    for piece in raw:
        if piece in {"(", ")"}:
            flush()
            tokens.append(_Token("lparen" if piece == "(" else "rparen", piece))
        elif piece in {"&", "&&", "and", "AND"}:
            flush()
            tokens.append(_Token("and", "&"))
        elif piece in {"|", "||", "or", "OR"}:
            flush()
            tokens.append(_Token("or", "|"))
        elif piece in {"!", "not", "NOT"}:
            flush()
            tokens.append(_Token("not", "!"))
        elif piece == "->":
            flush()
            tokens.append(_Token("implies", "->"))
        elif piece == "<->":
            flush()
            tokens.append(_Token("iff", "<->"))
        elif piece in _KEYWORDS:
            flush()
            tokens.append(_Token("op", piece))
        elif piece.lower() in {"true", "false"}:
            flush()
            tokens.append(_Token("const", piece.lower()))
        else:
            atom_buffer.append(piece.lower())
    flush()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list, source: str):
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise LTLSyntaxError(f"unexpected end of formula: {self.source!r}")
        self.pos += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.advance()
        if token.kind != kind:
            raise LTLSyntaxError(f"expected {kind} but found {token.text!r} in {self.source!r}")
        return token

    # Grammar: iff -> implies -> or -> and -> until -> unary -> primary
    def parse(self) -> Formula:
        formula = self.parse_iff()
        if self.peek() is not None:
            raise LTLSyntaxError(f"trailing tokens after formula in {self.source!r}: {self.peek().text!r}")
        return formula

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        while self.peek() is not None and self.peek().kind == "iff":
            self.advance()
            right = self.parse_implies()
            left = And(Implies(left, right), Implies(right, left))
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.peek() is not None and self.peek().kind == "implies":
            self.advance()
            right = self.parse_implies()  # right associative
            return Implies(left, right)
        return left

    def parse_or(self) -> Formula:
        left = self.parse_and()
        while self.peek() is not None and self.peek().kind == "or":
            self.advance()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Formula:
        left = self.parse_until()
        while self.peek() is not None and self.peek().kind == "and":
            self.advance()
            left = And(left, self.parse_until())
        return left

    def parse_until(self) -> Formula:
        left = self.parse_unary()
        token = self.peek()
        if token is not None and token.kind == "op" and token.text in {"U", "R", "W"}:
            self.advance()
            right = self.parse_until()  # right associative
            if token.text == "U":
                return Until(left, right)
            if token.text == "R":
                return Release(left, right)
            # Weak until: φ W ψ ≡ (φ U ψ) ∨ G φ
            return Or(Until(left, right), Always(left))
        return left

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token is None:
            raise LTLSyntaxError(f"unexpected end of formula: {self.source!r}")
        if token.kind == "not":
            self.advance()
            return Not(self.parse_unary())
        if token.kind == "op" and token.text in {"G", "F", "X"}:
            self.advance()
            operand = self.parse_unary()
            return {"G": Always, "F": Eventually, "X": Next}[token.text](operand)
        return self.parse_primary()

    def parse_primary(self) -> Formula:
        token = self.advance()
        if token.kind == "lparen":
            inner = self.parse_iff()
            closing = self.advance()
            if closing.kind != "rparen":
                raise LTLSyntaxError(f"unbalanced parentheses in {self.source!r}")
            return inner
        if token.kind == "const":
            return TrueFormula() if token.text == "true" else FalseFormula()
        if token.kind == "atom":
            return Atom(token.text)
        if token.kind == "op":
            # A bare U/R/W with no left operand, or G/F/X falling through.
            raise LTLSyntaxError(f"operator {token.text!r} is missing an operand in {self.source!r}")
        raise LTLSyntaxError(f"unexpected token {token.text!r} in {self.source!r}")


def parse_ltl(text: str) -> Formula:
    """Parse an LTL formula string into a :class:`~repro.logic.ast.Formula`."""
    if not isinstance(text, str) or not text.strip():
        raise LTLSyntaxError(f"empty LTL formula: {text!r}")
    tokens = _tokenize(text)
    if not tokens:
        raise LTLSyntaxError(f"empty LTL formula after tokenization: {text!r}")
    return _Parser(tokens, text).parse()
