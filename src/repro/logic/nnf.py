"""Negation normal form (NNF) and basic formula rewrites.

The tableau-based LTL→Büchi translation requires formulas in NNF, i.e.
negations pushed down to atomic propositions, with implications eliminated and
``F``/``G`` rewritten into ``U``/``R``:

* ``F φ  ≡ true U φ``
* ``G φ  ≡ false R φ``
* ``¬(φ U ψ) ≡ ¬φ R ¬ψ`` and dually.
"""

from __future__ import annotations

from repro.logic.ast import (
    And,
    Atom,
    Eventually,
    FALSE,
    FalseFormula,
    Formula,
    Always,
    Implies,
    Next,
    Not,
    Or,
    Release,
    TRUE,
    TrueFormula,
    Until,
)


def eliminate_derived_operators(formula: Formula) -> Formula:
    """Rewrite ``→``, ``F`` and ``G`` into the core operator set {∧, ∨, ¬, X, U, R}."""
    if isinstance(formula, (TrueFormula, FalseFormula, Atom)):
        return formula
    if isinstance(formula, Not):
        return Not(eliminate_derived_operators(formula.operand))
    if isinstance(formula, And):
        return And(eliminate_derived_operators(formula.left), eliminate_derived_operators(formula.right))
    if isinstance(formula, Or):
        return Or(eliminate_derived_operators(formula.left), eliminate_derived_operators(formula.right))
    if isinstance(formula, Implies):
        return Or(
            Not(eliminate_derived_operators(formula.left)),
            eliminate_derived_operators(formula.right),
        )
    if isinstance(formula, Next):
        return Next(eliminate_derived_operators(formula.operand))
    if isinstance(formula, Eventually):
        return Until(TRUE, eliminate_derived_operators(formula.operand))
    if isinstance(formula, Always):
        return Release(FALSE, eliminate_derived_operators(formula.operand))
    if isinstance(formula, Until):
        return Until(eliminate_derived_operators(formula.left), eliminate_derived_operators(formula.right))
    if isinstance(formula, Release):
        return Release(eliminate_derived_operators(formula.left), eliminate_derived_operators(formula.right))
    raise TypeError(f"unknown formula node {formula!r}")


def push_negations(formula: Formula) -> Formula:
    """Push negations to the atoms of a formula over the core operator set."""
    if isinstance(formula, (TrueFormula, FalseFormula, Atom)):
        return formula
    if isinstance(formula, And):
        return And(push_negations(formula.left), push_negations(formula.right))
    if isinstance(formula, Or):
        return Or(push_negations(formula.left), push_negations(formula.right))
    if isinstance(formula, Next):
        return Next(push_negations(formula.operand))
    if isinstance(formula, Until):
        return Until(push_negations(formula.left), push_negations(formula.right))
    if isinstance(formula, Release):
        return Release(push_negations(formula.left), push_negations(formula.right))
    if isinstance(formula, Not):
        inner = formula.operand
        if isinstance(inner, TrueFormula):
            return FALSE
        if isinstance(inner, FalseFormula):
            return TRUE
        if isinstance(inner, Atom):
            return formula
        if isinstance(inner, Not):
            return push_negations(inner.operand)
        if isinstance(inner, And):
            return Or(push_negations(Not(inner.left)), push_negations(Not(inner.right)))
        if isinstance(inner, Or):
            return And(push_negations(Not(inner.left)), push_negations(Not(inner.right)))
        if isinstance(inner, Next):
            return Next(push_negations(Not(inner.operand)))
        if isinstance(inner, Until):
            return Release(push_negations(Not(inner.left)), push_negations(Not(inner.right)))
        if isinstance(inner, Release):
            return Until(push_negations(Not(inner.left)), push_negations(Not(inner.right)))
        raise TypeError(f"cannot push negation through {inner!r}")
    raise TypeError(f"unknown formula node {formula!r}")


def to_nnf(formula: Formula) -> Formula:
    """Full NNF conversion: eliminate derived operators, then push negations."""
    return push_negations(eliminate_derived_operators(formula))


def negate(formula: Formula) -> Formula:
    """The NNF of ``¬formula`` — the input to the model checker's Büchi build."""
    return to_nnf(Not(formula))


def is_nnf(formula: Formula) -> bool:
    """True if negations only appear directly above atoms and no derived ops remain."""
    for node in formula.walk():
        if isinstance(node, (Implies, Eventually, Always)):
            return False
        if isinstance(node, Not) and not isinstance(node.operand, Atom):
            return False
    return True


def simplify_propositional(formula: Formula) -> Formula:
    """Light syntactic simplification of ∧/∨ with constants (no normal forms)."""
    if isinstance(formula, And):
        left = simplify_propositional(formula.left)
        right = simplify_propositional(formula.right)
        if isinstance(left, FalseFormula) or isinstance(right, FalseFormula):
            return FALSE
        if isinstance(left, TrueFormula):
            return right
        if isinstance(right, TrueFormula):
            return left
        return And(left, right)
    if isinstance(formula, Or):
        left = simplify_propositional(formula.left)
        right = simplify_propositional(formula.right)
        if isinstance(left, TrueFormula) or isinstance(right, TrueFormula):
            return TRUE
        if isinstance(left, FalseFormula):
            return right
        if isinstance(right, FalseFormula):
            return left
        return Or(left, right)
    if isinstance(formula, Not):
        inner = simplify_propositional(formula.operand)
        if isinstance(inner, TrueFormula):
            return FALSE
        if isinstance(inner, FalseFormula):
            return TRUE
        return Not(inner)
    if isinstance(formula, Implies):
        return simplify_propositional(Or(Not(formula.left), formula.right))
    if isinstance(formula, Next):
        return Next(simplify_propositional(formula.operand))
    if isinstance(formula, Eventually):
        return Eventually(simplify_propositional(formula.operand))
    if isinstance(formula, Always):
        return Always(simplify_propositional(formula.operand))
    if isinstance(formula, Until):
        return Until(simplify_propositional(formula.left), simplify_propositional(formula.right))
    if isinstance(formula, Release):
        return Release(simplify_propositional(formula.left), simplify_propositional(formula.right))
    return formula
