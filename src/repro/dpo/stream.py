"""Streaming DPO training data: pair channel, incremental writer, dataset handle.

The blocking pipeline buffers every :class:`~repro.feedback.ranker.
PreferencePair` into a list, tokenises the whole list into a
:class:`~repro.dpo.dataset.DPODataset`, and only then starts training.  This
module decomposes that into three producer/consumer stages so verification,
encoding and training can *overlap*:

``PairStream``
    An ordered, bounded channel of preference pairs.  The producer (the
    pipeline draining ``PendingBatch.as_completed`` in task order) ``put``\\ s
    pairs the moment a task's scores land; a ``maxsize`` bound applies
    back-pressure, blocking a producer that runs ahead of the encoder.
    ``close()`` ends the stream; ``abort(exc)`` propagates a producer failure
    to the consumer instead of hanging it.

``DPODatasetWriter``
    The encoding stage: consumes a ``PairStream`` (or direct ``append``
    calls), tokenises each pair *the moment it arrives* via
    :func:`~repro.dpo.dataset.encode_preference_pair` — the exact function the
    blocking ``DPODataset.from_preference_pairs`` uses, so the sealed result
    is bitwise-identical to a blocking build — and can additionally *spill*
    every encoded pair to a JSONL shard (``spill_path``): a durable,
    incrementally-written encoding of the corpus that later runs reload with
    :func:`read_encoded_pairs` without re-ranking or re-tokenising (the
    current run still holds the dataset in memory for training).  Spills are
    written through a tmp file and moved into place at seal time, so a crash
    mid-run never leaves a truncated shard.

``DatasetHandle``
    The trainer-facing view of the growing dataset: thread-safe appends on
    the writer side, ``wait_available`` / ``wait_trainable`` / ``dataset()``
    on the consumer side.  The handle is *sealed* exactly once, at the epoch
    boundary between the streamed warm-up pass and the shuffled epochs; after
    ``seal()`` appends raise and ``dataset()`` returns the frozen
    :class:`~repro.dpo.dataset.DPODataset`.

Determinism guarantees
----------------------
Pairs flow through the stream in *task submission order* (the producer
reorders completion-order results into a contiguous prefix), and encoding is
a pure function of the pair, so:

* the sealed streamed dataset equals the blocking-built dataset — same pair
  order, token ids and response masks — on every serving backend;
* the trainer's streamed warm-up epoch consumes pairs in that same canonical
  order, so a streamed training run is reproducible regardless of how
  verification timing interleaves with encoding.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import tracer as obs
from repro.dpo.dataset import DPODataset, EncodedPair, encode_preference_pair
from repro.errors import TrainingError
from repro.lm.tokenizer import Tokenizer
from repro.utils.atomic import AtomicTextWriter


class StreamClosed(RuntimeError):
    """Raised when putting into a stream that was already closed or aborted."""


@dataclass
class StreamTelemetry:
    """Wall-clock accounting of one streaming encode stage."""

    pairs_encoded: int = 0
    encode_seconds: float = 0.0        # CPU time spent tokenising pairs
    first_pair_seconds: float | None = None   # writer start -> first encoded pair
    sealed_seconds: float | None = None       # writer start -> seal
    producer_blocked_seconds: float = 0.0     # producer time blocked on the stream bound

    def snapshot(self) -> dict:
        """JSON-friendly view of the counters."""
        return {
            "pairs_encoded": self.pairs_encoded,
            "encode_seconds": self.encode_seconds,
            "first_pair_seconds": self.first_pair_seconds,
            "sealed_seconds": self.sealed_seconds,
            "producer_blocked_seconds": self.producer_blocked_seconds,
        }


class PairStream:
    """A bounded, ordered, thread-safe channel of preference pairs.

    One producer thread ``put``\\ s pairs in canonical (task submission)
    order; one consumer iterates them in exactly that order.  ``maxsize``
    bounds the number of undelivered pairs — a producer ahead of the consumer
    blocks (back-pressure), with blocked time accumulated on
    ``blocked_seconds``.  ``close()`` ends iteration after the remaining
    pairs drain; ``abort(exc)`` makes the consumer's next step re-raise
    ``exc`` so a producer failure can never hang the consumer.
    """

    def __init__(self, maxsize: int = 0):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.blocked_seconds = 0.0
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._error: BaseException | None = None

    # ------------------------------------------------------------------ #
    def put(self, pair) -> None:
        """Append one pair, blocking while the stream is at ``maxsize``."""
        with self._cond:
            blocked_since = None
            while not self._closed and self.maxsize and len(self._items) >= self.maxsize:
                if blocked_since is None:
                    blocked_since = time.perf_counter()
                self._cond.wait()
            if blocked_since is not None:
                self.blocked_seconds += time.perf_counter() - blocked_since
            if self._closed:
                raise StreamClosed("put on a closed PairStream")
            self._items.append(pair)
            self._cond.notify_all()

    def put_many(self, pairs) -> None:
        """Append several pairs in order (each observing the bound)."""
        for pair in pairs:
            self.put(pair)

    def close(self) -> None:
        """End the stream: consumers drain the remaining pairs, then stop."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def abort(self, error: BaseException) -> None:
        """Close the stream, discarding queued pairs; consumers raise ``error``."""
        with self._cond:
            self._error = error
            self._closed = True
            self._items.clear()
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` or :meth:`abort` has run."""
        with self._cond:
            return self._closed

    def __iter__(self):
        """Yield pairs in put order until the stream closes (or re-raise an abort)."""
        while True:
            with self._cond:
                while not self._items and not self._closed:
                    self._cond.wait()
                if self._error is not None:
                    raise self._error
                if not self._items:
                    return
                item = self._items.popleft()
                self._cond.notify_all()
            yield item


class DatasetHandle:
    """The trainer's view of a dataset still being written.

    The writer side appends encoded pairs and finally :meth:`seal`\\ s (or
    :meth:`fail`\\ s); the trainer side blocks on :meth:`wait_available` /
    :meth:`wait_trainable` and materialises batches over the pairs landed so
    far.  All methods are thread-safe; a ``fail()`` wakes every waiter with
    the producer's exception, so an upstream crash can never deadlock the
    trainer.
    """

    def __init__(self, dataset: DPODataset):
        self._dataset = dataset
        self._cond = threading.Condition()
        self._sealed = False
        self._error: BaseException | None = None
        self._progress = 0.0

    # ------------------------------------------------------------------ #
    # Writer side
    # ------------------------------------------------------------------ #
    def append(self, encoded: EncodedPair) -> None:
        """Add one already-encoded pair; raises after :meth:`seal`."""
        with self._cond:
            if self._sealed:
                raise TrainingError("append on a sealed DatasetHandle")
            self._dataset.pairs.append(encoded)
            self._cond.notify_all()

    def report_progress(self, done: int, total: int) -> None:
        """Record producer progress (``done`` of ``total`` upstream units).

        The unit is whatever the producer counts — the pipeline reports
        drained *tasks* — and ``wait_trainable`` compares the resulting
        fraction against the warm-up threshold.
        """
        with self._cond:
            self._progress = (done / total) if total else 1.0
            self._cond.notify_all()

    def seal(self) -> None:
        """Freeze the dataset: no further appends; waiters see the final state."""
        with self._cond:
            self._sealed = True
            self._progress = 1.0
            self._cond.notify_all()

    def fail(self, error: BaseException) -> None:
        """Seal with an error: every current and future wait re-raises it."""
        with self._cond:
            self._error = error
            self._sealed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Trainer side
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._cond:
            return len(self._dataset.pairs)

    @property
    def sealed(self) -> bool:
        """Whether the writer has sealed (or failed) the dataset."""
        with self._cond:
            return self._sealed

    @property
    def progress(self) -> float:
        """Latest producer-reported completion fraction (1.0 once sealed)."""
        with self._cond:
            return self._progress

    def _check_error(self) -> None:
        if self._error is not None:
            raise self._error

    def wait_available(self, count: int, timeout: float | None = None) -> int:
        """Block until ``count`` pairs landed or the handle sealed.

        Returns ``min(count, len(self))`` at that moment — the end index a
        streamed consumer may batch up to.  Re-raises the producer's error
        after :meth:`fail`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._dataset.pairs) < count and not self._sealed:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(f"waited {timeout}s for {count} pairs")
                self._cond.wait(remaining)
            self._check_error()
            return min(count, len(self._dataset.pairs))

    def wait_trainable(self, warmup_fraction: float, *, timeout: float | None = None) -> int:
        """Block until the warm-up threshold is met; return the pairs landed.

        Trainable means *at least one pair* has landed **and** the producer
        progress has reached ``warmup_fraction`` (or the handle sealed,
        whichever comes first).  ``warmup_fraction=0.0`` unblocks on the first
        pair; ``1.0`` waits for the seal — the blocking degenerate case.
        """
        if not 0.0 <= warmup_fraction <= 1.0:
            raise ValueError(f"warmup_fraction must be in [0, 1], got {warmup_fraction}")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._sealed and not (
                self._dataset.pairs and self._progress >= warmup_fraction
            ):
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(f"warm-up fraction {warmup_fraction} never reached")
                self._cond.wait(remaining)
            self._check_error()
            return len(self._dataset.pairs)

    def wait_sealed(self, timeout: float | None = None) -> None:
        """Block until :meth:`seal` (or :meth:`fail`, which re-raises)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._sealed:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("DatasetHandle never sealed")
                self._cond.wait(remaining)
            self._check_error()

    def dataset(self, timeout: float | None = None) -> DPODataset:
        """The sealed dataset (blocks until sealed) — the blocking entry point."""
        self.wait_sealed(timeout)
        return self._dataset

    def growing_dataset(self) -> DPODataset:
        """The underlying (possibly still growing) dataset, without waiting.

        Safe to *batch* from — appends only ever extend ``pairs``, and the
        streamed trainer only indexes below a bound returned by
        :meth:`wait_available` — but its length is a moving target until
        :attr:`sealed`.
        """
        return self._dataset


class DPODatasetWriter:
    """Incrementally tokenise preference pairs into a :class:`DatasetHandle`.

    The encode stage of the streaming pipeline: every :meth:`append` encodes
    one pair *now* (overlapping CPU-bound tokenisation with the verification
    still in flight upstream) and appends it to the handle; :meth:`consume`
    drains an entire :class:`PairStream` and seals.  With ``spill_path`` each
    encoded pair is also written to a JSONL shard as it lands — a durable
    copy a later process reloads with :func:`read_encoded_pairs`, skipping
    ranking and tokenisation entirely (this run's in-memory dataset is
    unaffected: training still needs it).  Encoding telemetry accumulates on
    :attr:`telemetry` (a :class:`StreamTelemetry`).
    """

    def __init__(
        self,
        tokenizer: Tokenizer,
        *,
        max_seq_len: int = 96,
        spill_path: str | Path | None = None,
    ):
        self.tokenizer = tokenizer
        self.max_seq_len = max_seq_len
        self.spill_path = Path(spill_path) if spill_path is not None else None
        self.handle = DatasetHandle(
            DPODataset(pairs=[], tokenizer=tokenizer, max_seq_len=max_seq_len)
        )
        self.telemetry = StreamTelemetry()
        self._started = time.perf_counter()
        self._spill_file = None
        if self.spill_path is not None:
            # Incremental writes land in a sibling tmp file that is moved
            # into place atomically at seal time: readers never observe a
            # truncated shard, yet each pair hits the disk as it is encoded.
            self._spill_file = AtomicTextWriter(self.spill_path)

    # ------------------------------------------------------------------ #
    def append(self, pair) -> EncodedPair:
        """Encode one raw preference pair and append it to the handle."""
        start = time.perf_counter()
        encoded = encode_preference_pair(pair, self.tokenizer, max_seq_len=self.max_seq_len)
        self.telemetry.encode_seconds += time.perf_counter() - start
        if self._spill_file is not None:
            self._spill_file.write(json.dumps(encoded_pair_record(encoded)) + "\n")
        self.handle.append(encoded)
        if self.telemetry.first_pair_seconds is None:
            self.telemetry.first_pair_seconds = time.perf_counter() - self._started
        self.telemetry.pairs_encoded += 1
        return encoded

    def consume(self, stream: PairStream, *, progress_of=None) -> DatasetHandle:
        """Drain ``stream`` to exhaustion, encoding as pairs arrive, then seal.

        ``progress_of`` optionally maps a pair to a ``(done, total)`` tuple
        reported to the handle (the pipeline stamps task progress this way).
        A stream abort — or an encoding error — fails the handle with the
        exception, so the trainer waiting downstream is released, then
        re-raises.
        """
        try:
            for pair in stream:
                with obs.span("stream.encode", category="train", task=pair.task):
                    self.append(pair)
                if progress_of is not None:
                    done, total = progress_of(pair)
                    self.handle.report_progress(done, total)
        except BaseException as exc:
            self.fail(exc)
            raise
        self.telemetry.producer_blocked_seconds = stream.blocked_seconds
        self.seal()
        return self.handle

    def seal(self) -> DatasetHandle:
        """Seal the handle, finalise the spill shard, and stamp telemetry.

        If committing the spill fails (disk error, vanished directory), the
        handle is *failed* with that exception before it re-raises — a waiter
        blocked on the handle must be released with the error, never left to
        wait for a seal that can no longer happen.
        """
        try:
            self._finish_spill(commit=True)
        except BaseException as exc:
            self.handle.fail(exc)
            raise
        if self.telemetry.sealed_seconds is None:
            self.telemetry.sealed_seconds = time.perf_counter() - self._started
        self.handle.seal()
        return self.handle

    def fail(self, error: BaseException) -> None:
        """Fail the handle (releasing any waiter) and drop the partial spill.

        Failing the handle is the part that must never be skipped — a trainer
        blocked on it would otherwise wait forever — so a spill-cleanup error
        (e.g. the close() flush re-raising the disk failure that brought us
        here) is swallowed in favour of the original ``error``.
        """
        try:
            self._finish_spill(commit=False)
        # repro: allow[swallowed-exception] — failing the handle must win over spill-cleanup errors
        except BaseException:
            pass
        self.handle.fail(error)

    def _finish_spill(self, *, commit: bool) -> None:
        if self._spill_file is None:
            return
        spill_file, self._spill_file = self._spill_file, None
        if commit:
            spill_file.commit()
        else:
            spill_file.discard()


def encoded_pair_record(encoded: EncodedPair) -> dict:
    """JSON-friendly record of one encoded pair (the spill JSONL line shape)."""
    return {
        "task": encoded.task,
        "chosen_ids": list(encoded.chosen_ids),
        "rejected_ids": list(encoded.rejected_ids),
        "chosen_response_start": encoded.chosen_response_start,
        "rejected_response_start": encoded.rejected_response_start,
    }


def read_encoded_pairs(path: str | Path) -> list:
    """Load the :class:`EncodedPair` list a writer spilled to ``path``.

    The out-of-core complement of ``spill_path``: a later process can rebuild
    a :class:`~repro.dpo.dataset.DPODataset` from the shard (plus the
    tokenizer it was encoded with) without re-ranking or re-tokenising.
    """
    pairs = []
    with Path(path).open() as shard:  # line-by-line: shards can exceed memory
        for line_number, line in enumerate(shard, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                pairs.append(
                    EncodedPair(
                        chosen_ids=list(record["chosen_ids"]),
                        rejected_ids=list(record["rejected_ids"]),
                        chosen_response_start=int(record["chosen_response_start"]),
                        rejected_response_start=int(record["rejected_response_start"]),
                        task=record.get("task", ""),
                    )
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid encoded-pair record ({exc})"
                ) from exc
    return pairs
