"""Training-curve containers and multi-seed aggregation (Figure 8)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TrainingHistory:
    """Per-descent-step metrics of one DPO run."""

    losses: list = field(default_factory=list)
    accuracies: list = field(default_factory=list)
    marginal_preferences: list = field(default_factory=list)
    grad_norms: list = field(default_factory=list)
    epoch_boundaries: list = field(default_factory=list)  # step index at the end of each epoch

    def record(self, metrics, grad_norm: float = 0.0) -> None:
        self.losses.append(metrics.loss)
        self.accuracies.append(metrics.accuracy)
        self.marginal_preferences.append(metrics.marginal_preference)
        self.grad_norms.append(grad_norm)

    def mark_epoch(self) -> None:
        self.epoch_boundaries.append(len(self.losses))

    @property
    def num_steps(self) -> int:
        return len(self.losses)

    @property
    def num_epochs(self) -> int:
        return len(self.epoch_boundaries)

    def final(self) -> dict:
        """The last recorded value of every metric."""
        return {
            "loss": self.losses[-1] if self.losses else float("nan"),
            "accuracy": self.accuracies[-1] if self.accuracies else float("nan"),
            "marginal_preference": self.marginal_preferences[-1] if self.marginal_preferences else float("nan"),
        }

    def smoothed(self, metric: str, window: int = 10) -> np.ndarray:
        """Moving average of one metric (for readable console tables)."""
        values = np.asarray(getattr(self, metric), dtype=np.float64)
        if values.size == 0 or window <= 1:
            return values
        kernel = np.ones(min(window, values.size)) / min(window, values.size)
        return np.convolve(values, kernel, mode="valid")


@dataclass
class MultiSeedCurves:
    """Aggregate of several seeds' training histories (mean / min / max per step).

    Figure 8 plots the mean over five seeds with shading between the minimum
    and maximum values; this container computes exactly those series.
    """

    histories: list = field(default_factory=list)

    def add(self, history: TrainingHistory) -> None:
        self.histories.append(history)

    @property
    def num_seeds(self) -> int:
        return len(self.histories)

    def _stack(self, metric: str) -> np.ndarray:
        series = [np.asarray(getattr(h, metric), dtype=np.float64) for h in self.histories]
        if not series:
            return np.zeros((0, 0))
        length = min(len(s) for s in series)
        return np.stack([s[:length] for s in series])

    def mean(self, metric: str) -> np.ndarray:
        stacked = self._stack(metric)
        return stacked.mean(axis=0) if stacked.size else stacked

    def minimum(self, metric: str) -> np.ndarray:
        stacked = self._stack(metric)
        return stacked.min(axis=0) if stacked.size else stacked

    def maximum(self, metric: str) -> np.ndarray:
        stacked = self._stack(metric)
        return stacked.max(axis=0) if stacked.size else stacked

    def summary_table(self, metric: str, *, every: int = 10) -> list:
        """Rows ``(step, mean, min, max)`` sampled every ``every`` steps."""
        mean = self.mean(metric)
        low = self.minimum(metric)
        high = self.maximum(metric)
        rows = []
        for step in range(0, len(mean), every):
            rows.append((step, float(mean[step]), float(low[step]), float(high[step])))
        if len(mean) and (len(mean) - 1) % every != 0:
            step = len(mean) - 1
            rows.append((step, float(mean[step]), float(low[step]), float(high[step])))
        return rows
