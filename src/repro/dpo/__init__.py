"""Direct preference optimization: dataset encoding, loss, trainer, metrics."""

from repro.dpo.dataset import DPODataset, EncodedPair
from repro.dpo.loss import DPOBatchMetrics, dpo_step, sigmoid
from repro.dpo.metrics import MultiSeedCurves, TrainingHistory
from repro.dpo.trainer import DPOConfig, DPOResult, DPOTrainer, run_dpo

__all__ = [
    "DPODataset",
    "EncodedPair",
    "DPOBatchMetrics",
    "dpo_step",
    "sigmoid",
    "MultiSeedCurves",
    "TrainingHistory",
    "DPOConfig",
    "DPOResult",
    "DPOTrainer",
    "run_dpo",
]
