"""Direct preference optimization: dataset encoding, loss, trainer, metrics.

Includes the streaming training-data path (:mod:`repro.dpo.stream`): a
:class:`PairStream` channel of preference pairs, an incremental
:class:`DPODatasetWriter` that tokenises pairs as verification produces them
(optionally spilling encoded pairs to a JSONL shard), and the
:class:`DatasetHandle` the trainer consumes so mini-batching can begin before
the slowest task has verified.
"""

from repro.dpo.dataset import DPODataset, EncodedPair, encode_preference_pair
from repro.dpo.loss import DPOBatchMetrics, dpo_step, sigmoid, stack_pair_batch
from repro.dpo.metrics import MultiSeedCurves, TrainingHistory
from repro.dpo.stream import (
    DatasetHandle,
    DPODatasetWriter,
    PairStream,
    StreamClosed,
    StreamTelemetry,
    encoded_pair_record,
    read_encoded_pairs,
)
from repro.dpo.trainer import DPOConfig, DPOResult, DPOTrainer, run_dpo

__all__ = [
    "DPODataset",
    "EncodedPair",
    "encode_preference_pair",
    "DPOBatchMetrics",
    "dpo_step",
    "sigmoid",
    "stack_pair_batch",
    "MultiSeedCurves",
    "TrainingHistory",
    "DatasetHandle",
    "DPODatasetWriter",
    "PairStream",
    "StreamClosed",
    "StreamTelemetry",
    "encoded_pair_record",
    "read_encoded_pairs",
    "DPOConfig",
    "DPOResult",
    "DPOTrainer",
    "run_dpo",
]
