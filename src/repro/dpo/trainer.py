"""The DPO fine-tuning loop with LoRA and periodic checkpoints.

:meth:`DPOTrainer.train` consumes either a frozen
:class:`~repro.dpo.dataset.DPODataset` (the reference path) or a
:class:`~repro.dpo.stream.DatasetHandle` still being written by a
:class:`~repro.dpo.stream.DPODatasetWriter`.  Given a handle with
``stream=False`` (the default) training simply blocks until the handle seals
and then runs the exact same loop as the frozen dataset — bitwise-identical.
With ``stream=True`` the *first* epoch is a streamed pass: mini-batching
begins as soon as the handle's warm-up fraction of upstream work has landed,
consuming pairs in their canonical arrival order while verification and
encoding are still running; the handle must be sealed by the time that pass
drains it, and every later epoch shuffles the sealed dataset exactly as the
blocking loop would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs import tracer as obs
from repro.dpo.dataset import DPODataset
from repro.dpo.loss import dpo_step
from repro.dpo.metrics import TrainingHistory
from repro.errors import TrainingError
from repro.lm.lora import LoRAConfig, apply_lora
from repro.lm.optim import Adam
from repro.lm.tokenizer import Tokenizer
from repro.lm.transformer import TransformerLM
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class DPOConfig:
    """Hyper-parameters of the DPO fine-tuning stage."""

    beta: float = 0.5
    learning_rate: float = 1e-3
    batch_size: int = 8
    num_epochs: int = 40
    checkpoint_every: int = 4          # in epochs, mirroring the paper's every-20-epochs checkpoints
    max_steps: int | None = None       # optional hard cap on descent steps
    lora_rank: int = 4
    use_lora: bool = True
    seed: int = 0


@dataclass
class _TrainState:
    """Mutable step bookkeeping threaded through one ``train`` call."""

    total_steps: int = 0
    total_pairs: int = 0
    progress_every: int = 0
    stop: bool = False


@dataclass
class DPOResult:
    """Everything produced by one fine-tuning run."""

    policy: TransformerLM
    reference: TransformerLM
    history: TrainingHistory
    checkpoints: dict = field(default_factory=dict)   # epoch -> state_dict
    lora_summary: dict = field(default_factory=dict)
    # Training throughput: {"steps", "pairs", "seconds", "steps_per_second",
    # "pairs_per_second"} — the fused-forward benchmark lane reads these.
    throughput: dict = field(default_factory=dict)

    def checkpoint_epochs(self) -> list:
        return sorted(self.checkpoints)

    def model_at_epoch(self, epoch: int) -> TransformerLM:
        """Reconstruct the policy as it was at a stored checkpoint."""
        if epoch not in self.checkpoints:
            raise TrainingError(f"no checkpoint at epoch {epoch}; available: {self.checkpoint_epochs()}")
        model = self.policy.clone()
        model.load_state_dict(self.checkpoints[epoch])
        return model


class DPOTrainer:
    """Runs DPO on a pre-trained policy against a frozen reference copy.

    The reference model is a deep copy of the pre-trained policy taken before
    any update (the ``π_ref`` of the DPO objective); with ``use_lora`` the
    policy's base weights are frozen and only the adapters are updated,
    following Appendix E.
    """

    def __init__(self, model: TransformerLM, tokenizer: Tokenizer, config: DPOConfig | None = None):
        self.config = config or DPOConfig()
        self.tokenizer = tokenizer
        self.policy = model
        self.reference = model.clone()
        self.lora_summary: dict = {}
        if self.config.use_lora:
            self.lora_summary = apply_lora(
                self.policy,
                LoRAConfig(rank=self.config.lora_rank, seed=self.config.seed),
            )
        self.optimizer = Adam(self.policy.parameters(), learning_rate=self.config.learning_rate)
        # Streamed-training telemetry: seconds from trainer construction to
        # the warm-up threshold being met (None until a streamed train runs).
        self.first_batch_ready_seconds: float | None = None
        self._constructed = time.perf_counter()

    # ------------------------------------------------------------------ #
    def train(
        self,
        dataset,
        *,
        progress_every: int = 0,
        stream: bool = False,
        warmup_fraction: float = 0.25,
    ) -> DPOResult:
        """Fine-tune on a tokenised preference dataset (or a growing handle).

        ``dataset`` is a :class:`~repro.dpo.dataset.DPODataset` or a
        :class:`~repro.dpo.stream.DatasetHandle`.  With a handle and
        ``stream=False`` training waits for the seal and is bitwise-identical
        to passing the sealed dataset directly.  With ``stream=True`` the
        first epoch starts once ``warmup_fraction`` of the upstream work has
        landed (see :meth:`~repro.dpo.stream.DatasetHandle.wait_trainable`)
        and consumes pairs in canonical arrival order; remaining epochs run
        the standard shuffled loop on the sealed dataset.
        """
        from repro.dpo.stream import DatasetHandle  # deferred: stream imports dataset

        handle = dataset if isinstance(dataset, DatasetHandle) else None
        if handle is not None and not stream:
            dataset = handle.dataset()
            handle = None
        if handle is None:
            if len(dataset) == 0:
                raise TrainingError("cannot run DPO on an empty preference dataset")

        rng = seeded_rng(self.config.seed)
        history = TrainingHistory()
        checkpoints: dict = {0: self.policy.state_dict()}
        state = _TrainState(progress_every=progress_every)
        started = time.perf_counter()

        first_epoch = 1
        if handle is not None:
            handle.wait_trainable(warmup_fraction)
            self.first_batch_ready_seconds = time.perf_counter() - self._constructed
            self._streamed_epoch(handle, history, state)
            dataset = handle.dataset()  # the streamed pass drained it; sealed now
            if len(dataset) == 0:
                raise TrainingError("cannot run DPO on an empty preference dataset")
            history.mark_epoch()
            if 1 % self.config.checkpoint_every == 0 or self.config.num_epochs == 1:
                checkpoints[1] = self.policy.state_dict()
            first_epoch = 2

        for epoch in range(first_epoch, self.config.num_epochs + 1):
            if state.stop:
                break
            for batch in dataset.batches(self.config.batch_size, rng=rng, shuffle=True):
                self._apply_batch(batch, epoch, history, state)
                if state.stop:
                    break
            history.mark_epoch()
            if epoch % self.config.checkpoint_every == 0 or epoch == self.config.num_epochs:
                checkpoints[epoch] = self.policy.state_dict()

        seconds = time.perf_counter() - started
        return DPOResult(
            policy=self.policy,
            reference=self.reference,
            history=history,
            checkpoints=checkpoints,
            lora_summary=self.lora_summary,
            throughput={
                "steps": state.total_steps,
                "pairs": state.total_pairs,
                "seconds": seconds,
                "steps_per_second": state.total_steps / seconds if seconds > 0 else 0.0,
                "pairs_per_second": state.total_pairs / seconds if seconds > 0 else 0.0,
            },
        )

    # ------------------------------------------------------------------ #
    def _apply_batch(self, batch: dict, epoch: int, history: TrainingHistory, state: "_TrainState") -> None:
        """One optimiser step on one mini-batch, with history/telemetry."""
        with obs.span("dpo.step", category="train", epoch=epoch, step=state.total_steps + 1):
            self.optimizer.zero_grad()
            metrics = dpo_step(self.policy, self.reference, batch, beta=self.config.beta)
            grad_norm = self.optimizer.step()
        history.record(metrics, grad_norm)
        state.total_steps += 1
        state.total_pairs += int(len(batch["indices"]))
        if state.progress_every and state.total_steps % state.progress_every == 0:  # pragma: no cover - console feedback
            print(
                f"[dpo] epoch {epoch} step {state.total_steps} "
                f"loss={metrics.loss:.3f} acc={metrics.accuracy:.2f} margin={metrics.marginal_preference:.2f}"
            )
        if self.config.max_steps is not None and state.total_steps >= self.config.max_steps:
            state.stop = True

    def _streamed_epoch(self, handle, history: TrainingHistory, state: "_TrainState") -> None:
        """Epoch 1 of streamed training: consume the growing prefix in order.

        Batches cover ``[position, position + batch_size)`` windows of the
        handle's canonical pair order, waiting for pairs that have not landed
        yet; the epoch ends when the handle is sealed and every pair has been
        consumed exactly once.  Because arrival order equals canonical task
        order, the pass is deterministic no matter how verification timing
        interleaves with encoding.
        """
        dataset = handle.growing_dataset()
        position = 0
        while not state.stop:
            end = handle.wait_available(position + self.config.batch_size)
            if end <= position:
                break  # sealed and fully consumed
            self._apply_batch(dataset.batch(range(position, end)), 1, history, state)
            position = end


def run_dpo(
    model: TransformerLM,
    tokenizer: Tokenizer,
    preference_pairs,
    config: DPOConfig | None = None,
    *,
    max_seq_len: int | None = None,
) -> DPOResult:
    """Convenience wrapper: encode pairs, build a trainer, and train."""
    config = config or DPOConfig()
    dataset = DPODataset.from_preference_pairs(
        preference_pairs,
        tokenizer,
        max_seq_len=max_seq_len or model.config.max_seq_len,
    )
    trainer = DPOTrainer(model, tokenizer, config)
    return trainer.train(dataset)
