"""The DPO fine-tuning loop with LoRA and periodic checkpoints."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dpo.dataset import DPODataset
from repro.dpo.loss import dpo_step
from repro.dpo.metrics import TrainingHistory
from repro.errors import TrainingError
from repro.lm.lora import LoRAConfig, apply_lora
from repro.lm.optim import Adam
from repro.lm.tokenizer import Tokenizer
from repro.lm.transformer import TransformerLM
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class DPOConfig:
    """Hyper-parameters of the DPO fine-tuning stage."""

    beta: float = 0.5
    learning_rate: float = 1e-3
    batch_size: int = 8
    num_epochs: int = 40
    checkpoint_every: int = 4          # in epochs, mirroring the paper's every-20-epochs checkpoints
    max_steps: int | None = None       # optional hard cap on descent steps
    lora_rank: int = 4
    use_lora: bool = True
    seed: int = 0


@dataclass
class DPOResult:
    """Everything produced by one fine-tuning run."""

    policy: TransformerLM
    reference: TransformerLM
    history: TrainingHistory
    checkpoints: dict = field(default_factory=dict)   # epoch -> state_dict
    lora_summary: dict = field(default_factory=dict)

    def checkpoint_epochs(self) -> list:
        return sorted(self.checkpoints)

    def model_at_epoch(self, epoch: int) -> TransformerLM:
        """Reconstruct the policy as it was at a stored checkpoint."""
        if epoch not in self.checkpoints:
            raise TrainingError(f"no checkpoint at epoch {epoch}; available: {self.checkpoint_epochs()}")
        model = self.policy.clone()
        model.load_state_dict(self.checkpoints[epoch])
        return model


class DPOTrainer:
    """Runs DPO on a pre-trained policy against a frozen reference copy.

    The reference model is a deep copy of the pre-trained policy taken before
    any update (the ``π_ref`` of the DPO objective); with ``use_lora`` the
    policy's base weights are frozen and only the adapters are updated,
    following Appendix E.
    """

    def __init__(self, model: TransformerLM, tokenizer: Tokenizer, config: DPOConfig | None = None):
        self.config = config or DPOConfig()
        self.tokenizer = tokenizer
        self.policy = model
        self.reference = model.clone()
        self.lora_summary: dict = {}
        if self.config.use_lora:
            self.lora_summary = apply_lora(
                self.policy,
                LoRAConfig(rank=self.config.lora_rank, seed=self.config.seed),
            )
        self.optimizer = Adam(self.policy.parameters(), learning_rate=self.config.learning_rate)

    # ------------------------------------------------------------------ #
    def train(self, dataset: DPODataset, *, progress_every: int = 0) -> DPOResult:
        """Fine-tune on a tokenised preference dataset."""
        if len(dataset) == 0:
            raise TrainingError("cannot run DPO on an empty preference dataset")
        rng = seeded_rng(self.config.seed)
        history = TrainingHistory()
        checkpoints: dict = {0: self.policy.state_dict()}

        total_steps = 0
        for epoch in range(1, self.config.num_epochs + 1):
            for batch in dataset.batches(self.config.batch_size, rng=rng, shuffle=True):
                self.optimizer.zero_grad()
                metrics = dpo_step(self.policy, self.reference, batch, beta=self.config.beta)
                grad_norm = self.optimizer.step()
                history.record(metrics, grad_norm)
                total_steps += 1
                if progress_every and total_steps % progress_every == 0:  # pragma: no cover - console feedback
                    print(
                        f"[dpo] epoch {epoch} step {total_steps} "
                        f"loss={metrics.loss:.3f} acc={metrics.accuracy:.2f} margin={metrics.marginal_preference:.2f}"
                    )
                if self.config.max_steps is not None and total_steps >= self.config.max_steps:
                    break
            history.mark_epoch()
            if epoch % self.config.checkpoint_every == 0 or epoch == self.config.num_epochs:
                checkpoints[epoch] = self.policy.state_dict()
            if self.config.max_steps is not None and total_steps >= self.config.max_steps:
                break

        return DPOResult(
            policy=self.policy,
            reference=self.reference,
            history=history,
            checkpoints=checkpoints,
            lora_summary=self.lora_summary,
        )


def run_dpo(
    model: TransformerLM,
    tokenizer: Tokenizer,
    preference_pairs,
    config: DPOConfig | None = None,
    *,
    max_seq_len: int | None = None,
) -> DPOResult:
    """Convenience wrapper: encode pairs, build a trainer, and train."""
    config = config or DPOConfig()
    dataset = DPODataset.from_preference_pairs(
        preference_pairs,
        tokenizer,
        max_seq_len=max_seq_len or model.config.max_seq_len,
    )
    trainer = DPOTrainer(model, tokenizer, config)
    return trainer.train(dataset)
