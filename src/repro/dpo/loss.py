"""The direct-preference-optimization objective (Rafailov et al., 2023).

For a preference pair ``(x, y_w, y_l)`` the DPO loss is::

    L = -log σ( β [ (log π(y_w|x) - log π_ref(y_w|x))
                  - (log π(y_l|x) - log π_ref(y_l|x)) ] )

The three reported metrics follow Section 5.2 of the paper:

* **loss** — the mean of ``L`` over the batch,
* **accuracy** — how often the policy assigns the preferred response a higher
  likelihood than the rejected one, ``I(P(y_w|x,θ) > P(y_l|x,θ))``,
* **marginal preference** — the mean of the bracketed margin (0 = indifferent,
  positive = prefers the chosen response more than the reference model does).

:func:`dpo_step` runs **fused** by default: chosen and rejected sequences are
stacked into one ``(2B, T)`` batch per model, so a step costs one policy
forward+backward and one reference forward instead of four policy passes and
two reference passes.  Stacking is loss- and gradient-exact: the response mask
zeroes every padded target position, and with zero ``dlogits`` there the pad
rows contribute nothing to any parameter gradient (summation order over the
doubled batch may differ in the last float bit from the unfused path, which is
why fused-vs-unfused tests compare with ``allclose`` rather than ``==``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lm.transformer import TransformerLM


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


@dataclass(frozen=True)
class DPOBatchMetrics:
    """Metrics of one DPO step."""

    loss: float
    accuracy: float
    marginal_preference: float
    chosen_log_prob: float
    rejected_log_prob: float

    def as_dict(self) -> dict:
        return {
            "loss": self.loss,
            "accuracy": self.accuracy,
            "marginal_preference": self.marginal_preference,
            "chosen_log_prob": self.chosen_log_prob,
            "rejected_log_prob": self.rejected_log_prob,
        }


def stack_pair_batch(batch: dict) -> tuple:
    """Stack a preference batch's chosen and rejected halves into one batch.

    Returns ``(tokens, mask)`` of shapes ``(2B, T)`` / ``(2B, T - 1)`` with the
    ``B`` chosen rows first.  Both halves are right-padded to the common
    length with token id 0 (the tokenizer's PAD) and mask 0 — the pad value is
    arbitrary for correctness because masked target positions carry zero loss
    *and* zero gradient, but 0 keeps the arrays identical to what the dataset
    padder would have produced at the wider length.
    """
    chosen_tokens, chosen_mask = batch["chosen_tokens"], batch["chosen_mask"]
    rejected_tokens, rejected_mask = batch["rejected_tokens"], batch["rejected_mask"]
    width = max(chosen_tokens.shape[1], rejected_tokens.shape[1])

    def widen(array: np.ndarray, columns: int) -> np.ndarray:
        short = columns - array.shape[1]
        if short == 0:
            return array
        return np.pad(array, ((0, 0), (0, short)))

    tokens = np.concatenate([widen(chosen_tokens, width), widen(rejected_tokens, width)])
    mask = np.concatenate([widen(chosen_mask, width - 1), widen(rejected_mask, width - 1)])
    return tokens, mask


def dpo_step(
    policy: TransformerLM,
    reference: TransformerLM,
    batch: dict,
    *,
    beta: float = 0.5,
    backward: bool = True,
    fused: bool = True,
) -> DPOBatchMetrics:
    """Compute the DPO loss for one batch and (optionally) accumulate gradients.

    The gradient of the loss with respect to the policy's per-sequence
    log-probability is ``-β σ(-βh)/B`` for the chosen response and the opposite
    sign for the rejected response, where ``h`` is the preference margin.

    With ``fused=True`` (the default) both halves run as one stacked batch per
    model and one backward closure applies both coefficient signs at once.
    ``fused=False`` keeps the original two-passes-per-model reference path —
    slower, numerically equivalent — used by the equivalence tests.
    """
    if fused:
        return _dpo_step_fused(policy, reference, batch, beta=beta, backward=backward)
    return _dpo_step_unfused(policy, reference, batch, beta=beta, backward=backward)


def _dpo_step_fused(
    policy: TransformerLM,
    reference: TransformerLM,
    batch: dict,
    *,
    beta: float,
    backward: bool,
) -> DPOBatchMetrics:
    tokens, mask = stack_pair_batch(batch)

    # Reference (frozen) log-probabilities — never receive gradients.
    ref_chosen, ref_rejected = np.split(reference.sequence_log_probs(tokens, mask), 2)

    if backward:
        policy_both, backward_fn = policy.sequence_log_probs_with_grad(tokens, mask)
    else:
        policy_both = policy.sequence_log_probs(tokens, mask)
        backward_fn = None
    policy_chosen, policy_rejected = np.split(policy_both, 2)

    margin = (policy_chosen - ref_chosen) - (policy_rejected - ref_rejected)
    h = beta * margin
    losses = -np.log(np.clip(sigmoid(h), 1e-12, None))
    coefficient = sigmoid(-h) * beta / h.shape[0]

    if backward:
        # One pass through the model: the chosen half descends (-c), the
        # rejected half ascends (+c), exactly the two unfused closures summed.
        backward_fn(np.concatenate([-coefficient, coefficient]))

    return _metrics(losses, margin, policy_chosen, policy_rejected)


def _dpo_step_unfused(
    policy: TransformerLM,
    reference: TransformerLM,
    batch: dict,
    *,
    beta: float,
    backward: bool,
) -> DPOBatchMetrics:
    chosen_tokens, chosen_mask = batch["chosen_tokens"], batch["chosen_mask"]
    rejected_tokens, rejected_mask = batch["rejected_tokens"], batch["rejected_mask"]

    ref_chosen = reference.sequence_log_probs(chosen_tokens, chosen_mask)
    ref_rejected = reference.sequence_log_probs(rejected_tokens, rejected_mask)

    # Policy log-probability of the rejected responses, without gradients, so
    # the preference margin (and hence the per-sequence loss coefficients) can
    # be computed before any backward pass.
    policy_rejected = policy.sequence_log_probs(rejected_tokens, rejected_mask)

    if backward:
        policy_chosen, chosen_backward = policy.sequence_log_probs_with_grad(chosen_tokens, chosen_mask)
    else:
        policy_chosen = policy.sequence_log_probs(chosen_tokens, chosen_mask)
        chosen_backward = None

    margin = (policy_chosen - ref_chosen) - (policy_rejected - ref_rejected)
    h = beta * margin
    losses = -np.log(np.clip(sigmoid(h), 1e-12, None))
    coefficient = sigmoid(-h) * beta / h.shape[0]

    if backward:
        # Chosen branch: caches are still valid from the forward above.
        chosen_backward(-coefficient)
        # Rejected branch: re-run the forward with gradients, then backpropagate.
        _, rejected_backward = policy.sequence_log_probs_with_grad(rejected_tokens, rejected_mask)
        rejected_backward(coefficient)

    return _metrics(losses, margin, policy_chosen, policy_rejected)


def _metrics(losses, margin, policy_chosen, policy_rejected) -> DPOBatchMetrics:
    return DPOBatchMetrics(
        loss=float(np.mean(losses)),
        accuracy=float(np.mean(policy_chosen > policy_rejected)),
        marginal_preference=float(np.mean(margin)),
        chosen_log_prob=float(np.mean(policy_chosen)),
        rejected_log_prob=float(np.mean(policy_rejected)),
    )
