"""The direct-preference-optimization objective (Rafailov et al., 2023).

For a preference pair ``(x, y_w, y_l)`` the DPO loss is::

    L = -log σ( β [ (log π(y_w|x) - log π_ref(y_w|x))
                  - (log π(y_l|x) - log π_ref(y_l|x)) ] )

The three reported metrics follow Section 5.2 of the paper:

* **loss** — the mean of ``L`` over the batch,
* **accuracy** — how often the policy assigns the preferred response a higher
  likelihood than the rejected one, ``I(P(y_w|x,θ) > P(y_l|x,θ))``,
* **marginal preference** — the mean of the bracketed margin (0 = indifferent,
  positive = prefers the chosen response more than the reference model does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lm.transformer import TransformerLM


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


@dataclass(frozen=True)
class DPOBatchMetrics:
    """Metrics of one DPO step."""

    loss: float
    accuracy: float
    marginal_preference: float
    chosen_log_prob: float
    rejected_log_prob: float

    def as_dict(self) -> dict:
        return {
            "loss": self.loss,
            "accuracy": self.accuracy,
            "marginal_preference": self.marginal_preference,
            "chosen_log_prob": self.chosen_log_prob,
            "rejected_log_prob": self.rejected_log_prob,
        }


def dpo_step(
    policy: TransformerLM,
    reference: TransformerLM,
    batch: dict,
    *,
    beta: float = 0.5,
    backward: bool = True,
) -> DPOBatchMetrics:
    """Compute the DPO loss for one batch and (optionally) accumulate gradients.

    The gradient of the loss with respect to the policy's per-sequence
    log-probability is ``-β σ(-βh)/B`` for the chosen response and the opposite
    sign for the rejected response, where ``h`` is the preference margin.
    Because the model's layer caches are overwritten by every forward pass,
    each branch's backward closure is invoked before the next forward runs.
    """
    chosen_tokens, chosen_mask = batch["chosen_tokens"], batch["chosen_mask"]
    rejected_tokens, rejected_mask = batch["rejected_tokens"], batch["rejected_mask"]

    # Reference (frozen) log-probabilities — never receive gradients.
    ref_chosen = reference.sequence_log_probs(chosen_tokens, chosen_mask)
    ref_rejected = reference.sequence_log_probs(rejected_tokens, rejected_mask)

    # Policy log-probability of the rejected responses, without gradients, so
    # the preference margin (and hence the per-sequence loss coefficients) can
    # be computed before any backward pass.
    policy_rejected = policy.sequence_log_probs(rejected_tokens, rejected_mask)

    if backward:
        policy_chosen, chosen_backward = policy.sequence_log_probs_with_grad(chosen_tokens, chosen_mask)
    else:
        policy_chosen = policy.sequence_log_probs(chosen_tokens, chosen_mask)
        chosen_backward = None

    margin = (policy_chosen - ref_chosen) - (policy_rejected - ref_rejected)
    h = beta * margin
    losses = -np.log(np.clip(sigmoid(h), 1e-12, None))
    batch_size = h.shape[0]
    coefficient = sigmoid(-h) * beta / batch_size

    if backward:
        # Chosen branch: caches are still valid from the forward above.
        chosen_backward(-coefficient)
        # Rejected branch: re-run the forward with gradients, then backpropagate.
        _, rejected_backward = policy.sequence_log_probs_with_grad(rejected_tokens, rejected_mask)
        rejected_backward(coefficient)

    return DPOBatchMetrics(
        loss=float(np.mean(losses)),
        accuracy=float(np.mean(policy_chosen > policy_rejected)),
        marginal_preference=float(np.mean(margin)),
        chosen_log_prob=float(np.mean(policy_chosen)),
        rejected_log_prob=float(np.mean(policy_rejected)),
    )
