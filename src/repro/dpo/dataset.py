"""Tokenised preference datasets for DPO training.

Each :class:`~repro.feedback.ranker.PreferencePair` ``(x, y_w, y_l)`` becomes a
pair of token sequences (prompt + chosen, prompt + rejected) plus masks that
select the *response* target positions — DPO's log-probabilities are summed
only over the response tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.feedback.ranker import PreferencePair
from repro.lm.corpus import format_document
from repro.lm.tokenizer import Tokenizer


@dataclass
class EncodedPair:
    """Token ids and response masks for one preference pair."""

    chosen_ids: list
    rejected_ids: list
    chosen_response_start: int
    rejected_response_start: int
    task: str = ""


def encode_preference_pair(pair: PreferencePair, tokenizer: Tokenizer, *, max_seq_len: int = 96) -> EncodedPair:
    """Tokenise one preference pair (truncating over-long sequences).

    The single source of truth for pair encoding: both the blocking
    :meth:`DPODataset.from_preference_pairs` batch path and the incremental
    :class:`~repro.dpo.stream.DPODatasetWriter` call this, which is what makes
    a streamed dataset bitwise-identical to a blocking-built one.
    """
    if not isinstance(pair, PreferencePair):
        raise TrainingError(f"expected PreferencePair, got {type(pair)!r}")
    prompt_ids = tokenizer.encode(pair.prompt, add_bos=True)
    chosen_ids = tokenizer.encode(format_document(pair.prompt, pair.chosen), add_bos=True, add_eos=True)
    rejected_ids = tokenizer.encode(format_document(pair.prompt, pair.rejected), add_bos=True, add_eos=True)
    return EncodedPair(
        chosen_ids=chosen_ids[:max_seq_len],
        rejected_ids=rejected_ids[:max_seq_len],
        chosen_response_start=min(len(prompt_ids), max_seq_len - 1),
        rejected_response_start=min(len(prompt_ids), max_seq_len - 1),
        task=pair.task,
    )


@dataclass
class DPODataset:
    """A tokenised preference dataset ready for mini-batching.

    Append-friendly: besides being built in one shot with
    :meth:`from_preference_pairs`, a dataset can grow incrementally through
    :meth:`append` / :meth:`extend` (the shape
    :class:`~repro.dpo.stream.DPODatasetWriter` feeds while verification is
    still in flight) and can materialise a mini-batch over any explicit index
    window with :meth:`batch` — what the trainer's streamed first epoch uses
    to consume a growing prefix.
    """

    pairs: list = field(default_factory=list)          # list[EncodedPair]
    tokenizer: Tokenizer = None
    max_seq_len: int = 96

    def __len__(self) -> int:
        return len(self.pairs)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_preference_pairs(
        cls,
        pairs,
        tokenizer: Tokenizer,
        *,
        max_seq_len: int = 96,
    ) -> "DPODataset":
        """Encode raw preference pairs (truncating over-long sequences)."""
        dataset = cls(pairs=[], tokenizer=tokenizer, max_seq_len=max_seq_len)
        for pair in pairs:
            dataset.append(pair)
        return dataset

    # ------------------------------------------------------------------ #
    def append(self, pair) -> EncodedPair:
        """Encode and append one pair; accepts raw or already-encoded pairs."""
        encoded = (
            pair
            if isinstance(pair, EncodedPair)
            else encode_preference_pair(pair, self.tokenizer, max_seq_len=self.max_seq_len)
        )
        self.pairs.append(encoded)
        return encoded

    def extend(self, pairs) -> None:
        """Append several raw or encoded pairs in order."""
        for pair in pairs:
            self.append(pair)

    # ------------------------------------------------------------------ #
    def _pad_batch(self, sequences: list, starts: list) -> tuple:
        """Pad sequences to a common length; build the response target mask."""
        pad_id = self.tokenizer.pad_id
        max_len = max(len(s) for s in sequences)
        tokens = np.full((len(sequences), max_len), pad_id, dtype=np.int64)
        mask = np.zeros((len(sequences), max_len - 1), dtype=np.float32)
        for row, (sequence, start) in enumerate(zip(sequences, starts)):
            tokens[row, : len(sequence)] = sequence
            # Target position j predicts tokens[j + 1]; response targets begin
            # at the first token after the prompt (and its newline separator).
            for j in range(start, len(sequence) - 1):
                mask[row, j] = 1.0
        return tokens, mask

    def batch(self, indices) -> dict:
        """Materialise one mini-batch over an explicit index selection.

        ``indices`` is any integer sequence; the returned dictionary has the
        same arrays :meth:`batches` yields.  Used directly by the streamed
        trainer epoch, which batches over a contiguous, still-growing prefix
        instead of a shuffled permutation.
        """
        index = np.asarray(list(indices), dtype=np.int64)
        chosen = [self.pairs[i].chosen_ids for i in index]
        rejected = [self.pairs[i].rejected_ids for i in index]
        chosen_starts = [self.pairs[i].chosen_response_start for i in index]
        rejected_starts = [self.pairs[i].rejected_response_start for i in index]
        chosen_tokens, chosen_mask = self._pad_batch(chosen, chosen_starts)
        rejected_tokens, rejected_mask = self._pad_batch(rejected, rejected_starts)
        return {
            "chosen_tokens": chosen_tokens,
            "chosen_mask": chosen_mask,
            "rejected_tokens": rejected_tokens,
            "rejected_mask": rejected_mask,
            "indices": index,
        }

    def batches(self, batch_size: int, *, rng: np.random.Generator | None = None, shuffle: bool = True):
        """Yield mini-batches as dictionaries of numpy arrays."""
        if not self.pairs:
            raise TrainingError("DPO dataset is empty")
        order = np.arange(len(self.pairs))
        if shuffle:
            if rng is None:
                raise TrainingError("shuffling requires an rng")
            order = rng.permutation(order)
        for start in range(0, len(order), batch_size):
            yield self.batch(order[start: start + batch_size])

    def num_batches(self, batch_size: int) -> int:
        return (len(self.pairs) + batch_size - 1) // batch_size
