"""Exception hierarchy for the repro library.

Every library-specific failure raises a subclass of :class:`ReproError` so
callers can distinguish library errors from programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific exceptions."""


class LTLSyntaxError(ReproError):
    """Raised when an LTL formula string cannot be parsed."""


class SMVSyntaxError(ReproError):
    """Raised when an SMV-like module description cannot be parsed."""


class AutomatonError(ReproError):
    """Raised for malformed automata (unknown states, bad symbols, ...)."""


class AlignmentError(ReproError):
    """Raised when a textual step cannot be aligned to propositions/actions."""


class VerificationError(ReproError):
    """Raised when model checking cannot be carried out (not a spec violation)."""


class SimulationError(ReproError):
    """Raised when a simulator rollout is configured inconsistently."""


class TrainingError(ReproError):
    """Raised for invalid language-model or DPO training configurations."""
