"""Job and batch records: the durable state machine of :mod:`repro.jobs`.

A :class:`Job` is one verification request owned by one client, frozen like
every record the journal persists — a state change produces a *new* job via
:meth:`Job.transition`, which validates the move against the explicit state
machine::

    PENDING ──> RUNNING ──> SUCCEEDED
       │           │ ╲
       │           │  ──> FAILED
       │           v
       │        RETRYING ──> RUNNING   (next attempt)
       │           │
       v           v
    CANCELLED   CANCELLED

``SUCCEEDED`` / ``FAILED`` / ``CANCELLED`` are terminal; ``FAILED`` is only
reached when the daemon's retry policy is exhausted, and ``CANCELLED`` only
from states where no attempt is executing (a running verification cannot be
aborted mid-model-check).  Every timestamp is **passed in by the caller** —
models never read a clock, so replayed journals and injected test clocks
produce identical records.

:class:`Batch` groups the jobs one ``create_batch`` call admitted, so clients
can watch or collect a whole submission by one id.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: The five job states, as stored in journal records.
PENDING = "pending"
RUNNING = "running"
RETRYING = "retrying"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every state, in lifecycle order (useful for stable per-state gauges).
JOB_STATES = (PENDING, RUNNING, RETRYING, SUCCEEDED, FAILED, CANCELLED)

#: States from which no further transition is legal.
TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, CANCELLED})

#: The explicit state machine: ``current -> {legal next states}``.
VALID_TRANSITIONS = {
    PENDING: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({SUCCEEDED, FAILED, RETRYING}),
    RETRYING: frozenset({RUNNING, CANCELLED, FAILED}),
    SUCCEEDED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}


class InvalidTransitionError(ValueError):
    """A job was asked to move between states the machine does not connect."""


@dataclass(frozen=True)
class Job:
    """One verification request: a response to score, owned by one client.

    Immutable; :meth:`transition` returns the successor record.  ``attempts``
    counts *started* scoring attempts (0 while ``PENDING``); ``score`` is
    set only by the transition to ``SUCCEEDED`` and ``error`` only by
    ``FAILED``/``RETRYING``.  ``created_at`` / ``updated_at`` are wall-clock
    seconds supplied by the caller (the daemon's injectable clock).
    """

    job_id: str
    client_id: str
    task: str
    scenario: str
    response: str
    state: str = PENDING
    attempts: int = 0
    score: int | None = None
    error: str | None = None
    batch_id: str | None = None
    created_at: float = 0.0
    updated_at: float = 0.0

    def __post_init__(self) -> None:
        if self.state not in VALID_TRANSITIONS:
            raise ValueError(f"unknown job state {self.state!r}; known: {JOB_STATES}")
        if self.attempts < 0:
            raise ValueError(f"attempts must be non-negative, got {self.attempts}")

    # ------------------------------------------------------------------ #
    @property
    def is_terminal(self) -> bool:
        """Whether the job has finished for good (succeeded/failed/cancelled)."""
        return self.state in TERMINAL_STATES

    def transition(
        self,
        state: str,
        *,
        at: float,
        score: int | None = None,
        error: str | None = None,
        attempts: int | None = None,
    ) -> "Job":
        """The successor job in ``state``, stamped ``updated_at=at``.

        Raises :class:`InvalidTransitionError` for moves the state machine
        does not allow (including any move out of a terminal state), and
        ``ValueError`` when ``score`` accompanies anything but ``SUCCEEDED``.
        """
        if state not in VALID_TRANSITIONS:
            raise ValueError(f"unknown job state {state!r}; known: {JOB_STATES}")
        if state not in VALID_TRANSITIONS[self.state]:
            raise InvalidTransitionError(
                f"job {self.job_id}: illegal transition {self.state} -> {state}"
            )
        if score is not None and state != SUCCEEDED:
            raise ValueError(f"a score can only accompany {SUCCEEDED}, not {state}")
        return replace(
            self,
            state=state,
            updated_at=at,
            score=score if state == SUCCEEDED else self.score,
            error=error if error is not None else (None if state == SUCCEEDED else self.error),
            attempts=self.attempts if attempts is None else attempts,
        )

    # ------------------------------------------------------------------ #
    def to_record(self) -> dict:
        """JSON-friendly dict — the journal/snapshot (and wire) shape."""
        return {
            "job_id": self.job_id,
            "client_id": self.client_id,
            "task": self.task,
            "scenario": self.scenario,
            "response": self.response,
            "state": self.state,
            "attempts": self.attempts,
            "score": self.score,
            "error": self.error,
            "batch_id": self.batch_id,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Job":
        """Rebuild a job from :meth:`to_record` output (journal replay)."""
        return cls(
            job_id=record["job_id"],
            client_id=record["client_id"],
            task=record["task"],
            scenario=record["scenario"],
            response=record["response"],
            state=record.get("state", PENDING),
            attempts=int(record.get("attempts", 0)),
            score=record.get("score"),
            error=record.get("error"),
            batch_id=record.get("batch_id"),
            created_at=float(record.get("created_at", 0.0)),
            updated_at=float(record.get("updated_at", 0.0)),
        )


@dataclass(frozen=True)
class Batch:
    """The jobs one ``create_batch`` call admitted, addressable by one id."""

    batch_id: str
    client_id: str
    job_ids: tuple
    created_at: float = 0.0

    def to_record(self) -> dict:
        """JSON-friendly dict — the journal/snapshot (and wire) shape."""
        return {
            "batch_id": self.batch_id,
            "client_id": self.client_id,
            "job_ids": list(self.job_ids),
            "created_at": self.created_at,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Batch":
        """Rebuild a batch from :meth:`to_record` output (journal replay)."""
        return cls(
            batch_id=record["batch_id"],
            client_id=record["client_id"],
            job_ids=tuple(record["job_ids"]),
            created_at=float(record.get("created_at", 0.0)),
        )
