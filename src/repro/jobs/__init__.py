"""repro.jobs — feedback scoring as a durable, multi-client service.

The serving layer (:mod:`repro.serving`) made batched feedback scoring fast
inside one process's lifetime; this package makes it *survivable and
shareable*: a daemon (:class:`JobsDaemon`) owns one
:class:`~repro.serving.scheduler.FeedbackService` and exposes it to many
clients over a JSON-over-Unix-socket protocol, journaling every job state
change (:class:`JobStore`) so a killed daemon restarts into exactly the
state it acknowledged — every accepted job still reaches a terminal state
exactly once, with scores bitwise-identical to a one-shot run.

Layers, bottom-up:

* :mod:`repro.jobs.models` — frozen :class:`Job` / :class:`Batch` records
  and the explicit state machine (``PENDING → RUNNING → SUCCEEDED`` /
  ``FAILED``, with ``RETRYING`` and ``CANCELLED``).
* :mod:`repro.jobs.store`  — append-only JSONL journal + periodic atomic
  snapshot; replay-on-open is the restart semantics.
* :mod:`repro.jobs.quota`  — per-client max-inflight admission
  (:class:`QuotaLedger`); rejections are explicit, never silent.
* :mod:`repro.jobs.server` — the thread-per-connection daemon; per-client
  dispatcher tokens make the existing round-robin the fairness policy, and
  failed attempts retry via :mod:`repro.utils.retry`.
* :mod:`repro.jobs.client` — blocking :class:`JobsClient` with typed errors.
* :mod:`repro.jobs.cli`    — the ``repro-serve daemon|submit|status|watch``
  subcommands, sharing the one-shot CLI's argument/config layer.

Protocol, journal format and restart semantics: ``docs/jobs.md``.
"""

from repro.jobs.client import JobsClient, JobsError, QuotaExceededError, UnknownJobError
from repro.jobs.models import (
    CANCELLED,
    FAILED,
    JOB_STATES,
    PENDING,
    RETRYING,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    Batch,
    InvalidTransitionError,
    Job,
)
from repro.jobs.quota import QuotaExceeded, QuotaLedger
from repro.jobs.server import ERROR_TYPES, PROTOCOL_VERSION, JobsDaemon, RequestError
from repro.jobs.store import JobStore

__all__ = [
    "Job",
    "Batch",
    "InvalidTransitionError",
    "PENDING",
    "RUNNING",
    "RETRYING",
    "SUCCEEDED",
    "FAILED",
    "CANCELLED",
    "JOB_STATES",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "JobStore",
    "QuotaLedger",
    "QuotaExceeded",
    "JobsDaemon",
    "RequestError",
    "PROTOCOL_VERSION",
    "ERROR_TYPES",
    "JobsClient",
    "JobsError",
    "QuotaExceededError",
    "UnknownJobError",
]
