"""Blocking client for the jobs daemon's JSON-over-Unix-socket protocol.

:class:`JobsClient` speaks the newline-delimited JSON protocol of
:class:`~repro.jobs.server.JobsDaemon`: one short-lived connection per
request (so a client object is trivially thread-safe and never holds a stale
socket across a daemon restart), plus a persistent connection for
:meth:`JobsClient.stream_progress`, which yields events as the daemon pushes
them.  Protocol errors surface as typed exceptions —
:class:`QuotaExceededError`, :class:`UnknownJobError`, or the base
:class:`JobsError` carrying the wire error type — never as silent ``None``.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path


class JobsError(Exception):
    """A request the daemon rejected; ``error_type`` is the wire error type."""

    def __init__(self, error_type: str, message: str):
        super().__init__(message)
        self.error_type = error_type


class QuotaExceededError(JobsError):
    """The submission would exceed the client's max-inflight quota."""


class UnknownJobError(JobsError):
    """The named job or batch does not exist on the daemon."""


#: Wire error types with a dedicated exception class (others raise JobsError).
_ERROR_CLASSES = {
    "quota-exceeded": QuotaExceededError,
    "unknown-job": UnknownJobError,
    "unknown-batch": UnknownJobError,
}


def _raise_for_error(error: dict) -> None:
    error_type = error.get("type", "error")
    message = error.get("message", "")
    raise _ERROR_CLASSES.get(error_type, JobsError)(error_type, message)


class JobsClient:
    """Blocking access to a running jobs daemon.

    Parameters
    ----------
    socket_path:
        The daemon's Unix socket.
    client_id:
        Identity sent with every submission — the daemon's quota cap and
        round-robin fairness are keyed on it.
    timeout:
        Socket timeout (seconds) for each request *and* for each streamed
        event; a daemon that stops answering raises ``TimeoutError`` rather
        than hanging the caller forever.
    """

    def __init__(self, socket_path: str | Path, *, client_id: str = "default", timeout: float = 60.0):
        self.socket_path = str(socket_path)
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(self.timeout)
        conn.connect(self.socket_path)
        return conn

    def _request(self, op: str, params: dict) -> dict:
        """One request/response round trip on a fresh connection."""
        with self._connect() as conn:
            conn.sendall((json.dumps({"op": op, "params": params}) + "\n").encode("utf-8"))
            reader = conn.makefile("r", encoding="utf-8")
            line = reader.readline()
        if not line:
            raise JobsError("disconnected", f"daemon closed the connection during {op!r}")
        response = json.loads(line)
        if not response.get("ok"):
            _raise_for_error(response.get("error", {}))
        return response["result"]

    # ------------------------------------------------------------------ #
    def create_job(self, task: str, response: str, *, scenario: str | None = None) -> dict:
        """Submit one job; returns its (pending) record with the new job id."""
        params = {"client_id": self.client_id, "task": task, "response": response}
        if scenario is not None:
            params["scenario"] = scenario
        return self._request("create_job", params)["job"]

    def create_batch(self, jobs: list) -> dict:
        """Submit several jobs atomically (all admitted or all rejected).

        ``jobs`` is a list of ``{"task": ..., "response": ...[, "scenario":
        ...]}`` dicts; returns ``{"batch": batch record, "jobs": [job
        records]}``.  Raises :class:`QuotaExceededError` without admitting
        anything when the batch would exceed the quota.
        """
        return self._request("create_batch", {"client_id": self.client_id, "jobs": jobs})

    def get_status(self, job_id: str) -> dict:
        """The job's current record (raises :class:`UnknownJobError`)."""
        return self._request("get_status", {"job_id": job_id})["job"]

    def get_batch(self, batch_id: str) -> dict:
        """``{"batch": ..., "jobs": [...]}`` for one batch."""
        return self._request("get_batch", {"batch_id": batch_id})

    def list_jobs(self, *, client_id: str | None = None, state: str | None = None) -> list:
        """Job records, optionally filtered by owner and/or state."""
        params: dict = {}
        if client_id is not None:
            params["client_id"] = client_id
        if state is not None:
            params["state"] = state
        return self._request("list_jobs", params)["jobs"]

    def cancel(self, job_id: str) -> dict:
        """Cancel a pending/retrying job; returns the cancelled record."""
        return self._request("cancel", {"job_id": job_id})["job"]

    def stats(self) -> dict:
        """Daemon-wide stats: per-state counts, queue depth, inflight map."""
        return self._request("stats", {})

    def shutdown(self) -> dict:
        """Ask the daemon to stop (open jobs stay durable for a restart)."""
        return self._request("shutdown", {})

    # ------------------------------------------------------------------ #
    def stream_progress(self, *, job_ids: list | None = None, batch_id: str | None = None):
        """Yield progress events for the watched jobs until all are terminal.

        Each event is the daemon's ``{"type": "job", "job": record}`` dict
        (one initial snapshot per watched job, then every state change) and
        finally ``{"type": "end", "reason": ...}``, after which the generator
        stops.
        """
        params: dict = {}
        if batch_id is not None:
            params["batch_id"] = batch_id
        if job_ids is not None:
            params["job_ids"] = list(job_ids)
        with self._connect() as conn:
            conn.sendall(
                (json.dumps({"op": "stream_progress", "params": params}) + "\n").encode("utf-8")
            )
            reader = conn.makefile("r", encoding="utf-8")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                response = json.loads(line)
                if not response.get("ok"):
                    _raise_for_error(response.get("error", {}))
                event = response["event"]
                yield event
                if event.get("type") == "end":
                    return
        raise JobsError("disconnected", "daemon closed the stream before the end event")

    def wait(self, job_ids: list) -> dict:
        """Block until every job in ``job_ids`` is terminal; ``{id: record}``.

        Raises :class:`JobsError` if the daemon shuts down before the jobs
        finish (they remain durable for the next daemon on the same store).
        """
        return self._wait(job_ids=list(job_ids), batch_id=None)

    def wait_batch(self, batch_id: str) -> dict:
        """Block until every job of ``batch_id`` is terminal; ``{id: record}``."""
        return self._wait(job_ids=None, batch_id=batch_id)

    def _wait(self, *, job_ids, batch_id) -> dict:
        final: dict = {}
        for event in self.stream_progress(job_ids=job_ids, batch_id=batch_id):
            if event.get("type") == "end":
                if event.get("reason") != "done":
                    raise JobsError(
                        "shutting-down", "daemon stopped before the watched jobs finished"
                    )
                return final
            record = event["job"]
            final[record["job_id"]] = record
        raise JobsError("disconnected", "stream ended without an end event")
