"""The jobs daemon: feedback scoring as a durable Unix-socket service.

:class:`JobsDaemon` wraps an ordinary
:class:`~repro.serving.scheduler.FeedbackService` (reused unchanged — same
cache, same worker pool, same scores) with everything a *service* needs that
a one-shot CLI run does not:

* **Durability** — every accepted job and every state change is journaled
  through a :class:`~repro.jobs.store.JobStore` before it is acknowledged,
  so a daemon killed mid-batch resumes its non-terminal jobs on restart and
  finishes each exactly once (exactly one terminal journal record per job).
* **Admission control** — a per-client max-inflight cap
  (:class:`~repro.jobs.quota.QuotaLedger`); submissions over the cap are
  rejected whole with a typed ``quota-exceeded`` error, never trimmed or
  silently queued.
* **Fairness** — each client's jobs are submitted to the shared
  :class:`~repro.serving.scheduler.Dispatcher` under that client's own
  service token, so the dispatcher's round-robin interleaves clients: a
  greedy client at its cap cannot starve another client's jobs.
* **Retries** — a failed scoring attempt is retried with the shared
  jittered-backoff policy from :mod:`repro.utils.retry`
  (``RUNNING → RETRYING → RUNNING``), and only becomes ``FAILED`` when the
  policy is exhausted.
* **Observability** — ``job.submit`` / ``job.run`` / ``job.retry`` spans in
  the ``"jobs"`` category, plus registry gauges for queue depth, per-state
  job counts and per-client inflight.

Wire protocol (documented in full in ``docs/jobs.md``): newline-delimited
JSON over a Unix stream socket.  Each request line is
``{"op": ..., "params": {...}}``; each response line is ``{"ok": true,
"result": ...}`` or ``{"ok": false, "error": {"type": ..., "message":
...}}``.  The ``stream_progress`` op instead answers with a sequence of
``{"ok": true, "event": ...}`` lines ending in an ``end`` event.

Locking: the daemon has one condition, ``_state_cond``, guarding job state,
the event log and the id counters.  While holding it the daemon may take the
store's, the quota ledger's or a metric instrument's internal lock — never
the reverse — and **scoring always runs outside every daemon lock**, so a
slow verification cannot block submissions, status queries or streams.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path

from repro import obs
from repro.jobs import models
from repro.jobs.models import Batch, Job
from repro.jobs.quota import QuotaExceeded, QuotaLedger
from repro.utils.retry import RetryPolicy, call_with_retry

#: Bumped when the request/response shapes change incompatibly.
PROTOCOL_VERSION = 1

#: Error types a response's ``error.type`` field may carry.
ERROR_TYPES = (
    "invalid-request",
    "unknown-op",
    "unknown-job",
    "unknown-batch",
    "quota-exceeded",
    "not-cancellable",
    "shutting-down",
)


class RequestError(Exception):
    """A request the daemon rejects; ``error_type`` is one of :data:`ERROR_TYPES`."""

    def __init__(self, error_type: str, message: str):
        super().__init__(message)
        self.error_type = error_type


class _JobCancelled(Exception):
    """Internal: the job was cancelled before this attempt started."""


class _DaemonStopping(Exception):
    """Internal: the daemon is shutting down; leave the job for a restart."""


class _ScoringFailed(Exception):
    """Internal: one scoring attempt raised (wrapped so only these retry)."""


class _ClientToken:
    """Identity object keyed into the dispatcher's round-robin per client."""

    def __init__(self, client_id: str):
        self.client_id = client_id


class JobsDaemon:
    """Durable, fair, observable job service over a ``FeedbackService``.

    Parameters
    ----------
    socket_path:
        Unix socket to listen on (AF_UNIX; keep it short — the kernel caps
        socket paths around 108 bytes).  A stale file is replaced.
    store:
        The :class:`~repro.jobs.store.JobStore` holding job state.  Opening a
        previous daemon's store resumes its non-terminal jobs.  Borrowed —
        the caller closes it (after :meth:`stop`).
    service:
        The :class:`~repro.serving.scheduler.FeedbackService` that scores
        jobs — reused unchanged, so daemon scores are bitwise-identical to
        one-shot ``repro-serve`` runs with the same configuration.  Borrowed.
    dispatcher:
        The :class:`~repro.serving.scheduler.Dispatcher` jobs execute on;
        each client's jobs are submitted under a per-client token, so the
        dispatcher's round-robin is the daemon's cross-client fairness.
        Borrowed — close it (draining job execution) after :meth:`stop`.
    max_inflight_per_client:
        Per-client cap on non-terminal jobs; ``None`` disables the cap.
    retry:
        :class:`~repro.utils.retry.RetryPolicy` for failed scoring attempts;
        defaults to the shared policy's defaults (3 attempts).
    throttle_seconds:
        Artificial pause before each scoring attempt.  A test/demo knob: it
        holds jobs in flight long enough to kill a daemon mid-batch or watch
        a stream, without touching the scoring path itself.
    clock / sleep:
        Injectable time sources (``time.time`` / ``time.sleep``) so tests can
        freeze timestamps and skip real backoff waits.
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` receiving the gauges;
        a private one is created when omitted (exposed as ``registry``).
    """

    def __init__(
        self,
        socket_path: str | Path,
        store,
        service,
        *,
        dispatcher,
        max_inflight_per_client: int | None = None,
        retry: RetryPolicy | None = None,
        throttle_seconds: float = 0.0,
        clock=time.time,
        sleep=time.sleep,
        registry=None,
    ):
        if throttle_seconds < 0:
            raise ValueError(f"throttle_seconds must be non-negative, got {throttle_seconds}")
        self.socket_path = Path(socket_path)
        self.store = store
        self.service = service
        self.dispatcher = dispatcher
        self.quota = QuotaLedger(max_inflight_per_client)
        self.retry = retry if retry is not None else RetryPolicy()
        self.throttle_seconds = throttle_seconds
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry
        self._clock = clock
        self._sleep = sleep
        self._state_cond = threading.Condition()
        self._events: list = []
        self._state_counts = {state: 0 for state in models.JOB_STATES}
        self._client_tokens: dict = {}
        self._conn_threads: list = []
        self._connections: list = []
        self._next_job_seq = 0
        self._next_batch_seq = 0
        self._stopping = False
        self._started = False
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop_requested = threading.Event()
        self._handlers = {
            "create_job": self._op_create_job,
            "create_batch": self._op_create_batch,
            "get_status": self._op_get_status,
            "get_batch": self._op_get_batch,
            "list_jobs": self._op_list_jobs,
            "cancel": self._op_cancel,
            "stats": self._op_stats,
            # "shutdown" and "stream_progress" are dispatched inline in
            # _serve_connection: both need control over response ordering.
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Resume the store's non-terminal jobs and start listening."""
        if self._started:
            raise RuntimeError("JobsDaemon.start() called twice")
        self._started = True
        with self._state_cond:
            self._seed_from_store_locked()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self.socket_path.unlink(missing_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen()
        # close() does not wake a thread blocked in accept(); a timeout makes
        # the accept loop re-poll and observe the closed socket promptly.
        listener.settimeout(0.5)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-jobs-accept", daemon=True
        )
        self._accept_thread.start()

    def _seed_from_store_locked(self) -> None:
        """Rebuild counters/ids from a replayed store and resubmit open jobs."""
        for job in self.store.jobs():
            self._state_counts[job.state] += 1
            self._next_job_seq = max(self._next_job_seq, _id_sequence(job.job_id, "j"))
        for batch in self.store.batches():
            self._next_batch_seq = max(self._next_batch_seq, _id_sequence(batch.batch_id, "b"))
        for job in self.store.pending_jobs():
            if job.state == models.RUNNING:
                # The previous daemon died mid-attempt; the attempt produced
                # no terminal record, so it re-runs (same attempt budget).
                job = self._transition_locked(
                    job, models.RETRYING, error="daemon restarted mid-attempt"
                )
            self.quota.admit(job.client_id, force=True)
            self._set_inflight_gauge(job.client_id)
            self._submit_job_locked(job)
        self._update_gauges_locked()

    def request_stop(self) -> None:
        """Ask the daemon to stop (signal-handler/shutdown-op safe, idempotent)."""
        self._stop_requested.set()

    def wait(self) -> None:
        """Block until :meth:`request_stop` (shutdown op or signal) fires."""
        self._stop_requested.wait()

    def stop(self) -> None:
        """Stop accepting, end streams, and leave open jobs for a restart.

        Queued jobs that have not started an attempt stay ``PENDING`` /
        ``RETRYING`` in the store — the next daemon on the same store resumes
        them.  Idempotent.  The borrowed dispatcher/service/store are *not*
        closed here; the owner closes them afterwards.
        """
        with self._state_cond:
            already = self._stopping
            self._stopping = True
            self._state_cond.notify_all()
        if already:
            return
        self._stop_requested.set()
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10)
        with self._state_cond:
            threads = list(self._conn_threads)
            connections = list(self._connections)
        for conn in connections:
            # Unblock handler threads parked in readline on an idle client.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:  # already closed by its handler thread
                continue
        for thread in threads:
            thread.join(timeout=10)

    def serve_forever(self) -> None:
        """``start()``, block until a shutdown request, then ``stop()``."""
        self.start()
        self.wait()
        self.stop()

    # ------------------------------------------------------------------ #
    # job execution (dispatcher thread)
    # ------------------------------------------------------------------ #
    def _submit_job_locked(self, job: Job) -> None:
        """Queue ``job`` on the dispatcher under its client's fairness token."""
        token = self._client_tokens.get(job.client_id)
        if token is None:
            token = _ClientToken(job.client_id)
            self._client_tokens[job.client_id] = token
        self.dispatcher.submit(self._execute_job, job.job_id, service=token)

    def _execute_job(self, job_id: str) -> None:
        """Run one job to a terminal state: attempts, retries, journaling."""
        try:
            score = call_with_retry(
                lambda: self._attempt(job_id),
                policy=self.retry,
                retry_on=(_ScoringFailed,),
                sleep=self._sleep,
                on_retry=lambda failures, exc, wait: self._note_retry(job_id, exc, wait),
            )
        except (_JobCancelled, _DaemonStopping):
            # Cancelled: the terminal record was journaled by cancel().
            # Stopping: the job stays non-terminal for the next daemon.
            return
        except _ScoringFailed as exc:
            self._finish(job_id, models.FAILED, error=str(exc))
        else:
            self._finish(job_id, models.SUCCEEDED, score=score)

    def _attempt(self, job_id: str) -> int:
        """One scoring attempt; scoring runs outside every daemon lock."""
        with self._state_cond:
            if self._stopping:
                raise _DaemonStopping(job_id)
            job = self.store.get(job_id)
            if job.state == models.CANCELLED:
                raise _JobCancelled(job_id)
            job = self._transition_locked(job, models.RUNNING, attempts=job.attempts + 1)
        if self.throttle_seconds:
            self._sleep(self.throttle_seconds)
        from repro.serving import FeedbackJob  # deferred: serving imports are heavy

        feedback_job = FeedbackJob(task=job.task, scenario=job.scenario, response=job.response)
        try:
            with obs.span(
                "job.run",
                category="jobs",
                job_id=job_id,
                client=job.client_id,
                attempt=job.attempts,
            ):
                return self.service.score_batch([feedback_job])[0]
        except Exception as exc:
            raise _ScoringFailed(f"{type(exc).__name__}: {exc}") from exc

    def _note_retry(self, job_id: str, exc: Exception, wait: float) -> None:
        """Journal a failed attempt as ``RETRYING`` before the backoff sleep."""
        with obs.span("job.retry", category="jobs", job_id=job_id, wait_seconds=wait):
            with self._state_cond:
                job = self.store.get(job_id)
                self._transition_locked(job, models.RETRYING, error=str(exc))

    def _finish(self, job_id: str, state: str, *, score=None, error=None) -> None:
        """Journal the terminal state and release the client's quota slot."""
        with self._state_cond:
            job = self.store.get(job_id)
            self._transition_locked(job, state, score=score, error=error)
            self.quota.release(job.client_id)
            self._set_inflight_gauge(job.client_id)

    def _transition_locked(self, job: Job, state: str, **kwargs) -> Job:
        """Apply + journal one state change; update counts, events, gauges."""
        updated = job.transition(state, at=self._clock(), **kwargs)
        self.store.append_job(updated)
        self._state_counts[job.state] -= 1
        self._state_counts[state] += 1
        self._events.append({"type": "job", "job": updated.to_record()})
        self._update_gauges_locked()
        self._state_cond.notify_all()
        return updated

    def _update_gauges_locked(self) -> None:
        depth = self._state_counts[models.PENDING] + self._state_counts[models.RETRYING]
        self.registry.gauge("jobs.queue_depth").set(depth)
        for state in models.JOB_STATES:
            self.registry.gauge(f"jobs.state.{state}").set(self._state_counts[state])
        obs.counter("jobs.queue_depth", depth)

    def _set_inflight_gauge(self, client_id: str) -> None:
        self.registry.gauge(f"jobs.inflight.{client_id}").set(self.quota.inflight(client_id))

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def _admit(self, client_id: str, specs: list, *, with_batch: bool):
        """Validate, quota-admit (all or nothing), journal and queue jobs.

        Returns ``(batch_record_or_None, [job records])``.  Validation runs
        before any quota is taken, so a malformed batch costs nothing; a
        quota rejection reserves nothing and is surfaced as a typed error.
        """
        resolved = [self._validate_spec(spec) for spec in specs]
        try:
            self.quota.admit(client_id, len(resolved))
        except QuotaExceeded as exc:
            raise RequestError("quota-exceeded", str(exc)) from exc
        self._set_inflight_gauge(client_id)
        now = self._clock()
        with self._state_cond:
            if self._stopping:
                self.quota.release(client_id, len(resolved))
                self._set_inflight_gauge(client_id)
                raise RequestError("shutting-down", "daemon is shutting down")
            batch = None
            batch_id = None
            if with_batch:
                self._next_batch_seq += 1
                batch_id = f"b-{self._next_batch_seq:06d}"
            jobs = []
            for task, scenario, response in resolved:
                self._next_job_seq += 1
                job = Job(
                    job_id=f"j-{self._next_job_seq:06d}",
                    client_id=client_id,
                    task=task,
                    scenario=scenario,
                    response=response,
                    batch_id=batch_id,
                    created_at=now,
                    updated_at=now,
                )
                self.store.append_job(job)
                self._state_counts[models.PENDING] += 1
                self._events.append({"type": "job", "job": job.to_record()})
                jobs.append(job)
            if with_batch:
                batch = Batch(
                    batch_id=batch_id,
                    client_id=client_id,
                    job_ids=tuple(job.job_id for job in jobs),
                    created_at=now,
                )
                self.store.append_batch(batch)
            self._update_gauges_locked()
            for job in jobs:
                self._submit_job_locked(job)
            self._state_cond.notify_all()
        batch_record = batch.to_record() if batch is not None else None
        return batch_record, [job.to_record() for job in jobs]

    def _validate_spec(self, spec):
        """``{task, response[, scenario]}`` → ``(task, scenario, response)``.

        Same resolution rules as the one-shot CLI input: an explicit
        ``scenario`` must exist in the catalogue; otherwise the task must.
        """
        if not isinstance(spec, dict):
            raise RequestError(
                "invalid-request", f"each job must be an object, got {type(spec).__name__}"
            )
        task = spec.get("task")
        response = spec.get("response")
        if not isinstance(task, str) or not isinstance(response, str):
            raise RequestError(
                "invalid-request", "each job needs string 'task' and 'response' fields"
            )
        scenario = spec.get("scenario")
        if scenario is not None and not isinstance(scenario, str):
            raise RequestError(
                "invalid-request", f"'scenario' must be a string, got {type(scenario).__name__}"
            )
        from repro.driving.scenarios.universal import SCENARIO_BUILDERS
        from repro.driving.tasks import task_by_name

        if scenario is None:
            try:
                scenario = task_by_name(task).scenario
            except KeyError as exc:
                raise RequestError(
                    "invalid-request",
                    f"{exc.args[0]} (or pass an explicit 'scenario' field)",
                ) from exc
        elif scenario not in SCENARIO_BUILDERS:
            raise RequestError(
                "invalid-request",
                f"unknown scenario {scenario!r}; known: {sorted(SCENARIO_BUILDERS)}",
            )
        return task, scenario, response

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    def _op_create_job(self, params: dict) -> dict:
        client_id = _require_str(params, "client_id")
        with obs.span("job.submit", category="jobs", client=client_id, jobs=1):
            _batch, records = self._admit(client_id, [params], with_batch=False)
        return {"job": records[0]}

    def _op_create_batch(self, params: dict) -> dict:
        client_id = _require_str(params, "client_id")
        specs = params.get("jobs")
        if not isinstance(specs, list) or not specs:
            raise RequestError("invalid-request", "'jobs' must be a non-empty list")
        with obs.span("job.submit", category="jobs", client=client_id, jobs=len(specs)):
            batch, records = self._admit(client_id, specs, with_batch=True)
        return {"batch": batch, "jobs": records}

    def _op_get_status(self, params: dict) -> dict:
        job = self.store.get(_require_str(params, "job_id"))
        if job is None:
            raise RequestError("unknown-job", f"unknown job {params['job_id']!r}")
        return {"job": job.to_record()}

    def _op_get_batch(self, params: dict) -> dict:
        batch = self.store.get_batch(_require_str(params, "batch_id"))
        if batch is None:
            raise RequestError("unknown-batch", f"unknown batch {params['batch_id']!r}")
        jobs = [self.store.get(job_id).to_record() for job_id in batch.job_ids]
        return {"batch": batch.to_record(), "jobs": jobs}

    def _op_list_jobs(self, params: dict) -> dict:
        client_id = params.get("client_id")
        state = params.get("state")
        if state is not None and state not in models.JOB_STATES:
            raise RequestError(
                "invalid-request", f"unknown state {state!r}; known: {list(models.JOB_STATES)}"
            )
        records = [
            job.to_record()
            for job in self.store.jobs()
            if (client_id is None or job.client_id == client_id)
            and (state is None or job.state == state)
        ]
        return {"jobs": records}

    def _op_cancel(self, params: dict) -> dict:
        job_id = _require_str(params, "job_id")
        with self._state_cond:
            job = self.store.get(job_id)
            if job is None:
                raise RequestError("unknown-job", f"unknown job {job_id!r}")
            if job.state not in (models.PENDING, models.RETRYING):
                raise RequestError(
                    "not-cancellable",
                    f"job {job_id} is {job.state}; only pending/retrying jobs can be cancelled",
                )
            updated = self._transition_locked(
                job, models.CANCELLED, error="cancelled by client"
            )
            self.quota.release(job.client_id)
            self._set_inflight_gauge(job.client_id)
        return {"job": updated.to_record()}

    def _op_stats(self, params: dict) -> dict:
        with self._state_cond:
            counts = dict(self._state_counts)
        inflight = self.quota.snapshot()
        return {
            "protocol": PROTOCOL_VERSION,
            "states": counts,
            "queue_depth": counts[models.PENDING] + counts[models.RETRYING],
            "inflight": {client: inflight[client] for client in sorted(inflight)},
            "max_inflight_per_client": self.quota.max_inflight,
            "dispatcher_queued": self.dispatcher.queued_batches,
        }

    # ------------------------------------------------------------------ #
    # connections
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue  # periodic re-poll; see start()
            except OSError:  # listener closed by stop()
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._state_cond:
                self._conn_threads.append(thread)
                self._connections.append(conn)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("r", encoding="utf-8")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    self._send(conn, _error_response("invalid-request", f"bad JSON: {exc}"))
                    continue
                op = request.get("op") if isinstance(request, dict) else None
                params = request.get("params") if isinstance(request, dict) else None
                if params is None:
                    params = {}
                if op == "stream_progress":
                    self._stream_progress(conn, params)
                    continue
                if op == "shutdown":
                    # Acknowledge *before* requesting the stop: stop() severs
                    # open connections, which would race the response out.
                    self._send(conn, {"ok": True, "result": {"stopping": True}})
                    self.request_stop()
                    continue
                handler = self._handlers.get(op)
                try:
                    if handler is None:
                        raise RequestError("unknown-op", f"unknown op {op!r}")
                    result = handler(params)
                except RequestError as exc:
                    self._send(conn, _error_response(exc.error_type, str(exc)))
                else:
                    self._send(conn, {"ok": True, "result": result})
        except OSError:
            # The client went away mid-request (or stop() shut the socket
            # down under us); nothing to answer to.
            return
        finally:
            conn.close()

    def _stream_progress(self, conn: socket.socket, params: dict) -> None:
        """Push every state change of the watched jobs until all are terminal."""
        try:
            job_ids = self._watched_job_ids(params)
        except RequestError as exc:
            self._send(conn, _error_response(exc.error_type, str(exc)))
            return
        watched = set(job_ids)
        with self._state_cond:
            cursor = len(self._events)
            snapshot = [self.store.get(job_id) for job_id in job_ids]
        last_state = {}
        for job in snapshot:
            self._send(conn, {"ok": True, "event": {"type": "job", "job": job.to_record()}})
            last_state[job.job_id] = job.state
        while True:
            if all(state in models.TERMINAL_STATES for state in last_state.values()):
                self._send(conn, {"ok": True, "event": {"type": "end", "reason": "done"}})
                return
            with self._state_cond:
                while len(self._events) <= cursor and not self._stopping:
                    self._state_cond.wait(timeout=0.5)
                if self._stopping and len(self._events) <= cursor:
                    stopping = True
                    fresh = []
                else:
                    stopping = False
                    fresh = self._events[cursor:]
                    cursor = len(self._events)
            if stopping:
                self._send(
                    conn, {"ok": True, "event": {"type": "end", "reason": "shutting-down"}}
                )
                return
            for event in fresh:
                record = event.get("job")
                if record is None or record["job_id"] not in watched:
                    continue
                self._send(conn, {"ok": True, "event": event})
                last_state[record["job_id"]] = record["state"]

    def _watched_job_ids(self, params: dict) -> list:
        job_ids = params.get("job_ids")
        batch_id = params.get("batch_id")
        if batch_id is not None:
            batch = self.store.get_batch(batch_id)
            if batch is None:
                raise RequestError("unknown-batch", f"unknown batch {batch_id!r}")
            return list(batch.job_ids)
        if not isinstance(job_ids, list) or not job_ids:
            raise RequestError(
                "invalid-request", "stream_progress needs 'job_ids' or 'batch_id'"
            )
        for job_id in job_ids:
            if self.store.get(job_id) is None:
                raise RequestError("unknown-job", f"unknown job {job_id!r}")
        return list(job_ids)

    @staticmethod
    def _send(conn: socket.socket, payload: dict) -> None:
        try:
            conn.sendall((json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))
        except (BrokenPipeError, ConnectionResetError):
            # A watcher that hung up mid-stream is not a daemon error.
            return


def _id_sequence(identifier: str, prefix: str) -> int:
    """The numeric suffix of ``<prefix>-NNNNNN`` ids (0 for foreign ids)."""
    head, _sep, tail = identifier.partition("-")
    if head == prefix and tail.isdigit():
        return int(tail)
    return 0


def _require_str(params: dict, field: str) -> str:
    value = params.get(field)
    if not isinstance(value, str) or not value:
        raise RequestError("invalid-request", f"{field!r} must be a non-empty string")
    return value


def _error_response(error_type: str, message: str) -> dict:
    return {"ok": False, "error": {"type": error_type, "message": message}}
