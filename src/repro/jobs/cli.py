"""``repro-serve daemon|submit|status|watch`` — the jobs-daemon subcommands.

These share one argument/config layer with the one-shot ``repro-serve`` path
(:func:`repro.serving.cli.add_service_arguments` /
:func:`~repro.serving.cli.serving_config_from_args` /
:func:`~repro.serving.cli.load_jobs`), so a daemon is configured with exactly
the flags — and exactly the input validation — a one-shot run uses, and its
scores are bitwise-identical to scoring the same file one-shot.

* ``daemon``  — run a :class:`~repro.jobs.server.JobsDaemon`: journal-backed
  store, Unix socket, SIGTERM/SIGINT-clean shutdown (open jobs stay durable).
* ``submit``  — send a JSONL input file as one batch; with ``--wait`` block
  for the scores and write the same scored-records output as the one-shot
  path.
* ``status``  — print job records, a batch, or daemon-wide stats as JSON.
* ``watch``   — stream progress events for jobs or a batch as JSONL.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro.jobs.client import JobsClient, JobsError


def build_daemon_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-serve daemon`` (service flags shared with one-shot)."""
    from repro.serving.cli import add_service_arguments

    parser = argparse.ArgumentParser(
        prog="repro-serve daemon",
        description="Run the durable feedback-jobs daemon on a Unix socket.",
    )
    parser.add_argument("--socket", type=Path, required=True, help="Unix socket path to listen on (keep it short)")
    parser.add_argument("--store", type=Path, required=True, help="job-store directory (journal + snapshot); reopening resumes open jobs")
    add_service_arguments(parser)
    parser.add_argument(
        "--max-inflight-per-client", type=int, default=None,
        help="per-client cap on non-terminal jobs (default: unbounded)",
    )
    parser.add_argument(
        "--job-retries", type=int, default=2,
        help="scoring retries per job after the first failed attempt (default: 2)",
    )
    parser.add_argument(
        "--throttle-seconds", type=float, default=0.0,
        help="artificial pause before each scoring attempt (test/demo knob)",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=64,
        help="journal appends between store snapshots (default: 64)",
    )
    return parser


def build_submit_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-serve submit`` (same input format as one-shot)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve submit",
        description="Submit a JSONL file of {task, response} records as one batch.",
    )
    parser.add_argument("jsonl", type=Path, help="input JSONL file of {task, response} objects")
    parser.add_argument("--socket", type=Path, required=True, help="the daemon's Unix socket")
    parser.add_argument("--client", default="cli", help="client id for quota and fairness (default: cli)")
    parser.add_argument("--wait", action="store_true", help="block until scored and write the records")
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="with --wait: scored-records JSONL path (default: stdout)",
    )
    parser.add_argument("--timeout", type=float, default=600.0, help="socket timeout in seconds")
    return parser


def build_status_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-serve status``."""
    parser = argparse.ArgumentParser(
        prog="repro-serve status",
        description="Print job records, a batch, or daemon stats as JSON.",
    )
    parser.add_argument("job_ids", nargs="*", help="job ids to look up (none: daemon stats)")
    parser.add_argument("--socket", type=Path, required=True, help="the daemon's Unix socket")
    parser.add_argument("--batch", default=None, help="print this batch and its jobs instead")
    parser.add_argument("--timeout", type=float, default=60.0, help="socket timeout in seconds")
    return parser


def build_watch_parser() -> argparse.ArgumentParser:
    """Parser for ``repro-serve watch``."""
    parser = argparse.ArgumentParser(
        prog="repro-serve watch",
        description="Stream job progress events as JSONL until all watched jobs finish.",
    )
    parser.add_argument("job_ids", nargs="*", help="job ids to watch")
    parser.add_argument("--socket", type=Path, required=True, help="the daemon's Unix socket")
    parser.add_argument("--batch", default=None, help="watch every job of this batch instead")
    parser.add_argument("--timeout", type=float, default=600.0, help="per-event socket timeout in seconds")
    return parser


def cmd_daemon(args) -> int:
    """Build store + service + daemon and serve until shutdown/SIGTERM."""
    from repro.jobs.server import JobsDaemon
    from repro.jobs.store import JobStore
    from repro.serving import Dispatcher, FeedbackService
    from repro.serving.cli import build_feedback, build_specifications, serving_config_from_args
    from repro.utils.retry import RetryPolicy

    try:
        config = serving_config_from_args(args)
        if args.job_retries < 0:
            raise ValueError(f"--job-retries must be non-negative, got {args.job_retries}")
        retry = RetryPolicy(max_attempts=args.job_retries + 1)
        store = JobStore(args.store, snapshot_every=args.snapshot_every)
    except ValueError as exc:
        print(f"repro-serve daemon: {exc}", file=sys.stderr)
        return 2
    with store:
        with Dispatcher(name="repro-jobs") as dispatcher:
            with FeedbackService(
                build_specifications(args),
                feedback=build_feedback(args),
                config=config,
                seed=args.seed,
                dispatcher=dispatcher,
            ) as service:
                daemon = JobsDaemon(
                    args.socket,
                    store,
                    service,
                    dispatcher=dispatcher,
                    max_inflight_per_client=args.max_inflight_per_client,
                    retry=retry,
                    throttle_seconds=args.throttle_seconds,
                )
                previous = [
                    (signum, signal.signal(signum, lambda _s, _f: daemon.request_stop()))
                    for signum in (signal.SIGINT, signal.SIGTERM)
                ]
                daemon.start()
                print(
                    f"repro-jobs: serving on {args.socket} (store {args.store})",
                    file=sys.stderr,
                    flush=True,
                )
                try:
                    daemon.wait()
                finally:
                    daemon.stop()
                    for signum, handler in previous:
                        signal.signal(signum, handler)
            # Exiting the contexts drains the dispatcher (jobs mid-flight
            # finish or re-queue durably) and flushes the service cache; the
            # store closes last, taking its final snapshot.
    print("repro-jobs: stopped", file=sys.stderr)
    return 0


def cmd_submit(args) -> int:
    """Validate the input like one-shot, submit as one batch, optionally wait."""
    from repro.serving.cli import load_jobs, write_records

    try:
        jobs = load_jobs(args.jsonl)
    except (OSError, ValueError) as exc:
        print(f"repro-serve submit: {exc}", file=sys.stderr)
        return 2
    client = JobsClient(args.socket, client_id=args.client, timeout=args.timeout)
    result = client.create_batch(
        [
            {"task": record["task"], "scenario": scenario, "response": record["response"]}
            for record, scenario in jobs
        ]
    )
    batch = result["batch"]
    print(
        f"repro-serve submit: batch {batch['batch_id']} "
        f"({len(batch['job_ids'])} jobs) accepted",
        file=sys.stderr,
        flush=True,
    )
    if not args.wait:
        print(json.dumps({"batch_id": batch["batch_id"], "job_ids": batch["job_ids"]}))
        return 0
    final = client.wait_batch(batch["batch_id"])
    ordered = [final[job_id] for job_id in batch["job_ids"]]
    unscored = [record for record in ordered if record["state"] != "succeeded"]
    if unscored:
        for record in unscored:
            print(
                f"repro-serve submit: job {record['job_id']} {record['state']}: "
                f"{record['error']}",
                file=sys.stderr,
            )
        return 1
    # Identical construction to the one-shot path's output records, so a
    # submitted-and-awaited file is byte-for-byte the one-shot result.
    write_records(
        (
            {**record, "scenario": scenario, "score": job["score"]}
            for (record, scenario), job in zip(jobs, ordered)
        ),
        args.output,
    )
    return 0


def cmd_status(args) -> int:
    """Print the requested records (or daemon stats) as JSON lines."""
    client = JobsClient(args.socket, timeout=args.timeout)
    if args.batch is not None:
        print(json.dumps(client.get_batch(args.batch), sort_keys=True))
        return 0
    if not args.job_ids:
        print(json.dumps(client.stats(), sort_keys=True))
        return 0
    for job_id in args.job_ids:
        print(json.dumps(client.get_status(job_id), sort_keys=True))
    return 0


def cmd_watch(args) -> int:
    """Stream progress events as JSON lines until the daemon sends ``end``."""
    if not args.job_ids and args.batch is None:
        print("repro-serve watch: pass job ids or --batch", file=sys.stderr)
        return 2
    client = JobsClient(args.socket, timeout=args.timeout)
    reason = "disconnected"
    for event in client.stream_progress(
        job_ids=args.job_ids if args.job_ids else None, batch_id=args.batch
    ):
        print(json.dumps(event, sort_keys=True), flush=True)
        if event.get("type") == "end":
            reason = event.get("reason")
    return 0 if reason == "done" else 1


#: Subcommand names the ``repro-serve`` entry point routes here.
JOBS_COMMANDS = ("daemon", "submit", "status", "watch")

_HANDLERS = {
    "daemon": (build_daemon_parser, cmd_daemon),
    "submit": (build_submit_parser, cmd_submit),
    "status": (build_status_parser, cmd_status),
    "watch": (build_watch_parser, cmd_watch),
}


def main(argv) -> int:
    """Entry point for the jobs subcommands; ``argv[0]`` is the subcommand."""
    command = argv[0]
    build, handler = _HANDLERS[command]
    args = build().parse_args(argv[1:])
    try:
        return handler(args)
    except (ConnectionRefusedError, FileNotFoundError) as exc:
        print(
            f"repro-serve {command}: cannot reach a daemon at {args.socket}: {exc}",
            file=sys.stderr,
        )
        return 1
    except JobsError as exc:
        print(f"repro-serve {command}: [{exc.error_type}] {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
