"""Per-client admission control for the jobs daemon.

:class:`QuotaLedger` bounds how many *non-terminal* jobs each client may have
in the daemon at once.  Admission is all-or-nothing per submission — a batch
either fits entirely under the client's cap or is rejected whole with
:class:`QuotaExceeded` (never silently trimmed), so a client always knows
exactly which of its jobs the daemon owns.  The ledger only handles
*admission*; *fairness between admitted clients* is the round-robin of
:class:`repro.serving.scheduler.Dispatcher`, which the daemon submits each
client's work under its own service token.  Together: a greedy client can
neither flood the queue past its cap nor starve another client's admitted
jobs.
"""

from __future__ import annotations

import threading


class QuotaExceeded(Exception):
    """A submission would push a client past its max-inflight cap.

    Carries the numbers the client needs to react (back off, shrink the
    batch): the cap, current inflight count and requested job count.
    """

    def __init__(self, client_id: str, *, inflight: int, requested: int, limit: int):
        super().__init__(
            f"client {client_id!r} quota exceeded: {inflight} inflight + "
            f"{requested} requested > limit {limit}"
        )
        self.client_id = client_id
        self.inflight = inflight
        self.requested = requested
        self.limit = limit


class QuotaLedger:
    """Thread-safe count of inflight (non-terminal) jobs per client.

    ``max_inflight=None`` disables the cap — :meth:`admit` always succeeds
    but the ledger still counts, so inflight gauges stay meaningful.
    """

    def __init__(self, max_inflight: int | None = None):
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight: dict = {}

    def admit(self, client_id: str, count: int = 1, *, force: bool = False) -> None:
        """Reserve ``count`` inflight slots for ``client_id`` — all or nothing.

        Raises :class:`QuotaExceeded` (reserving nothing) when the client's
        inflight total plus ``count`` would exceed the cap.  ``force=True``
        skips the cap: the restart path re-admits jobs a previous daemon
        already accepted, which must succeed even under a newly lowered cap.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        with self._lock:
            inflight = self._inflight.get(client_id, 0)
            if not force and self.max_inflight is not None and inflight + count > self.max_inflight:
                raise QuotaExceeded(
                    client_id, inflight=inflight, requested=count, limit=self.max_inflight
                )
            self._inflight[client_id] = inflight + count

    def release(self, client_id: str, count: int = 1) -> None:
        """Return ``count`` slots when jobs reach a terminal state."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        with self._lock:
            inflight = self._inflight.get(client_id, 0)
            if count > inflight:
                raise ValueError(
                    f"client {client_id!r}: releasing {count} > {inflight} inflight"
                )
            remaining = inflight - count
            if remaining:
                self._inflight[client_id] = remaining
            else:
                del self._inflight[client_id]

    def inflight(self, client_id: str) -> int:
        """Current inflight count for ``client_id`` (0 if unknown)."""
        with self._lock:
            return self._inflight.get(client_id, 0)

    def snapshot(self) -> dict:
        """``{client_id: inflight}`` for every client with inflight jobs."""
        with self._lock:
            return dict(self._inflight)
