"""Durable job state: append-only JSONL journal + periodic atomic snapshot.

:class:`JobStore` is the daemon's source of truth across restarts.  Every
state change is one JSON line appended (and fsynced) to ``journal.jsonl``;
every ``snapshot_every`` appends the full state is rewritten atomically to
``snapshot.json`` (via :mod:`repro.utils.atomic`) and the journal is reset,
so the journal stays short and replay stays fast.  Opening a store replays
``snapshot.json`` then ``journal.jsonl`` (last record per id wins), which is
how a restarted daemon finds the exact pre-crash state: terminal jobs keep
their scores, non-terminal jobs are handed back to the scheduler.

Durability model
----------------
* The journal is opened in append mode and each record is ``flush`` +
  ``os.fsync``\\ ed before :meth:`JobStore.append` returns — a job the daemon
  acknowledged survives ``SIGKILL``.
* A torn final line (crash mid-append) is tolerated at replay and dropped;
  every *complete* line is honored.
* The snapshot is written with :func:`repro.utils.serialization.dump_json_atomic`
  and the journal is truncated only *after* the snapshot is durably in place,
  so a crash between the two merely replays a journal whose records are
  already in the snapshot — replay is idempotent (last record per id wins).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.jobs.models import Batch, Job
from repro.utils.serialization import dump_json_atomic, load_json

#: Schema tag stamped into snapshots so future readers can migrate old files.
SNAPSHOT_SCHEMA = 1


class JobStore:
    """Crash-safe map of jobs and batches, backed by journal + snapshot.

    Parameters
    ----------
    root:
        Directory holding ``journal.jsonl`` and ``snapshot.json`` (created if
        missing).  Opening replays both, so a store pointed at a previous
        daemon's directory resumes its state.
    snapshot_every:
        Journal appends between snapshots.  Smaller keeps replay shorter at
        the cost of more full-state rewrites.
    fsync:
        When True (default) every append is fsynced before returning — the
        durability the crash-recovery contract relies on.  Tests that hammer
        the store may disable it for speed.
    """

    JOURNAL_NAME = "journal.jsonl"
    SNAPSHOT_NAME = "snapshot.json"

    def __init__(self, root: str | Path, *, snapshot_every: int = 64, fsync: bool = True):
        if snapshot_every <= 0:
            raise ValueError(f"snapshot_every must be positive, got {snapshot_every}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self._lock = threading.Lock()
        self._jobs: dict = {}
        self._batches: dict = {}
        self._appends_since_snapshot = 0
        with self._lock:
            self._replay()
        # Append mode: the journal is the one durable file that *grows* rather
        # than being rewritten, so it does not go through repro.utils.atomic —
        # torn trailing lines are handled at replay instead.
        self._journal = (self.root / self.JOURNAL_NAME).open("a", encoding="utf-8")
        self._closed = False

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def _replay(self) -> None:
        """Load snapshot then journal into memory; tolerate a torn last line."""
        snapshot_path = self.root / self.SNAPSHOT_NAME
        if snapshot_path.exists():
            snapshot = load_json(snapshot_path)
            for record in snapshot.get("jobs", []):
                job = Job.from_record(record)
                self._jobs[job.job_id] = job
            for record in snapshot.get("batches", []):
                batch = Batch.from_record(record)
                self._batches[batch.batch_id] = batch
        journal_path = self.root / self.JOURNAL_NAME
        if not journal_path.exists():
            return
        with journal_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                text = line.strip()
                if not text:
                    continue
                try:
                    record = json.loads(text)
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one torn trailing
                    # line; everything the daemon acknowledged is complete.
                    break
                self._apply_locked(record)
                self._appends_since_snapshot += 1

    def _apply_locked(self, record: dict) -> None:
        """Fold one journal record into the in-memory maps (last wins)."""
        kind = record.get("kind")
        if kind == "job":
            job = Job.from_record(record["job"])
            self._jobs[job.job_id] = job
        elif kind == "batch":
            batch = Batch.from_record(record["batch"])
            self._batches[batch.batch_id] = batch
        else:
            raise ValueError(f"unknown journal record kind {kind!r}")

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def append_job(self, job: Job) -> None:
        """Durably record ``job`` (its current state) and update memory."""
        self._append({"kind": "job", "job": job.to_record()})

    def append_batch(self, batch: Batch) -> None:
        """Durably record ``batch`` and update memory."""
        self._append({"kind": "batch", "batch": batch.to_record()})

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._closed:
                raise ValueError("append on a closed JobStore")
            self._apply_locked(record)
            self._journal.write(line + "\n")
            self._journal.flush()
            if self.fsync:
                os.fsync(self._journal.fileno())
            self._appends_since_snapshot += 1
            if self._appends_since_snapshot >= self.snapshot_every:
                self._snapshot_locked()

    def snapshot(self) -> None:
        """Force a snapshot + journal reset now (normally periodic)."""
        with self._lock:
            if self._closed:
                raise ValueError("snapshot on a closed JobStore")
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        payload = {
            "schema": SNAPSHOT_SCHEMA,
            "jobs": [self._jobs[job_id].to_record() for job_id in sorted(self._jobs)],
            "batches": [self._batches[bid].to_record() for bid in sorted(self._batches)],
        }
        dump_json_atomic(payload, self.root / self.SNAPSHOT_NAME)
        # The snapshot now holds everything the journal did; reset the journal
        # by truncating through the open handle (an os.replace of the path
        # would leave our handle appending to an orphaned inode).
        self._journal.seek(0)
        self._journal.truncate()
        self._journal.flush()
        if self.fsync:
            os.fsync(self._journal.fileno())
        self._appends_since_snapshot = 0

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job | None:
        """The current record for ``job_id``, or None if unknown."""
        with self._lock:
            return self._jobs.get(job_id)

    def get_batch(self, batch_id: str) -> Batch | None:
        """The batch for ``batch_id``, or None if unknown."""
        with self._lock:
            return self._batches.get(batch_id)

    def jobs(self) -> list:
        """Every job, sorted by id (stable across replicas and replays)."""
        with self._lock:
            return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def batches(self) -> list:
        """Every batch, sorted by id."""
        with self._lock:
            return [self._batches[bid] for bid in sorted(self._batches)]

    def pending_jobs(self) -> list:
        """Jobs not yet terminal, sorted by id — what a restart must resume."""
        with self._lock:
            return [
                self._jobs[job_id]
                for job_id in sorted(self._jobs)
                if not self._jobs[job_id].is_terminal
            ]

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Snapshot once more and close the journal handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._snapshot_locked()
            self._closed = True
            self._journal.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False
