"""Autoregressive sampling from the numpy language model.

This module holds the *serial* reference path (one sequence, one full-context
forward per token) plus the draw helpers shared with the batched KV-cached
decoder in :mod:`repro.lm.decode`.  The sharing is the determinism contract:
``sample_from_logits`` is the only place temperature / top-k / the categorical
draw happen, and per-sample RNG streams are spawned per lane (``spawn_lane_rngs``),
so the batched path produces token-identical output however lanes are
interleaved.  See ``docs/lm.md``.
"""

from __future__ import annotations

import numpy as np

from repro.lm.layers import softmax
from repro.lm.tokenizer import Tokenizer
from repro.lm.transformer import TransformerLM
from repro.utils.rng import seeded_rng, spawn_lane_rngs


def top_k_filter(scaled: np.ndarray, top_k: int) -> np.ndarray:
    """Keep exactly the ``top_k`` largest logits; everything else gets ``-1e30``.

    Selection runs through :func:`np.partition` (O(V) instead of a full sort),
    and the kept set is exactly ``top_k`` entries: values strictly above the
    cutoff always survive, and ties *at* the cutoff survive lowest-index first
    until the budget is filled.  (The previous implementation kept every tie,
    so more than ``top_k`` tokens could stay alive.)
    """
    cutoff = np.partition(scaled, -top_k)[-top_k]
    keep = scaled > cutoff
    short = top_k - int(np.count_nonzero(keep))
    if short > 0:
        keep[np.flatnonzero(scaled == cutoff)[:short]] = True
    return np.where(keep, scaled, -1e30)


def sample_from_logits(
    logits: np.ndarray,
    rng: np.random.Generator,
    *,
    temperature: float,
    top_k: int | None,
) -> int:
    """Draw one token id from a 1-D logits row.

    This helper is the single draw path shared by :func:`sample_tokens` and the
    batched decoder: identical logits bits + an identical generator state give
    an identical token on either path.
    """
    if temperature <= 0:
        return int(np.argmax(logits))
    scaled = logits / temperature
    if top_k is not None and 0 < top_k < scaled.shape[0]:
        scaled = top_k_filter(scaled, top_k)
    probabilities = softmax(scaled)
    return int(rng.choice(len(probabilities), p=probabilities))


def sample_tokens(
    model: TransformerLM,
    prompt_ids: list,
    *,
    max_new_tokens: int = 64,
    temperature: float = 1.0,
    top_k: int | None = None,
    stop_ids: tuple = (),
    seed: int | np.random.Generator | None = None,
) -> list:
    """Sample a continuation of ``prompt_ids``; returns only the new token ids.

    This is the serial reference path: every step re-runs the full forward over
    the trailing ``max_seq_len`` window.  ``repro.lm.decode.sample_tokens_cached``
    produces token-identical output in O(T) per step.
    """
    rng = seeded_rng(seed)
    ids = list(prompt_ids)
    generated: list[int] = []
    max_context = model.config.max_seq_len
    for _ in range(max_new_tokens):
        context = ids[-max_context:]
        logits = model.forward(np.asarray([context], dtype=np.int64))[0, -1]
        next_id = sample_from_logits(logits, rng, temperature=temperature, top_k=top_k)
        ids.append(next_id)
        generated.append(next_id)
        if next_id in stop_ids:
            break
    return generated


def sample_response(
    model: TransformerLM,
    tokenizer: Tokenizer,
    prompt: str,
    *,
    max_new_tokens: int = 72,
    temperature: float = 0.9,
    top_k: int | None = 20,
    seed: int | np.random.Generator | None = None,
) -> str:
    """Sample a textual response for a textual prompt (stops at ``<eos>``)."""
    prompt_ids = tokenizer.encode(prompt, add_bos=True)
    generated = sample_tokens(
        model,
        prompt_ids,
        max_new_tokens=max_new_tokens,
        temperature=temperature,
        top_k=top_k,
        stop_ids=(tokenizer.eos_id,),
        seed=seed,
    )
    if generated and generated[-1] == tokenizer.eos_id:
        generated = generated[:-1]
    return tokenizer.decode(generated)


def sample_responses(
    model: TransformerLM,
    tokenizer: Tokenizer,
    prompt: str,
    num_samples: int,
    *,
    temperature: float = 0.9,
    top_k: int | None = 20,
    max_new_tokens: int = 72,
    seed: int | np.random.Generator | None = None,
) -> list:
    """Draw several independent responses for the same prompt.

    Sample ``i`` consumes the ``i``-th child stream of ``seed`` (see
    :func:`repro.utils.rng.spawn_lane_rngs`), never a shared sequential
    stream — which is what lets ``repro.lm.decode`` interleave the same lanes
    in one batched wave and still emit identical text per sample.
    """
    return [
        sample_response(
            model,
            tokenizer,
            prompt,
            max_new_tokens=max_new_tokens,
            temperature=temperature,
            top_k=top_k,
            seed=lane_rng,
        )
        for lane_rng in spawn_lane_rngs(seed, num_samples)
    ]
