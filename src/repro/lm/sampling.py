"""Autoregressive sampling from the numpy language model."""

from __future__ import annotations

import numpy as np

from repro.lm.layers import softmax
from repro.lm.tokenizer import Tokenizer
from repro.lm.transformer import TransformerLM
from repro.utils.rng import seeded_rng


def sample_tokens(
    model: TransformerLM,
    prompt_ids: list,
    *,
    max_new_tokens: int = 64,
    temperature: float = 1.0,
    top_k: int | None = None,
    stop_ids: tuple = (),
    seed: int | np.random.Generator | None = None,
) -> list:
    """Sample a continuation of ``prompt_ids``; returns only the new token ids."""
    rng = seeded_rng(seed)
    ids = list(prompt_ids)
    generated: list[int] = []
    max_context = model.config.max_seq_len
    for _ in range(max_new_tokens):
        context = ids[-max_context:]
        logits = model.forward(np.asarray([context], dtype=np.int64))[0, -1]
        if temperature <= 0:
            next_id = int(np.argmax(logits))
        else:
            scaled = logits / temperature
            if top_k is not None and 0 < top_k < scaled.shape[0]:
                cutoff = np.sort(scaled)[-top_k]
                scaled = np.where(scaled < cutoff, -1e30, scaled)
            probabilities = softmax(scaled)
            next_id = int(rng.choice(len(probabilities), p=probabilities))
        ids.append(next_id)
        generated.append(next_id)
        if next_id in stop_ids:
            break
    return generated


def sample_response(
    model: TransformerLM,
    tokenizer: Tokenizer,
    prompt: str,
    *,
    max_new_tokens: int = 72,
    temperature: float = 0.9,
    top_k: int | None = 20,
    seed: int | np.random.Generator | None = None,
) -> str:
    """Sample a textual response for a textual prompt (stops at ``<eos>``)."""
    prompt_ids = tokenizer.encode(prompt, add_bos=True)
    generated = sample_tokens(
        model,
        prompt_ids,
        max_new_tokens=max_new_tokens,
        temperature=temperature,
        top_k=top_k,
        stop_ids=(tokenizer.eos_id,),
        seed=seed,
    )
    if generated and generated[-1] == tokenizer.eos_id:
        generated = generated[:-1]
    return tokenizer.decode(generated)


def sample_responses(
    model: TransformerLM,
    tokenizer: Tokenizer,
    prompt: str,
    num_samples: int,
    *,
    temperature: float = 0.9,
    top_k: int | None = 20,
    max_new_tokens: int = 72,
    seed: int | None = None,
) -> list:
    """Draw several independent responses for the same prompt."""
    rng = seeded_rng(seed)
    return [
        sample_response(
            model,
            tokenizer,
            prompt,
            max_new_tokens=max_new_tokens,
            temperature=temperature,
            top_k=top_k,
            seed=rng,
        )
        for _ in range(num_samples)
    ]
