"""Synthetic pre-training corpus of driving instructions.

The paper starts from Llama2-7B, which already produces numbered driving
instructions of *mixed* quality (roughly 60% specification satisfaction before
fine-tuning).  Our numpy model acquires the same prior by being pre-trained on
a corpus sampled from the response template library with the
``PRETRAINED_MIXTURE`` category weights — so before DPO it emits compliant,
flawed and vague responses in about the same proportion the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.driving.responses import PRETRAINED_MIXTURE, sample_mixture_response
from repro.driving.tasks import DrivingTask, task_prompt, training_tasks
from repro.lm.tokenizer import Tokenizer
from repro.utils.rng import seeded_rng


def format_prompt(task: DrivingTask | str) -> str:
    """The textual prompt the language model is conditioned on.

    Mirrors the paper's prompt format (Section 4.1): ``Steps for "<task>"``
    followed by a colon; the response continues on the next lines.
    """
    prompt = task_prompt(task) if isinstance(task, DrivingTask) else f'Steps for "{task}"'
    return f"{prompt} :"


def format_document(prompt: str, response: str) -> str:
    """One training document: prompt, newline, response."""
    return f"{prompt}\n{response}"


@dataclass
class CorpusExample:
    """A single (task, category, prompt, response) corpus record."""

    task: str
    category: str
    prompt: str
    response: str

    @property
    def document(self) -> str:
        return format_document(self.prompt, self.response)


@dataclass
class Corpus:
    """A pre-training corpus plus the tokenizer fitted on it."""

    examples: list = field(default_factory=list)
    tokenizer: Tokenizer = None

    @property
    def documents(self) -> list:
        return [example.document for example in self.examples]

    def category_counts(self) -> dict:
        counts: dict = {}
        for example in self.examples:
            counts[example.category] = counts.get(example.category, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.examples)


def build_corpus(
    *,
    tasks=None,
    samples_per_task: int = 40,
    mixture: dict | None = None,
    seed: int = 0,
    extra_texts: tuple = (),
) -> Corpus:
    """Sample a pre-training corpus and fit a tokenizer over it.

    Parameters
    ----------
    tasks:
        Tasks to draw prompts from; defaults to the training split.
    samples_per_task:
        Number of (prompt, response) documents per task.
    mixture:
        Category mixture; defaults to :data:`PRETRAINED_MIXTURE`.
    extra_texts:
        Additional texts folded into the tokenizer vocabulary (e.g. validation
        task prompts, so sampling on held-out prompts never hits ``<unk>``).
    """
    rng = seeded_rng(seed)
    tasks = list(tasks) if tasks is not None else list(training_tasks())
    mixture = dict(mixture) if mixture is not None else dict(PRETRAINED_MIXTURE)

    examples: list[CorpusExample] = []
    for task in tasks:
        prompt = format_prompt(task)
        for _ in range(samples_per_task):
            category, response = sample_mixture_response(task.name, mixture, seed=rng)
            examples.append(CorpusExample(task=task.name, category=category, prompt=prompt, response=response))

    # The tokenizer must also cover every template and every prompt (including
    # validation prompts) so that later sampling and scoring never degenerate
    # to <unk> purely because of vocabulary gaps.
    from repro.driving.responses import RESPONSE_LIBRARY, VAGUE_RESPONSES
    from repro.driving.tasks import all_tasks

    vocabulary_texts = [example.document for example in examples]
    vocabulary_texts.extend(format_prompt(t) for t in all_tasks())
    for per_task in RESPONSE_LIBRARY.values():
        for templates in per_task.values():
            vocabulary_texts.extend(templates)
    vocabulary_texts.extend(VAGUE_RESPONSES)
    vocabulary_texts.extend(extra_texts)

    tokenizer = Tokenizer.fit(vocabulary_texts)
    return Corpus(examples=examples, tokenizer=tokenizer)
