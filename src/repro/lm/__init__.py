"""The language-model substrate: tokenizer, numpy transformer, LoRA, sampling."""

from repro.lm.corpus import Corpus, CorpusExample, build_corpus, format_document, format_prompt
from repro.lm.layers import (
    CausalSelfAttention,
    Embedding,
    FeedForward,
    Layer,
    LayerNorm,
    Linear,
    Parameter,
    TransformerBlock,
    gelu,
    softmax,
)
from repro.lm.decode import (
    DecodeState,
    LaneSpec,
    LayerKV,
    sample_response_frontier,
    sample_responses_batched,
    sample_tokens_batched,
    sample_tokens_cached,
)
from repro.lm.lora import LoRAConfig, apply_lora, merge_lora
from repro.lm.optim import SGD, Adam
from repro.lm.pretrain import PretrainConfig, PretrainResult, encode_documents, pretrain
from repro.lm.sampling import (
    sample_from_logits,
    sample_response,
    sample_responses,
    sample_tokens,
    top_k_filter,
)
from repro.lm.tokenizer import SPECIAL_TOKENS, Tokenizer, words_of
from repro.lm.transformer import ModelConfig, TransformerLM

__all__ = [
    "Corpus",
    "CorpusExample",
    "build_corpus",
    "format_document",
    "format_prompt",
    "CausalSelfAttention",
    "Embedding",
    "FeedForward",
    "Layer",
    "LayerNorm",
    "Linear",
    "Parameter",
    "TransformerBlock",
    "gelu",
    "softmax",
    "LoRAConfig",
    "apply_lora",
    "merge_lora",
    "SGD",
    "Adam",
    "PretrainConfig",
    "PretrainResult",
    "encode_documents",
    "pretrain",
    "DecodeState",
    "LaneSpec",
    "LayerKV",
    "sample_response_frontier",
    "sample_responses_batched",
    "sample_tokens_batched",
    "sample_tokens_cached",
    "sample_from_logits",
    "sample_response",
    "sample_responses",
    "sample_tokens",
    "top_k_filter",
    "SPECIAL_TOKENS",
    "Tokenizer",
    "words_of",
    "ModelConfig",
    "TransformerLM",
]
