"""The language-model substrate: tokenizer, numpy transformer, LoRA, sampling."""

from repro.lm.corpus import Corpus, CorpusExample, build_corpus, format_document, format_prompt
from repro.lm.layers import (
    CausalSelfAttention,
    Embedding,
    FeedForward,
    Layer,
    LayerNorm,
    Linear,
    Parameter,
    TransformerBlock,
    gelu,
    softmax,
)
from repro.lm.lora import LoRAConfig, apply_lora, merge_lora
from repro.lm.optim import SGD, Adam
from repro.lm.pretrain import PretrainConfig, PretrainResult, encode_documents, pretrain
from repro.lm.sampling import sample_response, sample_responses, sample_tokens
from repro.lm.tokenizer import SPECIAL_TOKENS, Tokenizer, words_of
from repro.lm.transformer import ModelConfig, TransformerLM

__all__ = [
    "Corpus",
    "CorpusExample",
    "build_corpus",
    "format_document",
    "format_prompt",
    "CausalSelfAttention",
    "Embedding",
    "FeedForward",
    "Layer",
    "LayerNorm",
    "Linear",
    "Parameter",
    "TransformerBlock",
    "gelu",
    "softmax",
    "LoRAConfig",
    "apply_lora",
    "merge_lora",
    "SGD",
    "Adam",
    "PretrainConfig",
    "PretrainResult",
    "encode_documents",
    "pretrain",
    "sample_response",
    "sample_responses",
    "sample_tokens",
    "SPECIAL_TOKENS",
    "Tokenizer",
    "words_of",
    "ModelConfig",
    "TransformerLM",
]
