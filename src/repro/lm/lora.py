"""LoRA (low-rank adaptation) helpers — Appendix E of the paper.

Instead of updating a full weight matrix ``W ∈ R^{d×d}``, fine-tuning updates
two small matrices ``A ∈ R^{d×k}``, ``B ∈ R^{k×d}`` with ``k ≪ d`` and uses
``W + AB``.  :class:`~repro.lm.layers.Linear` implements the adapters; this
module provides the configuration object and model-level convenience wrappers
used by the DPO trainer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lm.transformer import TransformerLM


@dataclass(frozen=True)
class LoRAConfig:
    """LoRA hyper-parameters."""

    rank: int = 4
    alpha: float | None = None  # defaults to rank (scale = 1)
    freeze_base: bool = True
    seed: int = 0


def apply_lora(model: TransformerLM, config: LoRAConfig | None = None) -> dict:
    """Attach adapters to every linear layer of ``model``.

    Returns a summary dictionary with parameter counts (useful for the
    efficiency ablation that mirrors the paper's memory argument).
    """
    config = config or LoRAConfig()
    total_before = model.num_parameters()
    trainable = model.add_lora_adapters(
        config.rank,
        alpha=config.alpha,
        seed=config.seed,
        freeze_base=config.freeze_base,
    )
    return {
        "rank": config.rank,
        "total_parameters": model.num_parameters(),
        "base_parameters": total_before,
        "trainable_parameters": trainable,
        "trainable_fraction": trainable / max(model.num_parameters(), 1),
    }


def merge_lora(model: TransformerLM) -> None:
    """Fold adapters back into the base weights (after fine-tuning)."""
    model.merge_lora()
