"""Optimizers for the numpy language model."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.lm.layers import Parameter


class Adam:
    """Adam optimizer over a fixed set of :class:`Parameter` objects.

    Only parameters with ``trainable=True`` are updated, which is how LoRA
    fine-tuning freezes the base model while adapting the low-rank matrices.
    """

    def __init__(
        self,
        parameters: list,
        *,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = 1.0,
    ):
        if learning_rate <= 0:
            raise TrainingError(f"learning_rate must be positive, got {learning_rate}")
        self.parameters = [p for p in parameters if isinstance(p, Parameter)]
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self.step_count = 0
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]

    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def grad_norm(self) -> float:
        """Global L2 norm of the trainable gradients."""
        total = 0.0
        for param in self.parameters:
            if param.trainable:
                total += float((param.grad ** 2).sum())
        return float(np.sqrt(total))

    def clip_gradients(self) -> float:
        """Clip trainable gradients to ``max_grad_norm``; returns the pre-clip norm."""
        norm = self.grad_norm()
        if self.max_grad_norm is not None and norm > self.max_grad_norm > 0:
            scale = self.max_grad_norm / (norm + 1e-12)
            for param in self.parameters:
                if param.trainable:
                    param.grad *= scale
        return norm

    def step(self) -> float:
        """Apply one Adam update; returns the (pre-clip) gradient norm."""
        norm = self.clip_gradients()
        self.step_count += 1
        bias1 = 1.0 - self.beta1 ** self.step_count
        bias2 = 1.0 - self.beta2 ** self.step_count
        for i, param in enumerate(self.parameters):
            if not param.trainable:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
            param.bump()
        return norm


class SGD:
    """Plain (optionally momentum) SGD — used by gradient-checking tests."""

    def __init__(self, parameters: list, *, learning_rate: float = 1e-2, momentum: float = 0.0):
        self.parameters = [p for p in parameters if isinstance(p, Parameter)]
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if not param.trainable:
                continue
            self._velocity[i] = self.momentum * self._velocity[i] - self.learning_rate * param.grad
            param.value += self._velocity[i]
            param.bump()
