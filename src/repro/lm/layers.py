"""Neural-network layers in pure numpy with explicit backpropagation.

Each layer stores its :class:`Parameter` objects and the forward-pass cache it
needs for the backward pass.  The design follows the guidance of the ml-systems
coding guide: vectorised numpy everywhere, no Python loops over batch or time
dimensions.

The layers implement exactly what the DPO-AF pipeline needs — a small GPT-style
causal transformer with optional LoRA adapters on its linear projections — and
nothing more.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError

#: Floating-point precision of the language model.  float32 halves the memory
#: traffic of every matmul, which is where all the training time goes.
DTYPE = np.float32


@dataclass
class Parameter:
    """A trainable tensor with its accumulated gradient.

    ``version`` is a monotonic counter identifying the current contents of
    ``value``.  Every code path that changes the value — optimizer steps,
    ``load_state_dict``, explicit callers of :meth:`bump` — increments it, and
    derived caches (e.g. the materialised LoRA weight in :class:`Linear`) key
    on it to know when to recompute.  Code that mutates ``param.value`` in
    place outside those paths must call :meth:`bump` itself.
    """

    value: np.ndarray
    name: str = ""
    trainable: bool = True
    grad: np.ndarray = field(default=None, repr=False)
    version: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.value = np.asarray(self.value, dtype=DTYPE)
        self.grad = np.zeros_like(self.value)

    def bump(self) -> None:
        """Record that ``value`` changed, invalidating version-keyed caches."""
        self.version += 1

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> tuple:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)


class Layer:
    """Base class: every layer exposes its parameters for the optimizer."""

    def parameters(self) -> list:
        """All :class:`Parameter` objects owned by this layer (and children)."""
        params: list[Parameter] = []
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                params.append(attr)
            elif isinstance(attr, Layer):
                params.extend(attr.parameters())
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Layer):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()


def _xavier(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, scale, size=(fan_in, fan_out))


@functools.lru_cache(maxsize=None)
def causal_mask(time: int, total: int | None = None) -> np.ndarray:
    """Read-only boolean mask hiding future positions, cached process-wide.

    ``causal_mask(t)`` is the standard ``(t, t)`` strict-upper-triangular mask
    (True = masked).  The two-argument form ``causal_mask(t, total)`` covers
    incremental decoding, where ``t`` new queries at positions
    ``total - t .. total - 1`` attend over ``total`` cached keys: entry
    ``(i, j)`` is masked iff ``j > (total - t) + i``.  The returned array is
    marked non-writeable so the cache can be shared safely across threads.
    """
    total = time if total is None else total
    mask = np.triu(np.ones((time, total), dtype=bool), k=total - time + 1)
    mask.flags.writeable = False
    return mask


#: Column multiple every Linear gemm is padded to.  OpenBLAS edge kernels for
#: trailing output columns (N not a multiple of the register tile) pair their
#: K-loop differently from the main kernel AND differently across row counts,
#: so the same input row can produce different low-order logits bits depending
#: on batch size.  Zero-padding the weight to a multiple-of-16 column count
#: keeps every column on the main kernel, making rows M-stable (probed across
#: K ∈ {16..150}, N multiples of 16, M ∈ {2..512}).
_GEMM_COL_BLOCK = 16


def _pad_columns(weight: np.ndarray, pad: int) -> np.ndarray:
    padded = np.zeros((weight.shape[0], weight.shape[1] + pad), dtype=weight.dtype)
    padded[:, : weight.shape[1]] = weight
    return padded


def _rowsafe_matmul(flat: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``flat @ weight`` with bitwise-stable rows regardless of row count.

    OpenBLAS dispatches single-row matmuls to gemv, whose dot-product
    reduction order differs from the gemm kernels used for two or more rows —
    the same row can come back with different low-order bits depending on how
    many other rows share the call.  Rows of a gemm result are independent of
    each other, so duplicating a lone row and slicing the first row of the
    result pins every call to the gemm kernel.  This is what makes incremental
    decoding (one token per step) bitwise-identical to full-context forwards.
    """
    if flat.shape[0] == 1:
        return (np.concatenate([flat, flat], axis=0) @ weight)[:1]
    return flat @ weight


class Linear(Layer):
    """Affine map ``y = x W + b`` with optional LoRA adapters.

    When LoRA is enabled (``add_lora``), the effective weight is
    ``W + (alpha / r) * A @ B`` with ``A ∈ R^{in×r}``, ``B ∈ R^{r×out}``;
    typically the base ``W``/``b`` are frozen and only ``A``/``B`` receive
    optimizer updates (Appendix E of the paper / Hu et al. 2021).
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, *, bias: bool = True, name: str = "linear"):
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.weight = Parameter(_xavier(rng, in_features, out_features), name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias") if bias else None
        self.lora_a: Parameter | None = None
        self.lora_b: Parameter | None = None
        self.lora_scale: float = 0.0
        self._cache_x: np.ndarray | None = None
        self._effective_cache: np.ndarray | None = None
        self._effective_key: tuple | None = None
        self._padded_cache: np.ndarray | None = None
        self._padded_key: tuple | None = None
        self._column_pad = (-out_features) % _GEMM_COL_BLOCK

    # ------------------------------------------------------------------ #
    def add_lora(self, rank: int, rng: np.random.Generator, *, alpha: float | None = None, freeze_base: bool = True) -> None:
        """Attach a rank-``rank`` LoRA adapter (A is random, B starts at zero)."""
        if rank <= 0:
            raise TrainingError(f"LoRA rank must be positive, got {rank}")
        alpha = float(alpha if alpha is not None else rank)
        self.lora_a = Parameter(rng.normal(0.0, 0.02, size=(self.in_features, rank)), name=f"{self.name}.lora_a")
        self.lora_b = Parameter(np.zeros((rank, self.out_features)), name=f"{self.name}.lora_b")
        self.lora_scale = alpha / rank
        self._effective_cache = None
        self._effective_key = None
        self._padded_cache = None
        self._padded_key = None
        if freeze_base:
            self.weight.trainable = False
            if self.bias is not None:
                self.bias.trainable = False

    def merge_lora(self) -> None:
        """Fold the adapter into the base weight and drop it (inference-time merge)."""
        if self.lora_a is None or self.lora_b is None:
            return
        self.weight.value = self.weight.value + self.lora_scale * (self.lora_a.value @ self.lora_b.value)
        self.weight.bump()
        self.lora_a = None
        self.lora_b = None
        self.lora_scale = 0.0
        self._effective_cache = None
        self._effective_key = None
        self._padded_cache = None
        self._padded_key = None

    @property
    def has_lora(self) -> bool:
        return self.lora_a is not None

    def effective_weight(self) -> np.ndarray:
        """The weight actually applied: ``W`` or ``W + scale * A @ B``.

        With LoRA attached the materialised sum is cached and keyed on the
        three parameters' :attr:`Parameter.version` counters, so repeated
        forwards/backwards between optimizer updates reuse one array instead
        of re-materialising ``W + scale * A @ B`` on every call.  Treat the
        returned array as read-only.
        """
        if not self.has_lora:
            return self.weight.value
        key = (self.weight.version, self.lora_a.version, self.lora_b.version)
        if self._effective_cache is None or self._effective_key != key:
            self._effective_cache = self.weight.value + self.lora_scale * (self.lora_a.value @ self.lora_b.value)
            self._effective_key = key
        return self._effective_cache

    def _gemm_weight(self) -> np.ndarray:
        """The forward-gemm weight: effective weight, columns padded to a
        multiple of :data:`_GEMM_COL_BLOCK` (see its docstring for why).

        The padded copy is cached behind the same version key as the LoRA
        effective weight; without LoRA the pad is rebuilt from the live
        ``weight.value`` each call, preserving in-place-mutation semantics.
        """
        if self._column_pad == 0:
            return self.effective_weight()
        if self.has_lora:
            weight = self.effective_weight()
            if self._padded_cache is None or self._padded_key != self._effective_key:
                self._padded_cache = _pad_columns(weight, self._column_pad)
                self._padded_key = self._effective_key
            return self._padded_cache
        return _pad_columns(self.weight.value, self._column_pad)

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_x = x
        flat = x.reshape(-1, self.in_features)
        # One collapsed gemm over all (batch × time) rows: bitwise-identical to
        # numpy's per-batch matmul loop (gemm rows are independent) and faster,
        # and _rowsafe_matmul keeps single-row calls off the gemv kernel.
        y = _rowsafe_matmul(flat, self._gemm_weight())
        if self._column_pad:
            y = np.ascontiguousarray(y[:, : self.out_features])
        y = y.reshape(x.shape[:-1] + (self.out_features,))
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        x = self._cache_x
        if x is None:
            raise TrainingError(f"backward called before forward on {self.name}")
        flat_x = x.reshape(-1, self.in_features)
        flat_d = dout.reshape(-1, self.out_features)
        self.weight.grad += flat_x.T @ flat_d
        if self.bias is not None:
            self.bias.grad += flat_d.sum(axis=0)
        if self.has_lora:
            # d/dA = x^T dout B^T * scale ; d/dB = (xA)^T dout * scale
            xa = flat_x @ self.lora_a.value
            self.lora_a.grad += self.lora_scale * (flat_x.T @ (flat_d @ self.lora_b.value.T))
            self.lora_b.grad += self.lora_scale * (xa.T @ flat_d)
        dx = dout @ self.effective_weight().T
        return dx


class Embedding(Layer):
    """Token (or positional) embedding lookup."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator, *, name: str = "embedding"):
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)), name=f"{name}.weight")
        self._cache_ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        self._cache_ids = ids
        return self.weight.value[ids]

    def backward(self, dout: np.ndarray) -> None:
        ids = self._cache_ids
        if ids is None:
            raise TrainingError("backward called before forward on embedding")
        np.add.at(self.weight.grad, ids.reshape(-1), dout.reshape(-1, self.dim))
        return None


class LayerNorm(Layer):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, *, eps: float = 1e-5, name: str = "layernorm"):
        self.dim = dim
        self.eps = eps
        self.gain = Parameter(np.ones(dim), name=f"{name}.gain")
        self.shift = Parameter(np.zeros(dim), name=f"{name}.shift")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalised = (x - mean) * inv_std
        self._cache = (normalised, inv_std)
        return normalised * self.gain.value + self.shift.value

    def backward(self, dout: np.ndarray) -> np.ndarray:
        normalised, inv_std = self._cache
        self.gain.grad += (dout * normalised).reshape(-1, self.dim).sum(axis=0)
        self.shift.grad += dout.reshape(-1, self.dim).sum(axis=0)
        dnorm = dout * self.gain.value
        # Standard layer-norm backward over the last axis.
        mean_dnorm = dnorm.mean(axis=-1, keepdims=True)
        mean_dnorm_norm = (dnorm * normalised).mean(axis=-1, keepdims=True)
        return (dnorm - mean_dnorm - normalised * mean_dnorm_norm) * inv_std


_GELU_C = math.sqrt(2.0 / math.pi)


def _gelu_with_cache(x: np.ndarray) -> tuple:
    """GELU (tanh approximation) plus the tanh term needed by its derivative."""
    x3 = x * x * x
    tanh_inner = np.tanh(_GELU_C * (x + 0.044715 * x3))
    return 0.5 * x * (1.0 + tanh_inner), tanh_inner


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation)."""
    return _gelu_with_cache(x)[0]


def gelu_grad(x: np.ndarray, tanh_inner: np.ndarray | None = None) -> np.ndarray:
    """Derivative of the tanh-approximated GELU."""
    if tanh_inner is None:
        tanh_inner = np.tanh(_GELU_C * (x + 0.044715 * x * x * x))
    sech2 = 1.0 - tanh_inner ** 2
    return 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * _GELU_C * (1.0 + 3 * 0.044715 * x * x)


class FeedForward(Layer):
    """Position-wise MLP: Linear → GELU → Linear."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator, *, name: str = "mlp"):
        self.fc_in = Linear(dim, hidden_dim, rng, name=f"{name}.fc_in")
        self.fc_out = Linear(hidden_dim, dim, rng, name=f"{name}.fc_out")
        self._cache_pre: np.ndarray | None = None
        self._cache_tanh: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        pre = self.fc_in.forward(x)
        activated, tanh_inner = _gelu_with_cache(pre)
        self._cache_pre = pre
        self._cache_tanh = tanh_inner
        return self.fc_out.forward(activated)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dhidden = self.fc_out.backward(dout)
        dpre = dhidden * gelu_grad(self._cache_pre, self._cache_tanh)
        return self.fc_in.backward(dpre)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


#: Chunk width of the length-stable row reduction.  Any fixed power of two
#: wide enough to amortise the chunk loop works; 128 covers a whole
#: ``max_seq_len`` row in one chunk for every config this repo ships.
_STABLE_SUM_CHUNK = 128


def _length_stable_row_sum(exp: np.ndarray) -> np.ndarray:
    """Sum over the last axis with bits invariant to trailing zeros.

    numpy's pairwise summation changes its pairing with row length, so a row
    summed at length ``S`` and the same row summed at length ``S + pad`` with
    exact-zero padding can differ in the last ulp.  Incremental decoding needs
    the opposite: an attention row computed against ``S`` cached keys must get
    bit-for-bit the denominator the full-context forward computes over a
    longer masked row.  Rows are therefore zero-padded to a multiple of a
    *fixed* chunk width, pairwise-summed within each chunk (fixed width ⇒
    fixed pairing), and the chunk sums accumulated strictly left-to-right —
    trailing zeros then only ever append exact ``+0.0`` terms.
    """
    length = exp.shape[-1]
    chunks = -(-length // _STABLE_SUM_CHUNK)
    padded = np.zeros(exp.shape[:-1] + (chunks * _STABLE_SUM_CHUNK,), dtype=exp.dtype)
    padded[..., :length] = exp
    if chunks == 1:
        return padded.sum(axis=-1, keepdims=True)
    chunked = padded.reshape(exp.shape[:-1] + (chunks, _STABLE_SUM_CHUNK)).sum(axis=-1)
    return np.cumsum(chunked, axis=-1)[..., -1:]


def attention_softmax(scores: np.ndarray) -> np.ndarray:
    """Softmax over attention score rows, stable under masked-tail length.

    Identical values to :func:`softmax` (within 1 ulp) but with a
    length-stable denominator: masked entries (``-1e30``) exponentiate to
    exactly ``+0.0``, so a row's probabilities carry the same bits whether it
    is computed at its own length (incremental decode), inside a longer
    causally-masked full forward, or in any batch size.  This is what makes
    KV-cached decoding bitwise-identical to full recompute.
    """
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / _length_stable_row_sum(exp)


class CausalSelfAttention(Layer):
    """Multi-head causal self-attention."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator, *, name: str = "attn"):
        if dim % num_heads != 0:
            raise TrainingError(f"model dim {dim} is not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, rng, name=f"{name}.w_q")
        self.w_k = Linear(dim, dim, rng, name=f"{name}.w_k")
        self.w_v = Linear(dim, dim, rng, name=f"{name}.w_v")
        self.w_o = Linear(dim, dim, rng, name=f"{name}.w_o")
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, time, _ = x.shape
        return x.reshape(batch, time, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, heads, time, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, time, heads * head_dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, time, _ = x.shape
        q = self._split_heads(self.w_q.forward(x))
        k = self._split_heads(self.w_k.forward(x))
        v = self._split_heads(self.w_v.forward(x))

        scale = 1.0 / math.sqrt(self.head_dim)
        # A lone query row would hit the gemv kernel; duplicate it so the
        # score/context matmuls stay on the row-stable gemm path, mirroring
        # forward_step (see _rowsafe_matmul).
        duplicated = time == 1
        q_rows = np.concatenate([q, q], axis=2) if duplicated else q
        # (b, h, t, d) @ (b, h, d, s) -> (b, h, t, s); matmul dispatches to BLAS.
        scores = (q_rows @ k.transpose(0, 1, 3, 2)) * scale
        if not duplicated:
            scores = np.where(causal_mask(time), -1e30, scores)
        attention = attention_softmax(scores)
        context = attention @ v
        if duplicated:
            attention = attention[:, :, :1]
            context = context[:, :, :1]

        self._cache = (q, k, v, attention, scale)
        return self.w_o.forward(self._merge_heads(context))

    def forward_step(self, x: np.ndarray, kv, offset: int) -> np.ndarray:
        """Incremental forward: attend ``x``'s tokens against the KV cache.

        ``x`` holds ``t_new`` tokens per lane at absolute positions
        ``offset .. offset + t_new - 1``; their keys/values are appended to
        ``kv`` (a :class:`repro.lm.decode.LayerKV`) in place and attention runs
        over exactly ``offset + t_new`` cached positions — the softmax axis has
        no padding, which keeps its reduction bitwise-identical to the
        full-context forward.  No backward cache is written.
        """
        batch, t_new, _ = x.shape
        q = self._split_heads(self.w_q.forward(x))
        kv.k[:, :, offset:offset + t_new] = self._split_heads(self.w_k.forward(x))
        kv.v[:, :, offset:offset + t_new] = self._split_heads(self.w_v.forward(x))
        total = offset + t_new
        k = kv.k[:, :, :total]
        v = kv.v[:, :, :total]

        scale = 1.0 / math.sqrt(self.head_dim)
        # Duplicate a lone query row so the score/context matmuls stay on the
        # row-stable gemm kernels (see _rowsafe_matmul).
        duplicated = t_new == 1
        if duplicated:
            q = np.concatenate([q, q], axis=2)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        if t_new > 1:
            scores = np.where(causal_mask(t_new, total), -1e30, scores)
        context = attention_softmax(scores) @ v
        if duplicated:
            context = context[:, :, :1]
        return self.w_o.forward(self._merge_heads(context))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        q, k, v, attention, scale = self._cache
        dcontext = self._split_heads(self.w_o.backward(dout))

        dattention = dcontext @ v.transpose(0, 1, 3, 2)
        dv = attention.transpose(0, 1, 3, 2) @ dcontext

        # Softmax backward: dscore = att * (datt - sum(datt * att)).
        dscores = attention * (dattention - (dattention * attention).sum(axis=-1, keepdims=True))
        dscores = dscores * scale

        dq = dscores @ k
        dk = dscores.transpose(0, 1, 3, 2) @ q

        dx = self.w_q.backward(self._merge_heads(dq))
        dx = dx + self.w_k.backward(self._merge_heads(dk))
        dx = dx + self.w_v.backward(self._merge_heads(dv))
        return dx


class TransformerBlock(Layer):
    """Pre-norm transformer block: LN → attention → residual, LN → MLP → residual."""

    def __init__(self, dim: int, num_heads: int, hidden_dim: int, rng: np.random.Generator, *, name: str = "block"):
        self.ln_1 = LayerNorm(dim, name=f"{name}.ln_1")
        self.attention = CausalSelfAttention(dim, num_heads, rng, name=f"{name}.attn")
        self.ln_2 = LayerNorm(dim, name=f"{name}.ln_2")
        self.mlp = FeedForward(dim, hidden_dim, rng, name=f"{name}.mlp")

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = x + self.attention.forward(self.ln_1.forward(x))
        x = x + self.mlp.forward(self.ln_2.forward(x))
        return x

    def forward_step(self, x: np.ndarray, kv, offset: int) -> np.ndarray:
        """Incremental forward against a :class:`repro.lm.decode.LayerKV` cache.

        LayerNorm and the MLP are position-wise, so only attention needs the
        cache; both normalisations see exactly the rows being decoded.
        """
        x = x + self.attention.forward_step(self.ln_1.forward(x), kv, offset)
        x = x + self.mlp.forward(self.ln_2.forward(x))
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dmlp = self.mlp.backward(dout)
        dx = dout + self.ln_2.backward(dmlp)
        dattn = self.attention.backward(dx)
        return dx + self.ln_1.backward(dattn)
