"""Word-level tokenizer for the driving-instruction language.

The paper fine-tunes Llama2-7B, whose tokenizer is subword BPE.  Our numpy
language model works over a closed, word-level vocabulary built from the
synthetic corpus — sufficient because every prompt and response in the domain
is built from the driving lexicon.  Unknown words map to ``<unk>``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import TrainingError

#: Special tokens, in fixed id order.
PAD, BOS, EOS, UNK, NEWLINE = "<pad>", "<bos>", "<eos>", "<unk>", "<nl>"
SPECIAL_TOKENS: tuple = (PAD, BOS, EOS, UNK, NEWLINE)

_TOKEN_RE = re.compile(r"[a-z_']+|\d+|[.,:;!?\"()]")


def words_of(text: str) -> list:
    """Split text into word/punctuation tokens; newlines become ``<nl>``."""
    tokens: list[str] = []
    for line in text.lower().split("\n"):
        tokens.extend(_TOKEN_RE.findall(line))
        tokens.append(NEWLINE)
    if tokens and tokens[-1] == NEWLINE:
        tokens.pop()
    return tokens


@dataclass
class Tokenizer:
    """A fitted word-level tokenizer with a stable id assignment."""

    token_to_id: dict = field(default_factory=dict)
    id_to_token: list = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @classmethod
    def fit(cls, texts) -> "Tokenizer":
        """Build a vocabulary from an iterable of texts."""
        vocabulary = list(SPECIAL_TOKENS)
        seen = set(vocabulary)
        for text in texts:
            for token in words_of(text):
                if token not in seen:
                    seen.add(token)
                    vocabulary.append(token)
        token_to_id = {token: idx for idx, token in enumerate(vocabulary)}
        return cls(token_to_id=token_to_id, id_to_token=vocabulary)

    # ------------------------------------------------------------------ #
    @property
    def vocab_size(self) -> int:
        return len(self.id_to_token)

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD]

    @property
    def bos_id(self) -> int:
        return self.token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self.token_to_id[EOS]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[UNK]

    @property
    def newline_id(self) -> int:
        return self.token_to_id[NEWLINE]

    def encode(self, text: str, *, add_bos: bool = False, add_eos: bool = False) -> list:
        """Encode text to token ids (unknown words become ``<unk>``)."""
        if not self.token_to_id:
            raise TrainingError("tokenizer has not been fitted")
        ids = [self.token_to_id.get(token, self.unk_id) for token in words_of(text)]
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids, *, skip_special: bool = True) -> str:
        """Decode ids back to text (joining words with spaces, ``<nl>`` as newline)."""
        pieces = []
        for idx in ids:
            token = self.id_to_token[int(idx)] if 0 <= int(idx) < self.vocab_size else UNK
            if token == NEWLINE:
                pieces.append("\n")
                continue
            if skip_special and token in SPECIAL_TOKENS:
                continue
            pieces.append(token)
        text = " ".join(pieces).replace(" \n ", "\n").replace(" \n", "\n").replace("\n ", "\n")
        # Re-attach punctuation for readability.
        text = re.sub(r"\s+([.,:;!?])", r"\1", text)
        return text

    def to_dict(self) -> dict:
        return {"vocabulary": list(self.id_to_token)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Tokenizer":
        vocabulary = list(payload["vocabulary"])
        return cls(token_to_id={t: i for i, t in enumerate(vocabulary)}, id_to_token=vocabulary)
