"""A small GPT-style causal language model in pure numpy.

This is the "pre-trained language model" substrate of the reproduction: it
supplies everything DPO-AF needs from Llama2-7B — conditional sampling of
step-by-step responses, per-token log-probabilities, and parameter-efficient
(LoRA) fine-tuning — at a scale a CPU can train in seconds.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.lm.layers import DTYPE, Embedding, Layer, LayerNorm, Linear, TransformerBlock, softmax
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of the numpy language model."""

    vocab_size: int
    max_seq_len: int = 96
    dim: int = 64
    num_heads: int = 4
    num_layers: int = 2
    hidden_dim: int = 128

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise TrainingError(f"vocab_size must be positive, got {self.vocab_size}")
        if self.dim % self.num_heads != 0:
            raise TrainingError(f"dim {self.dim} not divisible by num_heads {self.num_heads}")


class TransformerLM(Layer):
    """Decoder-only transformer language model with explicit backprop."""

    def __init__(self, config: ModelConfig, seed: int | np.random.Generator | None = 0):
        rng = seeded_rng(seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim, rng, name="tok_emb")
        self.position_embedding = Embedding(config.max_seq_len, config.dim, rng, name="pos_emb")
        self.blocks = [
            TransformerBlock(config.dim, config.num_heads, config.hidden_dim, rng, name=f"block_{i}")
            for i in range(config.num_layers)
        ]
        self.ln_final = LayerNorm(config.dim, name="ln_final")
        self.head = Linear(config.dim, config.vocab_size, rng, bias=False, name="head")
        self._cache_tokens: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Logits of shape ``(batch, time, vocab)`` for input ids ``(batch, time)``."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        batch, time = tokens.shape
        if time > self.config.max_seq_len:
            raise TrainingError(f"sequence length {time} exceeds max_seq_len {self.config.max_seq_len}")
        self._cache_tokens = tokens
        positions = np.broadcast_to(np.arange(time), (batch, time))
        x = self.token_embedding.forward(tokens) + self.position_embedding.forward(positions)
        for block in self.blocks:
            x = block.forward(x)
        x = self.ln_final.forward(x)
        return self.head.forward(x)

    def forward_step(self, tokens: np.ndarray, state) -> np.ndarray:
        """Incremental forward for decoding: extend ``state`` and return logits.

        ``tokens`` is ``(batch, t_new)`` (or 1-D for a single lane) holding the
        *new* tokens only; ``state`` is a :class:`repro.lm.decode.DecodeState`
        whose per-layer K/V caches already cover positions
        ``0 .. state.length - 1``.  The new tokens are embedded at absolute
        positions ``state.length ..``, attended against the cache, and the
        caches and ``state.length`` are advanced in place.  Returns logits of
        shape ``(batch, vocab)`` for the **last** new position of each lane —
        the final LayerNorm and head are position-wise, so they are applied to
        that row only, skipping the vocab-sized matmul over the prefix.

        Because absolute position embeddings cap the context, the extended
        length must stay within ``max_seq_len``; callers fall back to
        full-window forwards past that point (see ``repro.lm.decode``).
        No backward caches survive; never interleave with training passes.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        batch, t_new = tokens.shape
        if t_new == 0:
            raise TrainingError("forward_step needs at least one new token")
        if state.batch != batch:
            raise TrainingError(f"decode state holds {state.batch} lanes, got a batch of {batch}")
        offset = state.length
        if offset + t_new > self.config.max_seq_len:
            raise TrainingError(
                f"decode length {offset + t_new} exceeds max_seq_len {self.config.max_seq_len}"
            )
        positions = np.broadcast_to(np.arange(offset, offset + t_new), (batch, t_new))
        x = self.token_embedding.forward(tokens) + self.position_embedding.forward(positions)
        for block, kv in zip(self.blocks, state.layers):
            x = block.forward_step(x, kv, offset)
        state.length = offset + t_new
        x = self.ln_final.forward(x[:, -1:, :])
        return self.head.forward(x)[:, 0, :]

    def backward(self, dlogits: np.ndarray) -> None:
        """Backpropagate a gradient w.r.t. the logits through the whole model."""
        dx = self.head.backward(dlogits)
        dx = self.ln_final.backward(dx)
        for block in reversed(self.blocks):
            dx = block.backward(dx)
        self.token_embedding.backward(dx)
        self.position_embedding.backward(dx)

    # ------------------------------------------------------------------ #
    # Losses and scoring
    # ------------------------------------------------------------------ #
    def cross_entropy(self, tokens: np.ndarray, *, pad_id: int, backward: bool = True) -> float:
        """Next-token cross-entropy over a batch (positions with pad targets masked).

        Returns the mean loss; when ``backward`` is True the corresponding
        gradients are accumulated into the parameters.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        logits = self.forward(tokens[:, :-1])
        targets = tokens[:, 1:]
        mask = (targets != pad_id).astype(DTYPE)
        probs = softmax(logits, axis=-1)
        batch, time = targets.shape
        target_probs = probs[np.arange(batch)[:, None], np.arange(time)[None, :], targets]
        losses = -np.log(np.clip(target_probs, 1e-12, None)) * mask
        denom = max(mask.sum(), 1.0)
        loss = float(losses.sum() / denom)

        if backward:
            dlogits = probs.copy()
            dlogits[np.arange(batch)[:, None], np.arange(time)[None, :], targets] -= 1.0
            dlogits *= (mask / DTYPE(denom))[..., None]
            self.backward(dlogits)
        return loss

    def sequence_log_probs(self, tokens: np.ndarray, response_mask: np.ndarray) -> np.ndarray:
        """``log π(y|x)`` per sequence: sum of target log-probs where the mask is 1.

        ``tokens`` has shape ``(batch, time)``; ``response_mask`` flags the
        *target* positions belonging to the response ``y`` (same shape as the
        targets, i.e. ``time - 1`` columns).  No gradients are accumulated.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        logits = self.forward(tokens[:, :-1])
        targets = tokens[:, 1:]
        log_probs = np.log(np.clip(softmax(logits, axis=-1), 1e-12, None))
        batch, time = targets.shape
        per_token = log_probs[np.arange(batch)[:, None], np.arange(time)[None, :], targets]
        return (per_token * response_mask).sum(axis=1)

    def sequence_log_probs_with_grad(self, tokens: np.ndarray, response_mask: np.ndarray) -> tuple:
        """Like :meth:`sequence_log_probs` but also returns a backward closure.

        The closure takes per-sequence coefficients ``c`` (shape ``(batch,)``)
        and backpropagates ``sum_i c_i * log π(y_i|x_i)`` through the model.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        logits = self.forward(tokens[:, :-1])
        targets = tokens[:, 1:]
        probs = softmax(logits, axis=-1)
        batch, time = targets.shape
        per_token = np.log(np.clip(probs[np.arange(batch)[:, None], np.arange(time)[None, :], targets], 1e-12, None))
        log_probs = (per_token * response_mask).sum(axis=1)

        def backward_fn(coefficients: np.ndarray) -> None:
            coefficients = np.asarray(coefficients, dtype=DTYPE).reshape(batch, 1, 1)
            # d log p(target) / d logits = onehot(target) - softmax(logits)
            dlogits = -probs.copy()
            dlogits[np.arange(batch)[:, None], np.arange(time)[None, :], targets] += 1.0
            dlogits *= np.asarray(response_mask, dtype=DTYPE)[..., None]
            dlogits *= coefficients
            self.backward(dlogits)

        return log_probs, backward_fn

    # ------------------------------------------------------------------ #
    # LoRA management and cloning
    # ------------------------------------------------------------------ #
    def linear_layers(self) -> list:
        """Every :class:`Linear` in the model (attention projections, MLP, head)."""
        layers: list[Linear] = []
        for block in self.blocks:
            layers.extend([block.attention.w_q, block.attention.w_k, block.attention.w_v, block.attention.w_o])
            layers.extend([block.mlp.fc_in, block.mlp.fc_out])
        layers.append(self.head)
        return layers

    def add_lora_adapters(self, rank: int, *, alpha: float | None = None, seed: int = 0, freeze_base: bool = True) -> int:
        """Attach LoRA adapters to every linear layer; returns trainable-parameter count."""
        rng = seeded_rng(seed)
        for layer in self.linear_layers():
            layer.add_lora(rank, rng, alpha=alpha, freeze_base=freeze_base)
        if freeze_base:
            self.token_embedding.weight.trainable = False
            self.position_embedding.weight.trainable = False
            for block in self.blocks:
                block.ln_1.gain.trainable = False
                block.ln_1.shift.trainable = False
                block.ln_2.gain.trainable = False
                block.ln_2.shift.trainable = False
            self.ln_final.gain.trainable = False
            self.ln_final.shift.trainable = False
        return self.num_trainable_parameters()

    def merge_lora(self) -> None:
        """Fold every adapter into its base weight (for cheap inference)."""
        for layer in self.linear_layers():
            layer.merge_lora()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def num_trainable_parameters(self) -> int:
        return sum(p.size for p in self.parameters() if p.trainable)

    def clone(self) -> "TransformerLM":
        """Deep copy (used to snapshot the frozen reference model for DPO)."""
        return copy.deepcopy(self)

    # ------------------------------------------------------------------ #
    # (De)serialisation of weights
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {p.name: p.value.copy() for p in self.parameters()}

    def load_state_dict(self, state: dict) -> None:
        own = {p.name: p for p in self.parameters()}
        missing = set(own) - set(state)
        if missing:
            raise TrainingError(f"state dict is missing parameters: {sorted(missing)[:5]} ...")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=DTYPE)
            if value.shape != param.value.shape:
                raise TrainingError(f"shape mismatch for {name}: {value.shape} vs {param.value.shape}")
            param.value = value.copy()
            param.bump()
