"""Causal-language-model pre-training on the synthetic corpus."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.lm.corpus import Corpus
from repro.lm.optim import Adam
from repro.lm.tokenizer import Tokenizer
from repro.lm.transformer import ModelConfig, TransformerLM
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class PretrainConfig:
    """Hyper-parameters for the pre-training loop."""

    num_steps: int = 400
    batch_size: int = 16
    learning_rate: float = 3e-3
    max_seq_len: int = 96
    dim: int = 64
    num_heads: int = 4
    num_layers: int = 2
    hidden_dim: int = 128
    seed: int = 0


@dataclass
class PretrainResult:
    """Artifacts of pre-training: the model, tokenizer and loss curve."""

    model: TransformerLM
    tokenizer: Tokenizer
    losses: list = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def encode_documents(corpus: Corpus, max_seq_len: int) -> np.ndarray:
    """Encode every document to a fixed-length id matrix (padded / truncated)."""
    tokenizer = corpus.tokenizer
    rows = []
    for document in corpus.documents:
        ids = tokenizer.encode(document, add_bos=True, add_eos=True)[:max_seq_len]
        ids = ids + [tokenizer.pad_id] * (max_seq_len - len(ids))
        rows.append(ids)
    if not rows:
        raise TrainingError("corpus is empty; nothing to pre-train on")
    return np.asarray(rows, dtype=np.int64)


def pretrain(corpus: Corpus, config: PretrainConfig | None = None, *, progress_every: int = 0) -> PretrainResult:
    """Train a fresh :class:`TransformerLM` on the corpus with Adam.

    Returns the trained model, its tokenizer and the per-step loss curve.
    """
    config = config or PretrainConfig()
    rng = seeded_rng(config.seed)
    data = encode_documents(corpus, config.max_seq_len)

    model = TransformerLM(
        ModelConfig(
            vocab_size=corpus.tokenizer.vocab_size,
            max_seq_len=config.max_seq_len,
            dim=config.dim,
            num_heads=config.num_heads,
            num_layers=config.num_layers,
            hidden_dim=config.hidden_dim,
        ),
        seed=config.seed,
    )
    optimizer = Adam(model.parameters(), learning_rate=config.learning_rate)

    losses: list[float] = []
    num_documents = data.shape[0]
    for step in range(config.num_steps):
        batch_idx = rng.integers(0, num_documents, size=min(config.batch_size, num_documents))
        batch = data[batch_idx]
        optimizer.zero_grad()
        loss = model.cross_entropy(batch, pad_id=corpus.tokenizer.pad_id, backward=True)
        optimizer.step()
        losses.append(loss)
        if progress_every and (step + 1) % progress_every == 0:  # pragma: no cover - console feedback only
            print(f"[pretrain] step {step + 1}/{config.num_steps} loss={loss:.3f}")

    return PretrainResult(model=model, tokenizer=corpus.tokenizer, losses=losses)
