"""Batched autoregressive decoding with a per-layer KV cache.

The serial reference path (:func:`repro.lm.sampling.sample_tokens`) re-runs
the full transformer over the whole context for every decoded token of every
sequence — O(T²) work per sequence, one sequence at a time.  This module
decodes the entire sampling frontier at once:

* :class:`DecodeState` holds each block's cached key/value tensors plus the
  shared position offset, so a decode step runs the model over exactly one new
  token per lane (O(T) per step) — the cached-activation idiom the training
  layers already use for ``backward``, applied to generation.
* :func:`sample_tokens_batched` drives many (prompt, sample) lanes through one
  ``forward_step`` per decode step, retiring lanes as they emit a stop token
  without stalling the rest of the batch.

Determinism contract (property-tested; see ``docs/lm.md``): batched output is
**token-identical** to the serial path.  Three design rules make that true on
top of a BLAS that is only reproducible per-kernel:

1. Every lane draws from its own RNG stream, spawned per lane index
   (:func:`repro.utils.rng.spawn_lane_rngs`), so interleaving lanes cannot
   perturb any lane's randomness.
2. Lanes are grouped by prompt length and every lane in a group always has the
   same current length, so attention softmax rows are exact-length — row
   reductions over trailing padding are *not* bitwise-stable, so there is none.
3. All matmuls stay on gemm kernels whose rows are independent of batch size
   (``_rowsafe_matmul`` duplicates lone rows to keep them off the gemv path).

Once a lane's context reaches ``max_seq_len`` the absolute-position KV cache
can no longer represent it (the serial path re-encodes the trailing window at
positions ``0..max-1``), so the group falls back to batched full-window
forwards — still one model call for all surviving lanes per step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lm.layers import DTYPE
from repro.lm.sampling import sample_from_logits
from repro.lm.tokenizer import Tokenizer
from repro.lm.transformer import ModelConfig, TransformerLM
from repro.obs import tracer as obs
from repro.utils.rng import seeded_rng, spawn_lane_rngs


@dataclass
class LayerKV:
    """One transformer block's cached keys and values.

    Both arrays are ``(lanes, heads, capacity, head_dim)``; positions
    ``0 .. DecodeState.length - 1`` are valid, the rest is scratch.  The
    trailing scratch never feeds a reduction: attention slices the cache to
    the exact current length before computing scores.
    """

    k: np.ndarray
    v: np.ndarray


class DecodeState:
    """Per-layer KV caches plus the shared position offset for a lane group.

    Invalidation rules:

    * The state is bound to one model's current weights — any parameter update
      (optimizer step, ``load_state_dict``, ``merge_lora``) invalidates it;
      callers allocate a fresh state per sampling wave, never across training.
    * All lanes share one ``length``; uniform-length groups are what keep the
      attention softmax rows exact-length (see module docstring).
    * ``length`` may never exceed ``capacity`` (= ``max_seq_len``): absolute
      position embeddings make older cache entries unrepresentable once the
      window slides, so decoding falls back to full-window forwards instead.
    """

    def __init__(self, config: ModelConfig, batch: int):
        head_dim = config.dim // config.num_heads
        self.capacity = config.max_seq_len
        self.batch = batch
        self.length = 0
        self.layers = [
            LayerKV(
                k=np.zeros((batch, config.num_heads, self.capacity, head_dim), dtype=DTYPE),
                v=np.zeros((batch, config.num_heads, self.capacity, head_dim), dtype=DTYPE),
            )
            for _ in range(config.num_layers)
        ]

    @classmethod
    def for_model(cls, model: TransformerLM, batch: int) -> "DecodeState":
        """Allocate a state sized for ``model`` with ``batch`` lanes."""
        return cls(model.config, batch)

    def select(self, rows: list) -> None:
        """Keep only the given lane rows (in order) — used on lane retirement.

        Fancy indexing copies, so surviving lanes' cache bits are preserved
        exactly; dropping a finished lane can never perturb the others.
        """
        index = np.asarray(list(rows), dtype=np.int64)
        for kv in self.layers:
            kv.k = kv.k[index]
            kv.v = kv.v[index]
        self.batch = int(index.shape[0])


@dataclass(frozen=True)
class LaneSpec:
    """One independent (prompt, sample) decoding lane.

    ``rng`` must be the lane's *own* generator (spawned per lane index) —
    sharing a generator across lanes would make output depend on lane
    interleaving and break serial/batched token-identity.
    """

    prompt_ids: tuple
    rng: np.random.Generator
    max_new_tokens: int = 64
    temperature: float = 1.0
    top_k: int | None = None
    stop_ids: tuple = ()


def sample_tokens_batched(model: TransformerLM, lanes: list) -> list:
    """Decode every :class:`LaneSpec` lane; returns new token ids per lane.

    Lanes are grouped by prompt length (uniform in-group length is part of the
    determinism contract) and each group decodes with one KV-cached
    ``forward_step`` per step across all its live lanes.  Output order matches
    input order, and each lane's tokens are identical to what
    :func:`repro.lm.sampling.sample_tokens` produces for the same prompt,
    parameters and RNG stream — however many other lanes ride along.
    """
    results: list = [None] * len(lanes)
    groups: dict = {}
    for index, lane in enumerate(lanes):
        groups.setdefault(len(lane.prompt_ids), []).append(index)
    for prompt_len in sorted(groups):
        members = groups[prompt_len]
        for index, generated in zip(members, _decode_group(model, [lanes[i] for i in members])):
            results[index] = generated
    return results


def sample_tokens_cached(
    model: TransformerLM,
    prompt_ids: list,
    *,
    max_new_tokens: int = 64,
    temperature: float = 1.0,
    top_k: int | None = None,
    stop_ids: tuple = (),
    seed: int | np.random.Generator | None = None,
) -> list:
    """KV-cached drop-in for :func:`repro.lm.sampling.sample_tokens`.

    Same signature, token-identical output, O(T) per decode step instead of a
    full-context forward per token.
    """
    lane = LaneSpec(
        prompt_ids=tuple(int(t) for t in prompt_ids),
        rng=seeded_rng(seed),
        max_new_tokens=max_new_tokens,
        temperature=temperature,
        top_k=top_k,
        stop_ids=tuple(stop_ids),
    )
    return sample_tokens_batched(model, [lane])[0]


def _decode_group(model: TransformerLM, lanes: list) -> list:
    """Decode one uniform-prompt-length group of lanes together."""
    results: list = [[] for _ in lanes]
    # Zero-budget lanes retire before drawing anything (the serial path never
    # enters its loop for them, so they must not consume RNG or a forward).
    originals = [i for i, lane in enumerate(lanes) if lane.max_new_tokens > 0]
    if not originals:
        return results
    lanes = [lanes[i] for i in originals]
    generated: list = [results[i] for i in originals]
    max_context = model.config.max_seq_len
    prompt_len = len(lanes[0].prompt_ids)
    ids = [list(lane.prompt_ids) for lane in lanes]
    live = list(range(len(lanes)))

    with obs.span(
        "lm.batch_wave", category="lm", lanes=len(lanes), prompt_tokens=prompt_len
    ):
        # Prefill: one batched causal forward over the prompts fills the KV
        # caches and yields the first next-token logits.  Prompts longer than
        # the context window start directly in full-window mode, exactly like
        # the serial path's trailing-window re-encode.
        if prompt_len <= max_context:
            state = DecodeState.for_model(model, len(lanes))
            with obs.span("lm.decode_step", category="lm", lanes=len(live), prefill=True):
                logits = model.forward_step(
                    np.asarray([lane.prompt_ids for lane in lanes], dtype=np.int64), state
                )
        else:
            state = None
            with obs.span("lm.decode_step", category="lm", lanes=len(live), prefill=True):
                windows = np.asarray([lane.prompt_ids[-max_context:] for lane in lanes], dtype=np.int64)
                logits = model.forward(windows)[:, -1, :]

        while True:
            finished = set()
            for row, lane_index in enumerate(live):
                lane = lanes[lane_index]
                next_id = sample_from_logits(
                    logits[row], lane.rng, temperature=lane.temperature, top_k=lane.top_k
                )
                ids[lane_index].append(next_id)
                generated[lane_index].append(next_id)
                if next_id in lane.stop_ids or len(generated[lane_index]) >= lane.max_new_tokens:
                    finished.add(row)
            if finished:
                keep = [row for row in range(len(live)) if row not in finished]
                live = [live[row] for row in keep]
                if not live:
                    break
                if state is not None:
                    state.select(keep)
            # The KV cache is valid while the next token's absolute position
            # fits the window; past that, batch full forwards over each lane's
            # trailing max_seq_len tokens (positions re-encoded from 0, exactly
            # as the serial path does).
            if state is not None and state.length >= max_context:
                state = None
            with obs.span("lm.decode_step", category="lm", lanes=len(live)):
                if state is not None:
                    step_tokens = np.asarray([[ids[i][-1]] for i in live], dtype=np.int64)
                    logits = model.forward_step(step_tokens, state)
                else:
                    windows = np.asarray([ids[i][-max_context:] for i in live], dtype=np.int64)
                    logits = model.forward(windows)[:, -1, :]

    return results


def sample_responses_batched(
    model: TransformerLM,
    tokenizer: Tokenizer,
    prompt: str,
    num_samples: int,
    *,
    temperature: float = 0.9,
    top_k: int | None = 20,
    max_new_tokens: int = 72,
    seed: int | np.random.Generator | None = None,
) -> list:
    """Batched drop-in for :func:`repro.lm.sampling.sample_responses`.

    All ``num_samples`` lanes decode in one wave; per-sample text is identical
    to the serial path because both spawn the same per-lane RNG streams.
    """
    (responses,) = sample_response_frontier(
        model,
        tokenizer,
        [prompt],
        [num_samples],
        temperature=temperature,
        top_k=top_k,
        max_new_tokens=max_new_tokens,
        rng=seed,
    )
    return responses


def sample_response_frontier(
    model: TransformerLM,
    tokenizer: Tokenizer,
    prompts: list,
    counts: list,
    *,
    temperature: float = 0.9,
    top_k: int | None = 20,
    max_new_tokens: int = 72,
    rng: int | np.random.Generator | None = None,
) -> list:
    """Sample ``counts[i]`` responses for every ``prompts[i]`` in one wave.

    This is the pipeline producer's whole sampling frontier (m responses × N
    tasks) as one lane set: per prompt, per-lane RNG streams are spawned in
    the same order the serial path would (:func:`spawn_lane_rngs` per prompt,
    in prompt order), so each response's text is identical to serial
    ``sample_responses`` with the same ``rng``.  Returns one list of decoded
    responses per prompt, in order.
    """
    if len(prompts) != len(counts):
        raise ValueError(f"got {len(prompts)} prompts but {len(counts)} counts")
    # Normalise once: every prompt spawns its lane family from the SAME live
    # generator, in prompt order — the exact spawn sequence the serial path
    # performs when sample_responses is called once per prompt.
    rng = seeded_rng(rng)
    lanes: list = []
    spans: list = []
    for prompt, count in zip(prompts, counts):
        prompt_ids = tuple(tokenizer.encode(prompt, add_bos=True))
        start = len(lanes)
        for lane_rng in spawn_lane_rngs(rng, count):
            lanes.append(
                LaneSpec(
                    prompt_ids=prompt_ids,
                    rng=lane_rng,
                    max_new_tokens=max_new_tokens,
                    temperature=temperature,
                    top_k=top_k,
                    stop_ids=(tokenizer.eos_id,),
                )
            )
        spans.append((start, len(lanes)))
    generated = sample_tokens_batched(model, lanes)
    responses: list = []
    for start, stop in spans:
        batch = []
        for tokens in generated[start:stop]:
            if tokens and tokens[-1] == tokenizer.eos_id:
                tokens = tokens[:-1]
            batch.append(tokenizer.decode(tokens))
        responses.append(batch)
    return responses
