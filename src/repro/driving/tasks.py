"""Task catalogue for the autonomous-driving system.

Each task is a natural-language control query (the prompt dataset of Section
4.1) tied to the scenario model it is verified against.  The catalogue is
split into training and validation tasks, matching the two curves of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.transition_system import TransitionSystem
from repro.driving.scenarios.universal import scenario_model


@dataclass(frozen=True)
class DrivingTask:
    """One control task: its prompt, verification scenario and split."""

    name: str
    prompt: str
    scenario: str
    split: str  # "train" or "validation"

    def model(self) -> TransitionSystem:
        """Build the scenario world model this task is verified against."""
        return scenario_model(self.scenario)


#: The full task catalogue (prompts follow the paper's "Steps for ..." style).
TASKS: tuple = (
    DrivingTask(
        name="turn_right_traffic_light",
        prompt="turn right at the traffic light",
        scenario="traffic_light_intersection",
        split="train",
    ),
    DrivingTask(
        name="go_straight_traffic_light",
        prompt="go straight through the traffic light intersection",
        scenario="traffic_light_intersection",
        split="train",
    ),
    DrivingTask(
        name="turn_left_protected",
        prompt="turn left at the traffic light with the left-turn signal",
        scenario="left_turn_signal_intersection",
        split="train",
    ),
    DrivingTask(
        name="stop_sign_go_straight",
        prompt="go straight at the two-way stop sign",
        scenario="two_way_stop_intersection",
        split="train",
    ),
    DrivingTask(
        name="turn_right_stop_sign",
        prompt="turn right at the stop sign",
        scenario="two_way_stop_intersection",
        split="train",
    ),
    DrivingTask(
        name="enter_roundabout",
        prompt="enter the roundabout",
        scenario="roundabout",
        split="train",
    ),
    DrivingTask(
        name="cross_wide_median",
        prompt="cross the intersection with a wide median",
        scenario="wide_median_intersection",
        split="train",
    ),
    DrivingTask(
        name="yield_crosswalk",
        prompt="drive through the pedestrian crosswalk",
        scenario="pedestrian_crossing",
        split="train",
    ),
    # Appended after the original eight training tasks so seed-sensitive
    # slices like ``training_tasks()[:4]`` keep their historical meaning.
    DrivingTask(
        name="merge_onto_highway",
        prompt="merge onto the highway",
        scenario="highway_merge",
        split="train",
    ),
    DrivingTask(
        name="turn_left_unprotected",
        prompt="turn left at the intersection without a green arrow",
        scenario="left_turn_signal_intersection",
        split="validation",
    ),
    DrivingTask(
        name="turn_right_crosswalk",
        prompt="turn right at the pedestrian crosswalk",
        scenario="pedestrian_crossing",
        split="validation",
    ),
    DrivingTask(
        name="stop_sign_turn_left",
        prompt="turn left at the two-way stop sign",
        scenario="two_way_stop_intersection",
        split="validation",
    ),
    DrivingTask(
        name="merge_after_median",
        prompt="proceed through the wide median when the road is clear",
        scenario="wide_median_intersection",
        split="validation",
    ),
    DrivingTask(
        name="highway_on_ramp",
        prompt="enter the highway from the on-ramp",
        scenario="highway_merge",
        split="validation",
    ),
)


def all_tasks() -> tuple:
    """Every task in the catalogue."""
    return TASKS


def training_tasks() -> tuple:
    """Tasks whose preference data is used for DPO fine-tuning."""
    return tuple(t for t in TASKS if t.split == "train")


def validation_tasks() -> tuple:
    """Held-out tasks used only for the Figure-9 validation curve."""
    return tuple(t for t in TASKS if t.split == "validation")


def task_by_name(name: str) -> DrivingTask:
    """Look up a task by its identifier."""
    for task in TASKS:
        if task.name == name:
            return task
    raise KeyError(f"unknown task {name!r}; known: {[t.name for t in TASKS]}")


def task_prompt(task: DrivingTask) -> str:
    """The query sent to the language model (the paper's prompt format)."""
    return f'Steps for "{task.prompt}"'
