"""World model of a roundabout entry (Figure 17).

The ego vehicle yields to circulating traffic approaching from its left and to
pedestrians on the entry crosswalk.
"""

from __future__ import annotations

from repro.automata.transition_system import TransitionSystem, build_model_from_labels
from repro.driving.propositions import DRIVING_VOCABULARY, with_derived_propositions

_LABELS = {
    "rb_clear": [],
    "rb_car": ["car_from_left"],
    "rb_ped": ["pedestrian_at_left", "pedestrian_at_right"],
    "rb_car_ped": ["car_from_left", "pedestrian_at_right"],
    "rb_ped_front": ["pedestrian_in_front"],
}

_TRANSITIONS = [
    ("rb_clear", "rb_clear"),
    ("rb_clear", "rb_car"),
    ("rb_clear", "rb_ped"),
    ("rb_clear", "rb_ped_front"),
    ("rb_car", "rb_clear"),
    ("rb_car", "rb_car"),
    ("rb_car", "rb_car_ped"),
    ("rb_ped", "rb_clear"),
    ("rb_ped", "rb_car"),
    ("rb_car_ped", "rb_car"),
    ("rb_car_ped", "rb_clear"),
    ("rb_ped_front", "rb_clear"),
    ("rb_ped_front", "rb_car"),
]

_INITIAL_STATES = ["rb_clear", "rb_car", "rb_ped", "rb_car_ped", "rb_ped_front"]


def roundabout_model() -> TransitionSystem:
    """Build the roundabout entry model of Figure 17."""
    labels = {state: with_derived_propositions(props) for state, props in _LABELS.items()}
    return build_model_from_labels(
        name="roundabout",
        vocabulary=DRIVING_VOCABULARY,
        labels=labels,
        transitions=_TRANSITIONS,
        initial_states=_INITIAL_STATES,
    )
