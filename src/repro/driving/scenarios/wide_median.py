"""World model of a yield-based intersection with a wide median (Figure 6).

The only relevant observations are cross traffic from the left (σ1) and from
the right (σ2); all four combinations occur and evolve freely, exactly as the
four-state automaton of Figure 6.
"""

from __future__ import annotations

from repro.automata.transition_system import TransitionSystem, build_model_from_labels
from repro.driving.propositions import DRIVING_VOCABULARY, with_derived_propositions

_LABELS = {
    "median_clear": [],
    "median_left": ["car_from_left"],
    "median_right": ["car_from_right"],
    "median_both": ["car_from_left", "car_from_right"],
    "median_ped": ["pedestrian_in_front"],
}

# Traffic from either side appears and clears freely (the full 4-state clique
# of Figure 6), except that the fully blocked state eventually clears so a
# yielding vehicle is not starved forever.  A pedestrian occasionally crosses
# the median refuge (transient, as in every scenario model).
_CLIQUE = ["median_clear", "median_left", "median_right", "median_both"]
_TRANSITIONS = [
    (src, dst)
    for src in _CLIQUE
    for dst in _CLIQUE
    if not (src == "median_both" and dst == "median_both")
] + [
    ("median_clear", "median_ped"),
    ("median_ped", "median_clear"),
    ("median_ped", "median_left"),
]

_INITIAL_STATES = list(_LABELS)


def wide_median_model() -> TransitionSystem:
    """Build the wide-median intersection model of Figure 6."""
    labels = {state: with_derived_propositions(props) for state, props in _LABELS.items()}
    return build_model_from_labels(
        name="wide_median_intersection",
        vocabulary=DRIVING_VOCABULARY,
        labels=labels,
        transitions=_TRANSITIONS,
        initial_states=_INITIAL_STATES,
    )
