"""World model of a mid-block pedestrian crossing (additional scenario).

Not a figure of the paper, but the rule book's pedestrian rules (Φ1, Φ14) need
a scenario where pedestrians step in front of the vehicle; this model supplies
it and broadens the task catalogue used for training/validation splits.
"""

from __future__ import annotations

from repro.automata.transition_system import TransitionSystem, build_model_from_labels
from repro.driving.propositions import DRIVING_VOCABULARY, with_derived_propositions

_LABELS = {
    "xwalk_clear": ["green_traffic_light"],
    "xwalk_ped_front": ["green_traffic_light", "pedestrian_in_front"],
    "xwalk_ped_right": ["green_traffic_light", "pedestrian_at_right"],
    "xwalk_dark": [],
    "xwalk_dark_ped": ["pedestrian_in_front"],
}

_TRANSITIONS = [
    ("xwalk_clear", "xwalk_clear"),
    ("xwalk_clear", "xwalk_ped_front"),
    ("xwalk_clear", "xwalk_ped_right"),
    ("xwalk_clear", "xwalk_dark"),
    ("xwalk_ped_front", "xwalk_clear"),
    ("xwalk_ped_right", "xwalk_clear"),
    ("xwalk_ped_right", "xwalk_ped_front"),
    ("xwalk_dark", "xwalk_clear"),
    ("xwalk_dark", "xwalk_dark_ped"),
    ("xwalk_dark_ped", "xwalk_dark"),
    ("xwalk_dark_ped", "xwalk_clear"),
]

_INITIAL_STATES = ["xwalk_clear", "xwalk_ped_front", "xwalk_ped_right", "xwalk_dark"]


def pedestrian_crossing_model() -> TransitionSystem:
    """Build the pedestrian-crossing model."""
    labels = {state: with_derived_propositions(props) for state, props in _LABELS.items()}
    return build_model_from_labels(
        name="pedestrian_crossing",
        vocabulary=DRIVING_VOCABULARY,
        labels=labels,
        transitions=_TRANSITIONS,
        initial_states=_INITIAL_STATES,
    )
