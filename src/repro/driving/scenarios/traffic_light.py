"""World model of a regular traffic-light intersection (paper Figure 5).

The model is a state-labeled transcription of the edge-labeled automaton in
Figure 5: each state captures one observable environment configuration at the
intersection (light colour, oncoming/left traffic, pedestrians).  Transitions
encode the environment dynamics the ego vehicle can experience, including the
edge case highlighted in Section 5.1 — the light turning red while a car
arrives from the left immediately after the pedestrian check.

Modelling conventions (shared by all scenario models):

* Pedestrian states are transient: pedestrians finish crossing, so there is no
  cycle that keeps a ``pedestrian*`` proposition true forever.  This encodes
  the fairness assumption needed for the liveness rules (Φ1, Φ10) to be
  meaningfully checkable.
* Red-light states do not form cycles among themselves: the light eventually
  turns green (structural fairness for Φ7/Φ10).
* ``car_from_left`` only occurs under a non-green light, matching Figure 5.
"""

from __future__ import annotations

from repro.automata.transition_system import TransitionSystem, build_model_from_labels
from repro.driving.propositions import DRIVING_VOCABULARY, with_derived_propositions

_LABELS = {
    "green": ["green_traffic_light"],
    "green_opposite": ["green_traffic_light", "opposite_car"],
    "green_ped_left": ["green_traffic_light", "pedestrian_at_left"],
    "green_ped_right": ["green_traffic_light", "pedestrian_at_right"],
    "red": [],
    "red_car_left": ["car_from_left"],
    "red_ped_front": ["pedestrian_in_front"],
}

_TRANSITIONS = [
    # Green phase evolves freely among green configurations ...
    ("green", "green"),
    ("green", "green_opposite"),
    ("green", "green_ped_left"),
    ("green", "green_ped_right"),
    ("green_opposite", "green"),
    ("green_opposite", "green_opposite"),
    ("green_opposite", "green_ped_right"),
    # ... and may end: the light turns red (possibly with cross traffic).
    ("green", "red"),
    ("green", "red_car_left"),
    ("green_opposite", "red"),
    ("green_ped_left", "green"),
    ("green_ped_left", "red"),
    ("green_ped_right", "green"),
    ("green_ped_right", "red"),
    # The Section-5.1 edge case: right after the pedestrian check the light
    # turns red and a car approaches from the left.
    ("green_ped_right", "red_car_left"),
    ("green_ped_left", "red_car_left"),
    # Red phase: cross traffic may appear, then the light turns green again
    # (no red-red cycles: the light is fair).
    ("red", "green"),
    ("red", "green_opposite"),
    ("red", "green_ped_right"),
    ("red_car_left", "green"),
    ("red_car_left", "red"),
    ("red_ped_front", "green"),
    ("red", "red_ped_front"),
]

#: States the ego vehicle may find itself in when the task begins.
_INITIAL_STATES = ["green", "green_opposite", "green_ped_right", "red", "red_car_left"]


def traffic_light_intersection_model() -> TransitionSystem:
    """Build the traffic-light intersection model of Figure 5."""
    labels = {state: with_derived_propositions(props) for state, props in _LABELS.items()}
    return build_model_from_labels(
        name="traffic_light_intersection",
        vocabulary=DRIVING_VOCABULARY,
        labels=labels,
        transitions=_TRANSITIONS,
        initial_states=_INITIAL_STATES,
    )
