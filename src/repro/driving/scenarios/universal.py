"""The universal model: the disjoint union of every scenario model.

Section 5.1: "We integrate these models together to form a universal model
representing the entire system."  A controller verified against the universal
model is checked from every initial state of every scenario.
"""

from __future__ import annotations

from functools import reduce

from repro.automata.transition_system import TransitionSystem
from repro.driving.scenarios.highway_merge import highway_merge_model
from repro.driving.scenarios.left_turn_signal import left_turn_signal_model
from repro.driving.scenarios.pedestrian_crossing import pedestrian_crossing_model
from repro.driving.scenarios.roundabout import roundabout_model
from repro.driving.scenarios.traffic_light import traffic_light_intersection_model
from repro.driving.scenarios.two_way_stop import two_way_stop_model
from repro.driving.scenarios.wide_median import wide_median_model

SCENARIO_BUILDERS = {
    "traffic_light_intersection": traffic_light_intersection_model,
    "left_turn_signal_intersection": left_turn_signal_model,
    "wide_median_intersection": wide_median_model,
    "two_way_stop_intersection": two_way_stop_model,
    "roundabout": roundabout_model,
    "pedestrian_crossing": pedestrian_crossing_model,
    "highway_merge": highway_merge_model,
}


def scenario_model(name: str) -> TransitionSystem:
    """Build one scenario model by name."""
    try:
        return SCENARIO_BUILDERS[name]()
    except KeyError as exc:
        raise KeyError(f"unknown scenario {name!r}; known: {sorted(SCENARIO_BUILDERS)}") from exc


def universal_model() -> TransitionSystem:
    """Build the universal model (disjoint union of all scenario models)."""
    models = [builder() for builder in SCENARIO_BUILDERS.values()]
    merged = reduce(lambda a, b: a.union(b), models)
    merged.name = "universal_driving_model"
    return merged
