"""World model of an intersection with an explicit left-turn signal (Figure 15).

States capture the left-turn-light colour together with oncoming traffic and
pedestrians on the left — the observations that matter for the unprotected
versus protected left-turn rules (Φ2, Φ12).
"""

from __future__ import annotations

from repro.automata.transition_system import TransitionSystem, build_model_from_labels
from repro.driving.propositions import DRIVING_VOCABULARY, with_derived_propositions

_LABELS = {
    "ll_green": ["green_left_turn_light"],
    "ll_green_opposite": ["green_left_turn_light", "opposite_car"],
    "ll_flashing": ["flashing_left_turn_light"],
    "ll_red": [],
    "ll_red_opposite": ["opposite_car"],
    "ll_red_opposite_ped": ["opposite_car", "pedestrian_at_left"],
    "ll_red_car_right": ["car_from_right"],
    "ll_red_car_left": ["car_from_left"],
    "ll_red_ped_left": ["pedestrian_at_left"],
}

_TRANSITIONS = [
    # Protected green-arrow phase.
    ("ll_green", "ll_green"),
    ("ll_green", "ll_green_opposite"),
    ("ll_green", "ll_flashing"),
    ("ll_green", "ll_red"),
    ("ll_green_opposite", "ll_green"),
    ("ll_green_opposite", "ll_red_opposite"),
    # Flashing arrow: yield phase.
    ("ll_flashing", "ll_red"),
    ("ll_flashing", "ll_red_opposite"),
    ("ll_flashing", "ll_green"),
    # Red phase: oncoming traffic, pedestrians and cross traffic come and go,
    # but the arrow eventually turns green again (no red-only cycles).
    ("ll_red", "ll_green"),
    ("ll_red", "ll_green_opposite"),
    ("ll_red_opposite", "ll_green"),
    ("ll_red_opposite", "ll_green_opposite"),
    ("ll_red_opposite_ped", "ll_red_opposite"),
    ("ll_red_opposite_ped", "ll_green"),
    ("ll_red_car_right", "ll_green"),
    ("ll_red", "ll_red_car_right"),
    ("ll_red", "ll_red_opposite_ped"),
    # Cross traffic from the left and pedestrians near the turn path (used by
    # the rules Φ1/Φ9/Φ12 when a controller turns without the green arrow).
    ("ll_red", "ll_red_car_left"),
    ("ll_red_car_left", "ll_green"),
    ("ll_red_car_left", "ll_red_opposite"),
    ("ll_red_ped_left", "ll_green"),
    ("ll_red_ped_left", "ll_red_opposite"),
    ("ll_green", "ll_red_ped_left"),
]

_INITIAL_STATES = [
    "ll_green",
    "ll_green_opposite",
    "ll_red",
    "ll_red_opposite",
    "ll_red_opposite_ped",
    "ll_red_car_left",
    "ll_red_ped_left",
]


def left_turn_signal_model() -> TransitionSystem:
    """Build the left-turn-signal intersection model of Figure 15."""
    labels = {state: with_derived_propositions(props) for state, props in _LABELS.items()}
    return build_model_from_labels(
        name="left_turn_signal_intersection",
        vocabulary=DRIVING_VOCABULARY,
        labels=labels,
        transitions=_TRANSITIONS,
        initial_states=_INITIAL_STATES,
    )
