"""World model of a two-way stop-sign intersection (Figure 16).

``stop_sign`` holds in every state of this scenario; the dynamics track cross
traffic from the left/right and a car ahead at the opposite sign.
"""

from __future__ import annotations

from repro.automata.transition_system import TransitionSystem, build_model_from_labels
from repro.driving.propositions import DRIVING_VOCABULARY, with_derived_propositions

_LABELS = {
    "stop_clear": ["stop_sign"],
    "stop_left": ["stop_sign", "car_from_left"],
    "stop_right": ["stop_sign", "car_from_right"],
    "stop_both": ["stop_sign", "car_from_left", "car_from_right"],
    "stop_front": ["stop_sign", "opposite_car"],
    "stop_ped": ["stop_sign", "pedestrian_in_front"],
}

_TRANSITIONS = [
    # Cross traffic arrives and clears; the intersection eventually frees up
    # (no cycle keeps traffic there forever, so a yielding car is not starved).
    ("stop_clear", "stop_clear"),
    ("stop_clear", "stop_left"),
    ("stop_clear", "stop_right"),
    ("stop_clear", "stop_front"),
    ("stop_clear", "stop_ped"),
    ("stop_left", "stop_clear"),
    ("stop_left", "stop_both"),
    ("stop_right", "stop_clear"),
    ("stop_right", "stop_both"),
    ("stop_both", "stop_clear"),
    ("stop_front", "stop_clear"),
    ("stop_ped", "stop_clear"),
    ("stop_ped", "stop_front"),
]

_INITIAL_STATES = ["stop_clear", "stop_left", "stop_right", "stop_both", "stop_ped"]


def two_way_stop_model() -> TransitionSystem:
    """Build the two-way stop-sign model of Figure 16."""
    labels = {state: with_derived_propositions(props) for state, props in _LABELS.items()}
    return build_model_from_labels(
        name="two_way_stop_intersection",
        vocabulary=DRIVING_VOCABULARY,
        labels=labels,
        transitions=_TRANSITIONS,
        initial_states=_INITIAL_STATES,
    )
