"""World model of a highway on-ramp merge.

Not one of the paper's six scenarios — added to widen the verification
workload the feedback service is exercised against.  The ego vehicle sits at
the end of an acceleration lane: mainline traffic approaches from the left,
vehicles already committed to the gap appear on the right, and a road worker
can occupy the shoulder next to the merge point.  Merging is the
``go_straight`` manoeuvre, legal only when both lanes are clear.
"""

from __future__ import annotations

from repro.automata.transition_system import TransitionSystem, build_model_from_labels
from repro.driving.propositions import DRIVING_VOCABULARY, with_derived_propositions

_LABELS = {
    "hm_clear": [],
    "hm_mainline": ["car_from_left"],
    "hm_gap_taken": ["car_from_right"],
    "hm_dense": ["car_from_left", "car_from_right"],
    "hm_worker": ["pedestrian_at_right"],
}

# Mainline platoons arrive and pass; the gap on the right fills and clears;
# dense traffic always thins eventually (no self-loop on ``hm_dense``) so a
# yielding controller is not starved.  The road worker is transient, as the
# pedestrian-fairness convention of every scenario model requires.
_TRANSITIONS = [
    ("hm_clear", "hm_clear"),
    ("hm_clear", "hm_mainline"),
    ("hm_clear", "hm_gap_taken"),
    ("hm_clear", "hm_worker"),
    ("hm_mainline", "hm_mainline"),
    ("hm_mainline", "hm_clear"),
    ("hm_mainline", "hm_dense"),
    ("hm_gap_taken", "hm_gap_taken"),
    ("hm_gap_taken", "hm_clear"),
    ("hm_gap_taken", "hm_dense"),
    ("hm_dense", "hm_mainline"),
    ("hm_dense", "hm_gap_taken"),
    ("hm_dense", "hm_clear"),
    ("hm_worker", "hm_clear"),
    ("hm_worker", "hm_mainline"),
]

_INITIAL_STATES = list(_LABELS)


def highway_merge_model() -> TransitionSystem:
    """Build the highway on-ramp merge model."""
    labels = {state: with_derived_propositions(props) for state, props in _LABELS.items()}
    return build_model_from_labels(
        name="highway_merge",
        vocabulary=DRIVING_VOCABULARY,
        labels=labels,
        transitions=_TRANSITIONS,
        initial_states=_INITIAL_STATES,
    )
