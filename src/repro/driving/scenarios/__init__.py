"""Scenario world models for the autonomous-driving system (Figures 5, 6, 15-17)."""

from repro.driving.scenarios.highway_merge import highway_merge_model
from repro.driving.scenarios.left_turn_signal import left_turn_signal_model
from repro.driving.scenarios.pedestrian_crossing import pedestrian_crossing_model
from repro.driving.scenarios.roundabout import roundabout_model
from repro.driving.scenarios.traffic_light import traffic_light_intersection_model
from repro.driving.scenarios.two_way_stop import two_way_stop_model
from repro.driving.scenarios.universal import SCENARIO_BUILDERS, scenario_model, universal_model
from repro.driving.scenarios.wide_median import wide_median_model

__all__ = [
    "highway_merge_model",
    "left_turn_signal_model",
    "pedestrian_crossing_model",
    "roundabout_model",
    "traffic_light_intersection_model",
    "two_way_stop_model",
    "SCENARIO_BUILDERS",
    "scenario_model",
    "universal_model",
    "wide_median_model",
]
