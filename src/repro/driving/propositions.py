"""The autonomous-driving vocabulary from Section 5.1 of the paper.

The propositions describe what the ego vehicle can observe; the actions are
the high-level control outputs.  The extra proposition ``pedestrian`` (used by
specification Φ1) abstracts "any pedestrian is present"; world models and the
simulator include it in a state label whenever any ``pedestrian_at_*``
proposition holds.
"""

from __future__ import annotations

from repro.automata.alphabet import Symbol, Vocabulary, make_symbol

#: Environment propositions P (Section 5.1).
DRIVING_PROPOSITIONS: tuple = (
    "green_traffic_light",
    "green_left_turn_light",
    "flashing_left_turn_light",
    "opposite_car",
    "car_from_left",
    "car_from_right",
    "pedestrian_at_left",
    "pedestrian_at_right",
    "pedestrian_in_front",
    "stop_sign",
    "pedestrian",  # derived: any pedestrian_at_* / pedestrian_in_front holds
)

#: Controller actions PA (Section 5.1).
DRIVING_ACTIONS: tuple = (
    "stop",
    "turn_left",
    "turn_right",
    "go_straight",
)

#: Propositions that imply the derived ``pedestrian`` proposition.
PEDESTRIAN_PROPOSITIONS: tuple = (
    "pedestrian_at_left",
    "pedestrian_at_right",
    "pedestrian_in_front",
)

#: The shared driving vocabulary used by models, controllers and the simulator.
DRIVING_VOCABULARY = Vocabulary(
    propositions=frozenset(DRIVING_PROPOSITIONS),
    actions=frozenset(DRIVING_ACTIONS),
)


def with_derived_propositions(propositions) -> Symbol:
    """Return a symbol with the derived ``pedestrian`` proposition filled in."""
    symbol = set(make_symbol(propositions))
    if symbol & set(PEDESTRIAN_PROPOSITIONS):
        symbol.add("pedestrian")
    return frozenset(symbol)


def is_action(name: str) -> bool:
    """True if ``name`` is one of the four driving actions."""
    return DRIVING_VOCABULARY.is_action(name)


def is_proposition(name: str) -> bool:
    """True if ``name`` is one of the driving propositions."""
    return DRIVING_VOCABULARY.is_proposition(name)
