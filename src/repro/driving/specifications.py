"""The 15 LTL traffic-rule specifications from Appendix C of the paper.

Each specification is a formula over the driving propositions and actions.
``SPECIFICATIONS`` preserves the paper's numbering (Φ1 ... Φ15);
``CORE_SPECIFICATIONS`` is the subset Φ1-Φ5 highlighted in Section 5.1 and
used for the empirical-evaluation figure (Figure 11).
"""

from __future__ import annotations

from repro.logic.ast import Formula
from repro.logic.parser import parse_ltl

#: Φ1 ... Φ15, in the paper's order, as parseable LTL strings.
SPECIFICATION_TEXTS: dict = {
    "phi_1": "G( pedestrian -> F stop )",
    "phi_2": "G( (opposite_car & !green_left_turn_light) -> !turn_left )",
    "phi_3": "G( !green_traffic_light -> !go_straight )",
    "phi_4": "G( stop_sign -> F stop )",
    "phi_5": "G( (car_from_left | pedestrian_at_right) -> !turn_right )",
    "phi_6": "G( stop | go_straight | turn_left | turn_right )",
    "phi_7": "F( green_traffic_light | green_left_turn_light ) -> F !stop",
    "phi_8": "G( !green_traffic_light -> F stop )",
    "phi_9": "G( car_from_left -> !(turn_left | turn_right) )",
    "phi_10": "G( green_traffic_light -> F !stop )",
    "phi_11": "G( (turn_right & !green_traffic_light) -> !car_from_left )",
    "phi_12": "G( (turn_left & !green_left_turn_light) -> (!car_from_right & !car_from_left & !opposite_car) )",
    "phi_13": "G( (stop_sign & !car_from_left & !car_from_right) -> F !stop )",
    "phi_14": "G( go_straight -> !pedestrian_in_front )",
    "phi_15": "G( (turn_right & stop_sign) -> !car_from_left )",
}


def specification(name: str) -> Formula:
    """Parse one named specification (``"phi_1"`` ... ``"phi_15"``)."""
    return parse_ltl(SPECIFICATION_TEXTS[name])


def all_specifications() -> dict:
    """All 15 specifications as ``{name: Formula}`` in paper order."""
    return {name: parse_ltl(text) for name, text in SPECIFICATION_TEXTS.items()}


#: Names of the first five specifications used in Section 5.1 / Figure 11.
CORE_SPECIFICATION_NAMES: tuple = ("phi_1", "phi_2", "phi_3", "phi_4", "phi_5")


def core_specifications() -> dict:
    """Φ1 ... Φ5 as ``{name: Formula}``."""
    return {name: specification(name) for name in CORE_SPECIFICATION_NAMES}


#: Safety-style specifications (no liveness obligation) — useful for ablations.
SAFETY_SPECIFICATION_NAMES: tuple = (
    "phi_2",
    "phi_3",
    "phi_5",
    "phi_9",
    "phi_11",
    "phi_12",
    "phi_14",
    "phi_15",
)


def safety_specifications() -> dict:
    """The purely safety-shaped subset of the rule book."""
    return {name: specification(name) for name in SAFETY_SPECIFICATION_NAMES}
