"""Template step-by-step responses for every driving task.

These templates play three roles in the reproduction:

1. **Synthetic pre-training corpus.**  The "pre-trained" language model of the
   paper (Llama2-7B) already knows how to produce numbered driving
   instructions of mixed quality.  Our numpy language model acquires the same
   behaviour by being pre-trained on a corpus sampled from these templates
   with a quality mixture matching the paper's ~60% pre-fine-tuning
   specification satisfaction.
2. **Reference behaviours for calibration and tests.**  Each template has a
   known compliance category, so unit tests can assert that the verification
   feedback orders categories correctly (compliant > flawed > vague).
3. **Sampling fallback.**  Benchmarks that do not need a trained model can
   sample responses directly from the category mixture to emulate the
   pre-/post-fine-tuning response distributions.

Categories
----------
``compliant``
    Responses whose induced controllers satisfy (nearly) all 15 rules.
``flawed``
    Plausible but rule-violating responses: missing checks, acting on the
    wrong condition, or skipping the mandatory stop — the behaviours the
    paper's pre-fine-tuning Llama2 exhibits (e.g. the Figure 7 left
    controller, which fails Φ5).
``vague``
    Unalignable chatter ("drive carefully and use your best judgment") that
    cannot be compiled into a controller at all; the paper lists making
    outputs alignable as an explicit fine-tuning goal.
"""

from __future__ import annotations

from repro.utils.rng import seeded_rng

#: Vague responses are task-independent.
VAGUE_RESPONSES: tuple = (
    "1. Drive carefully and stay alert at all times.\n"
    "2. Use your best judgment in traffic.\n"
    "3. Follow the local rules of the road.",
    "1. Slow down a little near the intersection.\n"
    "2. Be mindful of the surroundings.\n"
    "3. Continue on your route once comfortable.",
    "1. Make sure the vehicle is in good condition.\n"
    "2. Keep both hands on the wheel.\n"
    "3. Be courteous to other drivers.",
    "1. Stay calm while driving.\n"
    "2. Pay attention to everything around you.",
)

#: Per-task response templates.  Keys are task names from ``repro.driving.tasks``.
RESPONSE_LIBRARY: dict = {
    "turn_right_traffic_light": {
        "compliant": (
            "1. Observe the traffic light.\n"
            "2. If the traffic light is not green, stop.\n"
            "3. If there is no car from the left and no pedestrian, turn right.",
            "1. Check the traffic light ahead.\n"
            "2. If there is a pedestrian, stop.\n"
            "3. If there is no car from the left and no pedestrian at right, turn right.",
            "1. Observe the traffic light in front of you.\n"
            "2. Check for the left approaching car and right side pedestrian.\n"
            "3. If no car from the left is approaching and no pedestrian on the right, proceed to turn right.",
        ),
        "flawed": (
            # The paper's pre-fine-tuning response (Figure 7 left): the final
            # turn is not re-guarded, so the Φ5 edge case slips through.
            "1. Look straight ahead and watch for the traffic light.\n"
            "2. If the traffic light turns green, start moving forward.\n"
            "3. As you approach the intersection, look to your left for oncoming traffic.\n"
            "4. If there is no traffic from your left, check pedestrians on your right.\n"
            "5. If it is safe, turn your vehicle right.",
            "1. If the traffic light is green, go straight.\n"
            "2. Turn right at the corner.",
            "1. Slow down near the intersection.\n"
            "2. Turn right.",
            "1. Watch for the green light.\n"
            "2. If the green light is on, turn right without delay.",
        ),
    },
    "go_straight_traffic_light": {
        "compliant": (
            "1. Observe the traffic light.\n"
            "2. If the traffic light is not green, stop.\n"
            "3. If there is a pedestrian in front, stop.\n"
            "4. If the green traffic light is on and there is no pedestrian in front, go straight.",
            "1. Check the traffic light.\n"
            "2. If there is a pedestrian in front, stop.\n"
            "3. If the traffic light is green and no pedestrian in front, go straight.",
            "1. Observe the traffic light and the crosswalk.\n"
            "2. If the traffic light is not green, stop.\n"
            "3. If the green traffic light is on and there is no pedestrian in front, go straight.",
        ),
        "flawed": (
            "1. Go straight through the intersection.",
            "1. Check the traffic light.\n"
            "2. Go straight and keep your speed.",
            "1. If there is no car ahead, go straight.\n"
            "2. Keep moving through the intersection.",
            "1. Accelerate when the light changes.\n"
            "2. Go straight.",
        ),
    },
    "turn_left_protected": {
        "compliant": (
            "1. Approach the traffic light and observe the left turn light.\n"
            "2. If the left turn light is not green, stop.\n"
            "3. If the left turn light is green, turn left.",
            "1. Observe the left turn light.\n"
            "2. If the green left turn light is off, stop.\n"
            "3. If the green left turn light is on and there is no pedestrian, turn left.",
            "1. Observe the left turn light.\n"
            "2. If there is a pedestrian, stop.\n"
            "3. If the left turn light is green and there is no opposite car, turn left.",
        ),
        "flawed": (
            # The paper's pre-fine-tuning left-turn response (fails Φ12).
            "1. Approach the traffic light with a left-turn light.\n"
            "2. Wait for the left-turn light to turn green.\n"
            "3. When the left-turn light turns green, wait for oncoming traffic to clear before turning left.\n"
            "4. Turn left and proceed through the intersection.",
            "1. If there is no oncoming traffic, turn left.",
            "1. Turn left at the intersection.",
            "1. Watch the traffic light.\n"
            "2. Turn left when you feel it is safe.",
        ),
    },
    "stop_sign_go_straight": {
        "compliant": (
            "1. Stop at the stop sign.\n"
            "2. Check the car from the left and the car from the right.\n"
            "3. If there is no car from the left and no car from the right and no pedestrian in front, go straight.",
            "1. Come to a complete stop at the stop sign.\n"
            "2. If there is a pedestrian in front, stop.\n"
            "3. If there is no car from the left and no car from the right, go straight.",
            "1. Stop at the stop sign.\n"
            "2. If there is no car from the left and no car from the right and no pedestrian, go straight.",
        ),
        "flawed": (
            "1. Slow down at the stop sign.\n"
            "2. Go straight through the intersection.",
            "1. Go straight at the stop sign.",
            "1. Stop at the stop sign.\n"
            "2. Go straight.",
            "1. If there is no car from the left, go straight.",
        ),
    },
    "turn_right_stop_sign": {
        "compliant": (
            "1. Stop at the stop sign.\n"
            "2. If there is no car from the left and no pedestrian, turn right.",
            "1. Come to a complete stop at the stop sign.\n"
            "2. Check the car from the left and the pedestrian on the right.\n"
            "3. If there is no car from the left and no pedestrian at right, turn right.",
            "1. Stop at the stop sign.\n"
            "2. If there is a pedestrian, stop.\n"
            "3. If there is no car from the left and no pedestrian, turn right.",
        ),
        "flawed": (
            "1. Turn right at the stop sign.",
            "1. Slow down at the stop sign.\n"
            "2. Turn right.",
            "1. If there is no car from the right, turn right.",
            "1. Watch for the stop sign.\n"
            "2. Turn right quickly.",
        ),
    },
    "enter_roundabout": {
        "compliant": (
            "1. Observe the car from the left and the pedestrian.\n"
            "2. If there is a pedestrian in front, stop.\n"
            "3. If there is no car from the left and no pedestrian, go straight.",
            "1. Check the traffic circulating from the left.\n"
            "2. If there is no car from the left and no pedestrian, go straight.",
            "1. If there is a pedestrian, stop.\n"
            "2. If there is no car from the left and no pedestrian, go straight.",
        ),
        "flawed": (
            "1. Enter the roundabout.",
            "1. Go straight into the roundabout.",
            "1. Slow down slightly.\n"
            "2. Go straight into the roundabout without stopping.",
            "1. If there is no car from the right, go straight.",
        ),
    },
    "cross_wide_median": {
        "compliant": (
            "1. Observe the car from the left and the car from the right.\n"
            "2. If there is a pedestrian in front, stop.\n"
            "3. If there is no car from the left and no car from the right and no pedestrian, go straight.",
            "1. If there is a pedestrian in front, stop.\n"
            "2. If there is no car from the left and no car from the right, go straight.",
            "1. Check the car from the left and the car from the right.\n"
            "2. If there is no car from the left and no car from the right and no pedestrian in front, go straight.",
        ),
        "flawed": (
            "1. Go straight across the median.",
            "1. If there is no car from the left, go straight.",
            "1. Cross the intersection.\n"
            "2. Keep moving until you reach the other side.",
            "1. Accelerate and go straight.",
        ),
    },
    "yield_crosswalk": {
        "compliant": (
            "1. Observe the crosswalk and the traffic light.\n"
            "2. If there is a pedestrian in front, stop.\n"
            "3. If the traffic light is not green, stop.\n"
            "4. If the green traffic light is on and there is no pedestrian, go straight.",
            "1. If there is a pedestrian, stop.\n"
            "2. If the traffic light is green and there is no pedestrian in front, go straight.",
            "1. Observe the pedestrian in front and the traffic light.\n"
            "2. If there is a pedestrian in front, stop.\n"
            "3. If the traffic light is green and no pedestrian in front, go straight.",
        ),
        "flawed": (
            "1. Go straight through the crosswalk.",
            "1. Slow down at the crosswalk.\n"
            "2. Keep moving through the crosswalk.",
            "1. If the traffic light is green, go straight.",
            "1. Honk to warn pedestrians.\n"
            "2. Go straight.",
        ),
    },
    "turn_left_unprotected": {
        "compliant": (
            "1. Observe the left turn light and the oncoming traffic.\n"
            "2. If there is a pedestrian, stop.\n"
            "3. If the left turn light is green and there is no opposite car, turn left.",
            "1. Observe the left turn light.\n"
            "2. If the left turn light is not green, stop.\n"
            "3. If the left turn light is green, turn left.",
            "1. If the green left turn light is off, stop.\n"
            "2. If the green left turn light is on and there is no opposite car and no pedestrian, turn left.",
        ),
        "flawed": (
            "1. Turn left when there is a gap.",
            "1. If there is no oncoming traffic, turn left.",
            "1. Turn left at the intersection.",
            "1. Wait a moment.\n"
            "2. Turn left.",
        ),
    },
    "turn_right_crosswalk": {
        "compliant": (
            "1. Observe the crosswalk.\n"
            "2. If there is a pedestrian, stop.\n"
            "3. If there is no pedestrian and no car from the left, turn right.",
            "1. If there is a pedestrian in front, stop.\n"
            "2. If there is no pedestrian at right and no car from the left, turn right.",
            "1. Check the pedestrian on the right and the car from the left.\n"
            "2. If there is no pedestrian and no car from the left, turn right.",
        ),
        "flawed": (
            "1. Turn right at the crosswalk.",
            "1. If the traffic light is green, turn right.",
            "1. Slow down near the crosswalk.\n"
            "2. Turn right.",
            "1. Turn right when you see a gap.",
        ),
    },
    "stop_sign_turn_left": {
        "compliant": (
            "1. Stop at the stop sign.\n"
            "2. If there is a pedestrian, stop.\n"
            "3. If there is no car from the left and no car from the right and no opposite car, turn left.",
            "1. Come to a complete stop at the stop sign.\n"
            "2. If there is no car from the left and no car from the right and no opposite car, turn left.",
            "1. Stop at the stop sign.\n"
            "2. Check the car from the left and the car from the right.\n"
            "3. If there is no car from the left and no car from the right, turn left.",
        ),
        "flawed": (
            "1. Turn left at the stop sign.",
            "1. Slow down at the stop sign.\n"
            "2. Turn left.",
            "1. If there is no opposite car, turn left.",
            "1. Watch for the stop sign.\n"
            "2. Turn left when it looks clear.",
        ),
    },
    "merge_onto_highway": {
        "compliant": (
            "1. Observe the car from the left and the car from the right.\n"
            "2. If there is a pedestrian, stop.\n"
            "3. If there is no car from the left and no car from the right, go straight.",
            "1. Check the car from the left and the car from the right.\n"
            "2. If there is no car from the left and no car from the right and no pedestrian, go straight.",
            "1. If there is a pedestrian, stop.\n"
            "2. If there is no car from the left and no car from the right and no pedestrian, go straight.",
        ),
        "flawed": (
            "1. Go straight onto the highway.",
            "1. Accelerate and go straight onto the highway.",
            "1. If there is no car from the right, go straight.",
            "1. Watch for a gap in traffic.\n"
            "2. Go straight.",
        ),
    },
    "highway_on_ramp": {
        "compliant": (
            "1. Observe the car from the left and the car from the right.\n"
            "2. If there is a pedestrian, stop.\n"
            "3. If there is no car from the left and no car from the right and no pedestrian, go straight.",
            "1. If there is a pedestrian, stop.\n"
            "2. Check the car from the left and the car from the right.\n"
            "3. If there is no car from the left and no car from the right, go straight.",
            "1. Check the car from the left.\n"
            "2. If there is a pedestrian, stop.\n"
            "3. If there is no car from the left and no car from the right and no pedestrian, go straight.",
        ),
        "flawed": (
            "1. Go straight up the on-ramp.",
            "1. Accelerate and go straight.",
            "1. If there is no car from the left, go straight.",
            "1. Watch the traffic on the highway.\n"
            "2. Go straight.",
        ),
    },
    "merge_after_median": {
        "compliant": (
            "1. Observe the car from the left and the car from the right.\n"
            "2. If there is a pedestrian in front, stop.\n"
            "3. If there is no car from the left and no car from the right, go straight.",
            "1. If there is no car from the left and no car from the right and no pedestrian, go straight.",
            "1. Check the car from the left and the car from the right.\n"
            "2. If there is a pedestrian in front, stop.\n"
            "3. If there is no car from the left and no car from the right and no pedestrian in front, go straight.",
        ),
        "flawed": (
            "1. Go straight when the median ends.",
            "1. If there is no car from the left, go straight.",
            "1. Keep moving through the median opening.",
            "1. Accelerate and go straight across.",
        ),
    },
}

#: Response categories in preference order (best first).
CATEGORIES: tuple = ("compliant", "flawed", "vague")


def response_templates(task_name: str, category: str) -> tuple:
    """All templates of ``category`` for ``task_name`` (vague is shared)."""
    if category == "vague":
        return VAGUE_RESPONSES
    try:
        per_task = RESPONSE_LIBRARY[task_name]
    except KeyError as exc:
        raise KeyError(f"no response templates for task {task_name!r}") from exc
    try:
        return per_task[category]
    except KeyError as exc:
        raise KeyError(f"unknown response category {category!r}; known: {CATEGORIES}") from exc


def sample_response(task_name: str, category: str, seed: int | None = None) -> str:
    """Sample one template of the given category uniformly at random."""
    rng = seeded_rng(seed)
    templates = response_templates(task_name, category)
    return templates[int(rng.integers(len(templates)))]


def sample_mixture_response(
    task_name: str,
    weights: dict,
    seed: int | None = None,
) -> tuple:
    """Sample ``(category, response)`` under a category mixture.

    ``weights`` maps category name to probability mass (normalised here).
    Used to emulate the pre- and post-fine-tuning response distributions when
    a trained language model is not needed.
    """
    rng = seeded_rng(seed)
    categories = list(weights)
    mass = [max(0.0, float(weights[c])) for c in categories]
    total = sum(mass)
    if total <= 0:
        raise ValueError(f"mixture weights must have positive mass, got {weights}")
    probabilities = [m / total for m in mass]
    category = categories[int(rng.choice(len(categories), p=probabilities))]
    return category, sample_response(task_name, category, seed=rng)


#: Mixture emulating the pre-trained (pre-fine-tuning) model's output quality.
#: Calibrated so the expected specification satisfaction is ~60% (Section 1).
PRETRAINED_MIXTURE: dict = {"compliant": 0.27, "flawed": 0.45, "vague": 0.28}

#: Mixture emulating the fine-tuned model's output quality.
FINETUNED_MIXTURE: dict = {"compliant": 0.86, "flawed": 0.11, "vague": 0.03}
