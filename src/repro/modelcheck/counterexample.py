"""Counter-example traces returned by the model checker.

When ``M ⊗ C ⊭ Φ`` the checker returns a *lasso*: a finite prefix followed by
a cycle, exactly as NuSMV reports violating traces.  Each step records the
product state and its label (``λ_M(p) ∪ a``), matching the trace format
``(p_1, q_1, c_1 ∪ a_1), (p_2, q_2, c_2 ∪ a_2), ...`` from Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.automata.alphabet import Symbol, format_symbol


@dataclass(frozen=True)
class CounterexampleStep:
    """One step of a counter-example: a product state and its label."""

    state: object
    label: Symbol

    def __str__(self) -> str:
        return f"{self.state}: {format_symbol(self.label)}"


@dataclass(frozen=True)
class Counterexample:
    """A lasso-shaped violating trace: ``prefix`` followed by a repeating ``cycle``."""

    prefix: tuple = ()
    cycle: tuple = ()

    @property
    def steps(self) -> tuple:
        """Prefix and one unrolling of the cycle, in order."""
        return tuple(self.prefix) + tuple(self.cycle)

    @property
    def states(self) -> list:
        """The product states visited (prefix + one cycle unrolling)."""
        return [step.state for step in self.steps]

    @property
    def labels(self) -> list:
        """The symbol sequence of the violating trace (prefix + one cycle)."""
        return [step.label for step in self.steps]

    def finite_unrolling(self, repetitions: int = 2) -> list:
        """Labels of the prefix followed by ``repetitions`` unrollings of the cycle."""
        return [s.label for s in self.prefix] + [s.label for s in self.cycle] * repetitions

    def describe(self) -> str:
        """Readable multi-line rendering, cycle marked as in NuSMV's ``-- Loop``."""
        lines = ["Counterexample trace:"]
        for step in self.prefix:
            lines.append(f"  {step}")
        if self.cycle:
            lines.append("  -- Loop starts here --")
            for step in self.cycle:
                lines.append(f"  {step}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.prefix) + len(self.cycle)


def make_counterexample(prefix_states: Sequence, cycle_states: Sequence, label_of) -> Counterexample:
    """Build a :class:`Counterexample` from state sequences and a labeling function."""
    prefix = tuple(CounterexampleStep(s, label_of(s)) for s in prefix_states)
    cycle = tuple(CounterexampleStep(s, label_of(s)) for s in cycle_states)
    return Counterexample(prefix=prefix, cycle=cycle)
