"""Automata-theoretic LTL model checker (the NuSMV substitute).

Checks ``M ⊗ C |= Φ`` (Eq. 1 of the paper) for an explicit-state Kripke
structure: build a Büchi automaton for ``¬Φ``, form the synchronous product
with the Kripke structure, and search for a reachable accepting cycle
(a *lasso*).  If one exists the specification is violated and the lasso is
returned as a counter-example; otherwise the specification holds for every
possible initial state, exactly the verdict NuSMV would report.

Two implementations of that algorithm live here:

* the **naive path** (:class:`NaiveModelChecker`, or
  ``ModelChecker(use_fastpath=False)``) — the original object-graph BFS,
  kept frozen as the differential-testing reference;
* the **fast path** (the :class:`ModelChecker` default) — memoized Büchi
  construction, automaton pruning, integer-compiled products and a
  verification-result cache, built from :mod:`repro.modelcheck.fastpath`.
  Verdicts are identical (``tests/modelcheck/test_differential.py`` holds the
  two paths to the same ``holds`` on every catalogue task and a fuzz corpus);
  counterexamples may differ in the particular lasso chosen but are always
  genuine violations.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs import tracer as obs
from repro.automata.buchi import BuchiAutomaton
from repro.automata.fsa import FSAController
from repro.automata.kripke import KripkeStructure
from repro.automata.product import build_product
from repro.automata.transition_system import TransitionSystem
from repro.errors import VerificationError
from repro.logic.ast import Formula, Not
from repro.logic.ltl2buchi import formula_key, ltl_to_buchi
from repro.logic.parser import parse_ltl
from repro.modelcheck import fastpath
from repro.modelcheck.counterexample import Counterexample, make_counterexample


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of checking one specification against one structure."""

    specification: Formula
    holds: bool
    counterexample: Counterexample | None = None
    statistics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        verdict = "satisfied" if self.holds else "VIOLATED"
        text = f"[{verdict}] {self.specification}"
        if self.counterexample is not None:
            text += "\n" + self.counterexample.describe()
        return text


@dataclass(frozen=True)
class VerificationReport:
    """Results for a batch of specifications (one controller / one structure)."""

    results: tuple

    @property
    def num_specifications(self) -> int:
        return len(self.results)

    @property
    def num_satisfied(self) -> int:
        return sum(1 for r in self.results if r.holds)

    @property
    def satisfaction_ratio(self) -> float:
        """Fraction of specifications satisfied; 1.0 for an empty report.

        The empty case is *vacuously true*: the report answers "do all checked
        specifications hold?", and a universal quantification over nothing
        holds (an empty rule book rejects nothing).  Earlier versions returned
        0.0 here, which made a controller verified against zero specs look
        maximally non-compliant; :attr:`FormalFeedback.satisfaction_ratio
        <repro.feedback.formal.FormalFeedback.satisfaction_ratio>` follows the
        same convention.
        """
        if not self.results:
            return 1.0
        return self.num_satisfied / self.num_specifications

    @property
    def violated(self) -> list:
        return [r for r in self.results if not r.holds]

    def describe(self) -> str:
        lines = [f"{self.num_satisfied}/{self.num_specifications} specifications satisfied"]
        lines.extend(r.describe().splitlines()[0] for r in self.results)
        return "\n".join(lines)


class ModelChecker:
    """Explicit-state LTL model checker over Kripke structures.

    Parameters
    ----------
    max_product_states:
        Safety limit on the size of the Kripke × Büchi product; exceeded sizes
        raise :class:`~repro.errors.VerificationError` rather than hanging.
    use_fastpath:
        When True (default), check through :mod:`repro.modelcheck.fastpath`:
        memoized + pruned Büchi construction, integer-compiled products and
        the verification-result cache.  When False, run the original
        object-graph algorithm — the frozen reference the differential suite
        compares against (see :class:`NaiveModelChecker`).
    result_cache_size:
        Bound on the per-checker :class:`~repro.modelcheck.fastpath.ResultCache`
        of ``(model, controller, restart, spec) → VerificationResult`` entries;
        ``0`` disables result caching.  Fast path only.
    memo:
        The :class:`~repro.modelcheck.fastpath.BuchiMemo` construction memo to
        use; defaults to the process-wide one
        (:func:`~repro.modelcheck.fastpath.automata_memo`).  Pass a private
        instance to isolate benchmarks and tests from earlier translations.
    """

    def __init__(
        self,
        max_product_states: int = 200_000,
        *,
        use_fastpath: bool = True,
        result_cache_size: int = 512,
        memo: fastpath.BuchiMemo | None = None,
    ):
        self.max_product_states = max_product_states
        self.use_fastpath = use_fastpath
        self._memo = memo if memo is not None else fastpath.automata_memo()
        self._results = (
            fastpath.ResultCache(result_cache_size)
            if use_fastpath and result_cache_size > 0
            else None
        )
        # Memoized model fingerprints and formula keys, keyed by object
        # identity; the stored strong reference keeps an id from being reused
        # while its entry lives.  Rendering str(formula) dominates memo-hit
        # cost otherwise — the rule book's 15 formulas are the same objects
        # on every verify_controller call.
        self._model_fingerprints: dict = {}
        self._formula_keys: dict = {}
        self._fingerprint_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def check(
        self, kripke: KripkeStructure, specification: Formula | str, *, name: str | None = None
    ) -> VerificationResult:
        """Check one LTL specification against a Kripke structure.

        ``name`` optionally labels the specification in trace spans (the
        rule-book name Φ1…Φ15); it defaults to the formula's text when
        tracing is enabled and is never computed otherwise.
        """
        formula = parse_ltl(specification) if isinstance(specification, str) else specification
        spec_label = self._spec_label(formula, name)
        if not self.use_fastpath:
            return self._check_naive(kripke, formula, spec_label)
        kripke.validate()
        compiled = fastpath.compile_kripke(kripke)
        return self._check_compiled(lambda: compiled, formula, spec_label, None)

    def check_all(
        self, kripke: KripkeStructure, specifications: Iterable, *, spec_names: Iterable | None = None
    ) -> VerificationReport:
        """Check a batch of specifications and return a combined report.

        ``spec_names`` optionally supplies one trace label per specification
        (same order); unnamed specs are labelled by their formula text when
        tracing is enabled.  The fast path compiles the structure to integers
        once and reuses it for every specification in the batch.
        """
        specs = list(specifications)
        names = list(spec_names) if spec_names is not None else [None] * len(specs)
        if not self.use_fastpath:
            results = tuple(self.check(kripke, spec, name=name) for spec, name in zip(specs, names))
            return VerificationReport(results)
        kripke.validate()
        compiled = fastpath.compile_kripke(kripke)
        return self._report_for(lambda: compiled, specs, names, None)

    def verify_controller(
        self,
        model: TransitionSystem,
        controller: FSAController,
        specifications: Iterable,
        *,
        restart_on_termination: bool = True,
        spec_names: Iterable | None = None,
    ) -> VerificationReport:
        """``M ⊗ C |= Φ_i`` for every Φ_i: the feedback primitive of DPO-AF.

        ``restart_on_termination`` keeps the transition relation total after
        the controller's final step (the paper's SMV default case); see
        :func:`repro.automata.product.build_product`.  ``spec_names``
        optionally labels each specification's trace spans.

        On the fast path the product is compiled directly into integer space
        (never materializing the intermediate Kripke structure), results are
        cached under the (model, controller, restart, spec) fingerprint, and —
        when every specification hits that cache — the product is not rebuilt
        at all.
        """
        specs = list(specifications)
        names = list(spec_names) if spec_names is not None else [None] * len(specs)
        if not self.use_fastpath:
            with obs.span(
                "mc.build_model", category="modelcheck", controller=controller.name
            ):
                product = build_product(
                    model, controller, restart_on_termination=restart_on_termination
                )
            return self.check_all(product, specs, spec_names=names)

        scope = None
        if self._results is not None:
            scope = (
                self._model_fingerprint(model),
                fastpath.controller_fingerprint(controller),
                restart_on_termination,
            )

        compiled_box: list = []

        def compiled():
            if not compiled_box:
                with obs.span(
                    "mc.build_model", category="modelcheck", controller=controller.name
                ):
                    compiled_box.append(
                        fastpath.compile_product(
                            model, controller, restart_on_termination=restart_on_termination
                        )
                    )
            return compiled_box[0]

        return self._report_for(compiled, specs, names, scope)

    def check_at_least(
        self,
        kripke: KripkeStructure,
        specifications: Iterable,
        threshold: int,
        *,
        spec_names: Iterable | None = None,
    ) -> bool:
        """Early-exit batch check: do at least ``threshold`` specs hold?

        Stops as soon as the answer is decided — after enough satisfied specs,
        or once the remaining specs cannot reach the threshold — so callers
        that only need score *ordering* (is this response at least as good as
        that one?) skip the tail of the rule book.  Exact counts require
        :meth:`check_all`.
        """
        specs = list(specifications)
        names = list(spec_names) if spec_names is not None else [None] * len(specs)
        if self.use_fastpath:
            kripke.validate()
            compiled = fastpath.compile_kripke(kripke)
            check_one = lambda spec, label: self._check_compiled(  # noqa: E731
                lambda: compiled, spec, label, None
            )
        else:
            check_one = lambda spec, label: self._check_naive(kripke, spec, label)  # noqa: E731
        return self._count_at_least(check_one, specs, names, threshold)

    def verify_controller_at_least(
        self,
        model: TransitionSystem,
        controller: FSAController,
        specifications: Iterable,
        threshold: int,
        *,
        restart_on_termination: bool = True,
        spec_names: Iterable | None = None,
    ) -> bool:
        """Early-exit :meth:`verify_controller`: at least ``threshold`` specs?

        The ordering-only mode of the ROADMAP's hot-path item: rankers
        comparing two responses need "is one score ≥ k", not the exact count,
        and this stops verifying as soon as that is decided.  Verified specs
        still populate the result cache, so a later exact
        :meth:`verify_controller` pays only for the skipped tail.
        """
        specs = list(specifications)
        names = list(spec_names) if spec_names is not None else [None] * len(specs)
        if not self.use_fastpath:
            product = build_product(
                model, controller, restart_on_termination=restart_on_termination
            )
            check_one = lambda spec, label: self._check_naive(product, spec, label)  # noqa: E731
            return self._count_at_least(check_one, specs, names, threshold)

        scope = None
        if self._results is not None:
            scope = (
                self._model_fingerprint(model),
                fastpath.controller_fingerprint(controller),
                restart_on_termination,
            )
        compiled_box: list = []

        def compiled():
            if not compiled_box:
                with obs.span(
                    "mc.build_model", category="modelcheck", controller=controller.name
                ):
                    compiled_box.append(
                        fastpath.compile_product(
                            model, controller, restart_on_termination=restart_on_termination
                        )
                    )
            return compiled_box[0]

        check_one = lambda spec, label: self._check_compiled(compiled, spec, label, scope)  # noqa: E731
        return self._count_at_least(check_one, specs, names, threshold)

    # ------------------------------------------------------------------ #
    # Fast path internals
    # ------------------------------------------------------------------ #
    def _spec_label(self, formula: Formula, name: str | None) -> str:
        return name if name is not None else (str(formula) if obs.tracing_enabled() else "")

    def _report_for(self, compiled, specs, names, scope) -> VerificationReport:
        results = []
        for spec, name in zip(specs, names):
            formula = parse_ltl(spec) if isinstance(spec, str) else spec
            results.append(
                self._check_compiled(compiled, formula, self._spec_label(formula, name), scope)
            )
        return VerificationReport(tuple(results))

    def _count_at_least(self, check_one, specs, names, threshold: int) -> bool:
        satisfied = 0
        for i, (spec, name) in enumerate(zip(specs, names)):
            if satisfied >= threshold:
                return True
            if satisfied + (len(specs) - i) < threshold:
                return False
            formula = parse_ltl(spec) if isinstance(spec, str) else spec
            if check_one(formula, self._spec_label(formula, name)).holds:
                satisfied += 1
        return satisfied >= threshold

    def _formula_entry(self, formula: Formula) -> tuple:
        """``(negated, memo_key, spec_key)`` for a formula, interned by identity."""
        with self._fingerprint_lock:
            entry = self._formula_keys.get(id(formula))
            if entry is not None and entry[0] is formula:
                return entry[1]
        negated = Not(formula)
        keys = (negated, formula_key(negated), formula_key(formula))
        with self._fingerprint_lock:
            self._formula_keys[id(formula)] = (formula, keys)
        return keys

    def _check_compiled(self, compiled, formula, spec_label, scope) -> VerificationResult:
        """One fast-path check; ``compiled`` is a thunk so full cache hits skip it."""
        spec_key = self._formula_entry(formula)[2]
        if scope is not None:
            hit = self._results.get(scope + (spec_key,))
            if hit is not None:
                with obs.span("mc.check_cached", category="modelcheck", spec=spec_label):
                    pass
                self._emit_cache_counters()
                return hit
        automaton = self._construct_automaton(formula, spec_label)
        structure = compiled()
        if automaton.is_empty:
            # ¬Φ has an empty language, so no behaviour can violate Φ: the
            # product would be empty and the spec holds for any structure.
            result = VerificationResult(
                formula,
                True,
                None,
                {"product_states": 0, "nba_states": 0, "kripke_states": structure.num_states},
            )
        else:
            lasso, stats = fastpath.find_accepting_lasso(
                structure,
                automaton,
                spec_label=spec_label,
                max_product_states=self.max_product_states,
            )
            if lasso is None:
                result = VerificationResult(formula, True, None, stats)
            else:
                prefix_states, cycle_states = lasso
                result = VerificationResult(
                    formula,
                    False,
                    make_counterexample(prefix_states, cycle_states, structure.label_of),
                    stats,
                )
        if scope is not None:
            self._results.put(scope + (spec_key,), result)
        return result

    def _construct_automaton(self, formula: Formula, spec_label: str):
        """The memoized pruned NBA for ``¬formula``, with distinct hit/miss spans."""
        negated, key, _ = self._formula_entry(formula)
        memo = self._memo
        cached = memo.lookup(key)
        if cached is not None:
            with obs.span(
                "mc.construct_cached", category="modelcheck", spec=spec_label, source="memory"
            ):
                pass
            self._emit_memo_counters()
            return cached
        if memo.has_persisted(key):
            with obs.span(
                "mc.construct_cached", category="modelcheck", spec=spec_label, source="disk"
            ):
                cached = memo.load_persisted(key)
            if cached is not None:
                self._emit_memo_counters()
                return cached
        with obs.span("mc.construct", category="modelcheck", spec=spec_label):
            cached = memo.translate_and_store(key, negated, name=f"neg({formula})")
        self._emit_memo_counters()
        return cached

    def _emit_memo_counters(self) -> None:
        if obs.tracing_enabled():
            stats = self._memo.stats()
            obs.counter("mc.memo.hits", stats["hits_memory"] + stats["hits_disk"])
            obs.counter("mc.memo.misses", stats["misses"])

    def _emit_cache_counters(self) -> None:
        if obs.tracing_enabled() and self._results is not None:
            stats = self._results.stats()
            obs.counter("mc.result_cache.hits", stats["hits"])
            obs.counter("mc.result_cache.misses", stats["misses"])

    def _model_fingerprint(self, model: TransitionSystem) -> str:
        with self._fingerprint_lock:
            entry = self._model_fingerprints.get(id(model))
            if entry is not None and entry[0] is model:
                return entry[1]
        digest = fastpath.model_fingerprint(model)
        with self._fingerprint_lock:
            self._model_fingerprints[id(model)] = (model, digest)
        return digest

    # ------------------------------------------------------------------ #
    # Naive path (the frozen differential-testing reference)
    # ------------------------------------------------------------------ #
    def _check_naive(self, kripke: KripkeStructure, formula: Formula, spec_label: str) -> VerificationResult:
        with obs.span("mc.construct", category="modelcheck", spec=spec_label):
            negated_automaton = ltl_to_buchi(Not(formula), name=f"neg({formula})")
        lasso, stats = self._find_accepting_lasso(kripke, negated_automaton, spec_label=spec_label)
        if lasso is None:
            return VerificationResult(formula, True, None, stats)
        prefix_states, cycle_states = lasso
        counterexample = make_counterexample(
            [s for s, _ in prefix_states],
            [s for s, _ in cycle_states],
            kripke.label,
        )
        return VerificationResult(formula, False, counterexample, stats)

    # ------------------------------------------------------------------ #
    # Emptiness check of KS × NBA
    # ------------------------------------------------------------------ #
    def _find_accepting_lasso(
        self, kripke: KripkeStructure, nba: BuchiAutomaton, *, spec_label: str = ""
    ):
        """Search the synchronous product for a reachable accepting cycle.

        Returns ``((prefix, cycle), stats)`` where prefix/cycle are lists of
        product states ``(kripke_state, nba_state)``; ``(None, stats)`` when the
        product language is empty (the specification holds).  ``spec_label``
        names the specification in the ``mc.product`` / ``mc.check`` spans.
        """
        kripke.validate()
        nba.validate()

        # Pre-index NBA transitions by source for fast lookup.
        nba_out: dict = {}
        for t in nba.transitions:
            nba_out.setdefault(t.source, []).append(t)

        def nba_successors(b, symbol):
            return [t.target for t in nba_out.get(b, ()) if t.constraint.satisfied_by(symbol)]

        # Initial product states: (s0, b) with b reachable from an NBA initial
        # state by reading L(s0).
        initial_product: list = []
        for s0 in kripke.initial_states:
            label = kripke.label(s0)
            for b0 in nba.initial_states:
                for b in nba_successors(b0, label):
                    initial_product.append((s0, b))

        successors_cache: dict = {}

        def product_successors(state):
            if state in successors_cache:
                return successors_cache[state]
            s, b = state
            out = []
            for s_next in kripke.successors(s):
                label_next = kripke.label(s_next)
                for b_next in nba_successors(b, label_next):
                    out.append((s_next, b_next))
            successors_cache[state] = out
            return out

        # Forward reachability (BFS) from initial product states.
        with obs.span("mc.product", category="modelcheck", spec=spec_label):
            parents: dict = {}
            order: list = []
            queue = deque()
            for init in initial_product:
                if init not in parents:
                    parents[init] = None
                    queue.append(init)
            while queue:
                state = queue.popleft()
                order.append(state)
                if len(order) > self.max_product_states:
                    raise VerificationError(
                        f"product exceeded {self.max_product_states} states; "
                        "increase max_product_states or simplify the specification"
                    )
                for succ in product_successors(state):
                    if succ not in parents:
                        parents[succ] = state
                        queue.append(succ)

        stats = {
            "product_states": len(order),
            "nba_states": nba.num_states,
            "kripke_states": kripke.num_states,
        }

        with obs.span("mc.check", category="modelcheck", spec=spec_label):
            accepting = [state for state in order if state[1] in nba.accepting_states]

            # For each reachable accepting state, look for a cycle back to it.
            for target in accepting:
                cycle = self._find_cycle(target, product_successors)
                if cycle is not None:
                    prefix = self._path_from_parents(parents, target)
                    prefix_pairs = prefix[:-1]  # the target itself starts the cycle
                    return (prefix_pairs, cycle), stats
            return None, stats

    @staticmethod
    def _find_cycle(target, product_successors):
        """BFS from the successors of ``target`` back to ``target``; returns the cycle."""
        parents: dict = {}
        queue = deque()
        for succ in product_successors(target):
            if succ == target:
                return [target]
            if succ not in parents:
                parents[succ] = None
                queue.append(succ)
        while queue:
            state = queue.popleft()
            for succ in product_successors(state):
                if succ == target:
                    # Reconstruct target -> ... -> state -> target as a cycle.
                    path = [state]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    return [target] + list(reversed(path))
                if succ not in parents:
                    parents[succ] = state
                    queue.append(succ)
        return None

    @staticmethod
    def _path_from_parents(parents: Mapping, target) -> list:
        path = [target]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        return list(reversed(path))


class NaiveModelChecker(ModelChecker):
    """The unoptimized reference checker: no memo, no pruning, no caches.

    Exactly the pre-fastpath algorithm (``ModelChecker(use_fastpath=False)``),
    named so the differential suite — and anyone debugging a suspected
    fast-path divergence — can reach for it explicitly.  Every optimization
    in :mod:`repro.modelcheck.fastpath` is held to this checker's verdicts.
    """

    def __init__(self, max_product_states: int = 200_000):
        super().__init__(max_product_states, use_fastpath=False, result_cache_size=0)


def verify_controller_against_specs(
    model: TransitionSystem,
    controller: FSAController,
    specifications: Iterable,
    *,
    checker: ModelChecker | None = None,
) -> VerificationReport:
    """Module-level convenience wrapper around :meth:`ModelChecker.verify_controller`."""
    checker = checker or ModelChecker()
    return checker.verify_controller(model, controller, specifications)
