"""Automata-theoretic LTL model checker (the NuSMV substitute).

Checks ``M ⊗ C |= Φ`` (Eq. 1 of the paper) for an explicit-state Kripke
structure: build a Büchi automaton for ``¬Φ``, form the synchronous product
with the Kripke structure, and search for a reachable accepting cycle
(a *lasso*).  If one exists the specification is violated and the lasso is
returned as a counter-example; otherwise the specification holds for every
possible initial state, exactly the verdict NuSMV would report.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs import tracer as obs
from repro.automata.buchi import BuchiAutomaton
from repro.automata.fsa import FSAController
from repro.automata.kripke import KripkeStructure
from repro.automata.product import build_product
from repro.automata.transition_system import TransitionSystem
from repro.errors import VerificationError
from repro.logic.ast import Formula, Not
from repro.logic.ltl2buchi import ltl_to_buchi
from repro.logic.parser import parse_ltl
from repro.modelcheck.counterexample import Counterexample, make_counterexample


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of checking one specification against one structure."""

    specification: Formula
    holds: bool
    counterexample: Counterexample | None = None
    statistics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        verdict = "satisfied" if self.holds else "VIOLATED"
        text = f"[{verdict}] {self.specification}"
        if self.counterexample is not None:
            text += "\n" + self.counterexample.describe()
        return text


@dataclass(frozen=True)
class VerificationReport:
    """Results for a batch of specifications (one controller / one structure)."""

    results: tuple

    @property
    def num_specifications(self) -> int:
        return len(self.results)

    @property
    def num_satisfied(self) -> int:
        return sum(1 for r in self.results if r.holds)

    @property
    def satisfaction_ratio(self) -> float:
        if not self.results:
            return 0.0
        return self.num_satisfied / self.num_specifications

    @property
    def violated(self) -> list:
        return [r for r in self.results if not r.holds]

    def describe(self) -> str:
        lines = [f"{self.num_satisfied}/{self.num_specifications} specifications satisfied"]
        lines.extend(r.describe().splitlines()[0] for r in self.results)
        return "\n".join(lines)


class ModelChecker:
    """Explicit-state LTL model checker over Kripke structures.

    Parameters
    ----------
    max_product_states:
        Safety limit on the size of the Kripke × Büchi product; exceeded sizes
        raise :class:`~repro.errors.VerificationError` rather than hanging.
    """

    def __init__(self, max_product_states: int = 200_000):
        self.max_product_states = max_product_states

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def check(
        self, kripke: KripkeStructure, specification: Formula | str, *, name: str | None = None
    ) -> VerificationResult:
        """Check one LTL specification against a Kripke structure.

        ``name`` optionally labels the specification in trace spans (the
        rule-book name Φ1…Φ15); it defaults to the formula's text when
        tracing is enabled and is never computed otherwise.
        """
        formula = parse_ltl(specification) if isinstance(specification, str) else specification
        spec_label = name if name is not None else (str(formula) if obs.tracing_enabled() else "")
        with obs.span("mc.construct", category="modelcheck", spec=spec_label):
            negated_automaton = ltl_to_buchi(Not(formula), name=f"neg({formula})")
        lasso, stats = self._find_accepting_lasso(kripke, negated_automaton, spec_label=spec_label)
        if lasso is None:
            return VerificationResult(formula, True, None, stats)
        prefix_states, cycle_states = lasso
        counterexample = make_counterexample(
            [s for s, _ in prefix_states],
            [s for s, _ in cycle_states],
            kripke.label,
        )
        return VerificationResult(formula, False, counterexample, stats)

    def check_all(
        self, kripke: KripkeStructure, specifications: Iterable, *, spec_names: Iterable | None = None
    ) -> VerificationReport:
        """Check a batch of specifications and return a combined report.

        ``spec_names`` optionally supplies one trace label per specification
        (same order); unnamed specs are labelled by their formula text when
        tracing is enabled.
        """
        specs = list(specifications)
        names = list(spec_names) if spec_names is not None else [None] * len(specs)
        results = tuple(self.check(kripke, spec, name=name) for spec, name in zip(specs, names))
        return VerificationReport(results)

    def verify_controller(
        self,
        model: TransitionSystem,
        controller: FSAController,
        specifications: Iterable,
        *,
        restart_on_termination: bool = True,
        spec_names: Iterable | None = None,
    ) -> VerificationReport:
        """``M ⊗ C |= Φ_i`` for every Φ_i: the feedback primitive of DPO-AF.

        ``restart_on_termination`` keeps the transition relation total after
        the controller's final step (the paper's SMV default case); see
        :func:`repro.automata.product.build_product`.  ``spec_names``
        optionally labels each specification's trace spans.
        """
        with obs.span(
            "mc.build_model", category="modelcheck", controller=controller.name
        ):
            product = build_product(
                model, controller, restart_on_termination=restart_on_termination
            )
        return self.check_all(product, specifications, spec_names=spec_names)

    # ------------------------------------------------------------------ #
    # Emptiness check of KS × NBA
    # ------------------------------------------------------------------ #
    def _find_accepting_lasso(
        self, kripke: KripkeStructure, nba: BuchiAutomaton, *, spec_label: str = ""
    ):
        """Search the synchronous product for a reachable accepting cycle.

        Returns ``((prefix, cycle), stats)`` where prefix/cycle are lists of
        product states ``(kripke_state, nba_state)``; ``(None, stats)`` when the
        product language is empty (the specification holds).  ``spec_label``
        names the specification in the ``mc.product`` / ``mc.check`` spans.
        """
        kripke.validate()
        nba.validate()

        # Pre-index NBA transitions by source for fast lookup.
        nba_out: dict = {}
        for t in nba.transitions:
            nba_out.setdefault(t.source, []).append(t)

        def nba_successors(b, symbol):
            return [t.target for t in nba_out.get(b, ()) if t.constraint.satisfied_by(symbol)]

        # Initial product states: (s0, b) with b reachable from an NBA initial
        # state by reading L(s0).
        initial_product: list = []
        for s0 in kripke.initial_states:
            label = kripke.label(s0)
            for b0 in nba.initial_states:
                for b in nba_successors(b0, label):
                    initial_product.append((s0, b))

        successors_cache: dict = {}

        def product_successors(state):
            if state in successors_cache:
                return successors_cache[state]
            s, b = state
            out = []
            for s_next in kripke.successors(s):
                label_next = kripke.label(s_next)
                for b_next in nba_successors(b, label_next):
                    out.append((s_next, b_next))
            successors_cache[state] = out
            return out

        # Forward reachability (BFS) from initial product states.
        with obs.span("mc.product", category="modelcheck", spec=spec_label):
            parents: dict = {}
            order: list = []
            queue = deque()
            for init in initial_product:
                if init not in parents:
                    parents[init] = None
                    queue.append(init)
            while queue:
                state = queue.popleft()
                order.append(state)
                if len(order) > self.max_product_states:
                    raise VerificationError(
                        f"product exceeded {self.max_product_states} states; "
                        "increase max_product_states or simplify the specification"
                    )
                for succ in product_successors(state):
                    if succ not in parents:
                        parents[succ] = state
                        queue.append(succ)

        stats = {
            "product_states": len(order),
            "nba_states": nba.num_states,
            "kripke_states": kripke.num_states,
        }

        with obs.span("mc.check", category="modelcheck", spec=spec_label):
            accepting = [state for state in order if state[1] in nba.accepting_states]

            # For each reachable accepting state, look for a cycle back to it.
            for target in accepting:
                cycle = self._find_cycle(target, product_successors)
                if cycle is not None:
                    prefix = self._path_from_parents(parents, target)
                    prefix_pairs = prefix[:-1]  # the target itself starts the cycle
                    return (prefix_pairs, cycle), stats
            return None, stats

    @staticmethod
    def _find_cycle(target, product_successors):
        """BFS from the successors of ``target`` back to ``target``; returns the cycle."""
        parents: dict = {}
        queue = deque()
        for succ in product_successors(target):
            if succ == target:
                return [target]
            if succ not in parents:
                parents[succ] = None
                queue.append(succ)
        while queue:
            state = queue.popleft()
            for succ in product_successors(state):
                if succ == target:
                    # Reconstruct target -> ... -> state -> target as a cycle.
                    path = [state]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    return [target] + list(reversed(path))
                if succ not in parents:
                    parents[succ] = state
                    queue.append(succ)
        return None

    @staticmethod
    def _path_from_parents(parents: Mapping, target) -> list:
        path = [target]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        return list(reversed(path))


def verify_controller_against_specs(
    model: TransitionSystem,
    controller: FSAController,
    specifications: Iterable,
    *,
    checker: ModelChecker | None = None,
) -> VerificationReport:
    """Module-level convenience wrapper around :meth:`ModelChecker.verify_controller`."""
    checker = checker or ModelChecker()
    return checker.verify_controller(model, controller, specifications)
