"""Model checking: the NuSMV-substitute LTL checker and the SMV-like DSL.

Two checker classes share one verdict semantics: :class:`ModelChecker` (the
optimized default — memoized Büchi construction, automaton pruning, compiled
products, result caching; see :mod:`repro.modelcheck.fastpath` and
``docs/modelcheck.md``) and :class:`NaiveModelChecker` (the frozen reference
implementation the differential test suite compares against).
"""

from repro.modelcheck.checker import (
    ModelChecker,
    NaiveModelChecker,
    VerificationReport,
    VerificationResult,
    verify_controller_against_specs,
)
from repro.modelcheck.counterexample import Counterexample, CounterexampleStep, make_counterexample
from repro.modelcheck.fastpath import (
    BuchiMemo,
    CachedAutomaton,
    ResultCache,
    automata_memo,
    automaton_accepts_lasso,
    configure_automata_cache,
    controller_fingerprint,
    model_fingerprint,
    prune_automaton,
)

__all__ = [
    "ModelChecker",
    "NaiveModelChecker",
    "VerificationReport",
    "VerificationResult",
    "verify_controller_against_specs",
    "Counterexample",
    "CounterexampleStep",
    "make_counterexample",
    "BuchiMemo",
    "CachedAutomaton",
    "ResultCache",
    "automata_memo",
    "automaton_accepts_lasso",
    "configure_automata_cache",
    "controller_fingerprint",
    "model_fingerprint",
    "prune_automaton",
]
