"""Model checking: the NuSMV-substitute LTL checker and the SMV-like DSL."""

from repro.modelcheck.checker import (
    ModelChecker,
    VerificationReport,
    VerificationResult,
    verify_controller_against_specs,
)
from repro.modelcheck.counterexample import Counterexample, CounterexampleStep, make_counterexample

__all__ = [
    "ModelChecker",
    "VerificationReport",
    "VerificationResult",
    "verify_controller_against_specs",
    "Counterexample",
    "CounterexampleStep",
    "make_counterexample",
]
