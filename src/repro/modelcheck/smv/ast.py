"""AST for the NuSMV-like module language used in the paper's Appendix D."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class VarDecl:
    """A variable declaration: boolean (``values is None``) or an enumeration."""

    name: str
    values: tuple | None = None  # None => boolean

    @property
    def is_boolean(self) -> bool:
        return self.values is None

    @property
    def domain(self) -> tuple:
        return (False, True) if self.is_boolean else tuple(self.values)


@dataclass(frozen=True)
class InitAssign:
    """``init(var) := value;`` from an ASSIGN section."""

    variable: str
    value: object


@dataclass(frozen=True)
class CaseBranch:
    """``condition : next(var) = value;`` inside a TRANS case block.

    ``condition`` is a guard-expression string over the module's variables
    (``var`` for booleans, ``var = value`` comparisons are normalised to a
    pseudo-atom ``var__eq__value`` by the compiler).
    """

    condition: str
    variable: str
    value: object


@dataclass(frozen=True)
class LTLSpec:
    """``LTLSPEC NAME name := formula;``"""

    name: str
    formula: str


@dataclass
class SMVModule:
    """One ``MODULE``: variables, initial assignments, TRANS branches, specs."""

    name: str
    variables: list = field(default_factory=list)
    init_assigns: list = field(default_factory=list)
    trans_branches: list = field(default_factory=list)
    specs: list = field(default_factory=list)

    def variable(self, name: str) -> VarDecl | None:
        for decl in self.variables:
            if decl.name == name:
                return decl
        return None

    def boolean_variables(self) -> list:
        return [v for v in self.variables if v.is_boolean]

    def enum_variables(self) -> list:
        return [v for v in self.variables if not v.is_boolean]


@dataclass
class SMVProgram:
    """A parsed SMV file: several modules plus file-level LTL specifications."""

    modules: list = field(default_factory=list)
    specs: list = field(default_factory=list)

    def module(self, name: str) -> SMVModule | None:
        for mod in self.modules:
            if mod.name == name:
                return mod
        return None
