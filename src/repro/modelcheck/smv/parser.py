"""Parser for the NuSMV-like subset used by the paper (Appendix D).

Supported constructs::

    MODULE name
    VAR
        flag : boolean;
        action : {stop, turn_left, turn_right, go_straight};
    ASSIGN
        init(action) := stop;
    TRANS
        case
            !flag : next(action) = stop;
            flag & other : next(action) = turn_left;
            TRUE : next(action) = stop;
        esac;
    LTLSPEC NAME phi_1 := G( pedestrian -> F action=stop );

The parser is line-oriented and intentionally forgiving about whitespace; it
is not a full NuSMV front end, only enough to round-trip the paper's modules.
"""

from __future__ import annotations

import re

from repro.errors import SMVSyntaxError
from repro.modelcheck.smv.ast import CaseBranch, InitAssign, LTLSpec, SMVModule, SMVProgram

_MODULE_RE = re.compile(r"^\s*MODULE\s+(\w+)\s*$", re.IGNORECASE)
_BOOL_VAR_RE = re.compile(r"^\s*(\w+)\s*:\s*boolean\s*;\s*$", re.IGNORECASE)
_ENUM_VAR_RE = re.compile(r"^\s*(\w+)\s*:\s*\{([^}]*)\}\s*;\s*$")
_INIT_RE = re.compile(r"^\s*init\s*\(\s*(\w+)\s*\)\s*:=\s*([\w]+)\s*;\s*$", re.IGNORECASE)
_CASE_BRANCH_RE = re.compile(r"^\s*(.+?)\s*:\s*next\s*\(\s*(\w+)\s*\)\s*=\s*([\w]+)\s*;?\s*$")
_ASSIGN_NEXT_CASE_START_RE = re.compile(r"^\s*next\s*\(\s*(\w+)\s*\)\s*:=\s*$", re.IGNORECASE)
_ASSIGN_CASE_BRANCH_RE = re.compile(r"^\s*(.+?)\s*:\s*([\w{},\s]+?)\s*;\s*$")
_LTLSPEC_RE = re.compile(r"^\s*LTLSPEC(?:\s+NAME\s+(\w+)\s*:?=)?\s*(.*)$", re.IGNORECASE)

from repro.modelcheck.smv.ast import VarDecl  # noqa: E402  (kept close to usage)


def parse_smv(text: str) -> SMVProgram:
    """Parse an SMV-like source string into an :class:`SMVProgram`."""
    program = SMVProgram()
    current: SMVModule | None = None
    section: str | None = None
    in_case = False
    assign_case_var: str | None = None
    pending_spec: list[str] | None = None
    pending_spec_name: str | None = None

    def finish_spec() -> None:
        nonlocal pending_spec, pending_spec_name
        if pending_spec is not None:
            formula = " ".join(pending_spec).rstrip(";").strip()
            spec = LTLSpec(pending_spec_name or f"spec_{len(program.specs) + 1}", formula)
            program.specs.append(spec)
            if current is not None:
                current.specs.append(spec)
            pending_spec = None
            pending_spec_name = None

    for raw_line in text.splitlines():
        line = raw_line.split("--")[0].rstrip()  # strip NuSMV comments
        if not line.strip():
            continue

        if pending_spec is not None:
            # Multi-line LTLSPEC continues until a line ending with ';'.
            pending_spec.append(line.strip())
            if line.strip().endswith(";"):
                finish_spec()
            continue

        module_match = _MODULE_RE.match(line)
        if module_match:
            finish_spec()
            current = SMVModule(name=module_match.group(1))
            program.modules.append(current)
            section = None
            in_case = False
            continue

        upper = line.strip().upper()
        if upper == "VAR":
            section = "VAR"
            continue
        if upper == "ASSIGN":
            section = "ASSIGN"
            continue
        if upper == "TRANS":
            section = "TRANS"
            continue
        if upper == "CASE":
            in_case = True
            continue
        if upper in {"ESAC;", "ESAC"}:
            in_case = False
            assign_case_var = None
            continue

        spec_match = _LTLSPEC_RE.match(line)
        if spec_match:
            pending_spec_name = spec_match.group(1)
            remainder = spec_match.group(2).strip()
            pending_spec = [remainder] if remainder else []
            if remainder.endswith(";"):
                finish_spec()
            continue

        if current is None:
            raise SMVSyntaxError(f"statement outside of a MODULE: {line!r}")

        if section == "VAR":
            bool_match = _BOOL_VAR_RE.match(line)
            if bool_match:
                current.variables.append(VarDecl(bool_match.group(1)))
                continue
            enum_match = _ENUM_VAR_RE.match(line)
            if enum_match:
                values = tuple(v.strip() for v in enum_match.group(2).split(",") if v.strip())
                current.variables.append(VarDecl(enum_match.group(1), values))
                continue
            raise SMVSyntaxError(f"cannot parse VAR declaration: {line!r}")

        if section == "ASSIGN":
            init_match = _INIT_RE.match(line)
            if init_match:
                current.init_assigns.append(InitAssign(init_match.group(1), _coerce(init_match.group(2))))
                continue
            next_case = _ASSIGN_NEXT_CASE_START_RE.match(line)
            if next_case:
                assign_case_var = next_case.group(1)
                continue
            if in_case and assign_case_var is not None:
                branch = _ASSIGN_CASE_BRANCH_RE.match(line)
                if branch:
                    for value in _split_value_set(branch.group(2)):
                        current.trans_branches.append(
                            CaseBranch(branch.group(1).strip(), assign_case_var, _coerce(value))
                        )
                    continue
            raise SMVSyntaxError(f"cannot parse ASSIGN statement: {line!r}")

        if section == "TRANS":
            if in_case:
                branch = _CASE_BRANCH_RE.match(line)
                if branch:
                    current.trans_branches.append(
                        CaseBranch(branch.group(1).strip(), branch.group(2), _coerce(branch.group(3)))
                    )
                    continue
            raise SMVSyntaxError(f"cannot parse TRANS statement: {line!r}")

        raise SMVSyntaxError(f"statement outside of a recognised section: {line!r}")

    finish_spec()
    return program


def _coerce(value: str):
    value = value.strip()
    if value.upper() == "TRUE":
        return True
    if value.upper() == "FALSE":
        return False
    return value


def _split_value_set(text: str) -> list:
    """``{a, b}`` → ``[a, b]``; a plain value → ``[value]``."""
    text = text.strip()
    if text.startswith("{") and text.endswith("}"):
        return [v.strip() for v in text[1:-1].split(",") if v.strip()]
    return [text]
