"""Emit SMV-like source text for controllers and specifications.

The paper's Appendix D shows how each controller is rendered as a NuSMV
``MODULE`` whose boolean variables are the environment propositions and whose
enumerated ``action`` variable is driven by a ``TRANS case`` block.  This
emitter reproduces that rendering so a user with a real NuSMV installation can
cross-check our verdicts, and so the SMV parser/compiler can round-trip it.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.fsa import FSAController
from repro.automata.guards import Guard, GuardAnd, GuardAtom, GuardNot, GuardOr, GuardTrue
from repro.logic.ast import Formula


def _guard_to_smv(guard: Guard) -> str:
    """Render a propositional guard in NuSMV's concrete syntax."""
    if isinstance(guard, GuardTrue):
        return "TRUE"
    if isinstance(guard, GuardAtom):
        return guard.name
    if isinstance(guard, GuardNot):
        return f"!({_guard_to_smv(guard.operand)})"
    if isinstance(guard, GuardAnd):
        return " & ".join(f"({_guard_to_smv(op)})" for op in guard.operands)
    if isinstance(guard, GuardOr):
        return " | ".join(f"({_guard_to_smv(op)})" for op in guard.operands)
    return "FALSE"


def _formula_to_smv(formula: Formula) -> str:
    """Render an LTL formula using NuSMV operators (G, F, X, U, &, |, !, ->)."""
    return str(formula)


def controller_to_smv(
    controller: FSAController,
    *,
    propositions: Iterable[str] | None = None,
    actions: Iterable[str] | None = None,
    default_action: str = "stop",
) -> str:
    """Render an FSA controller as a NuSMV ``MODULE`` (Appendix-D style)."""
    props = sorted(set(propositions) if propositions is not None else controller.input_atoms())
    acts = sorted(set(actions) if actions is not None else (controller.actions_used() | {default_action}))
    if default_action not in acts:
        acts.append(default_action)

    lines = [f"MODULE {controller.name.replace(' ', '_')}", "", "VAR"]
    for prop in props:
        lines.append(f"    {prop} : boolean;")
    lines.append(f"    action : {{{', '.join(acts)}}};")
    lines.append("")
    lines.append("ASSIGN")
    lines.append(f"    init(action) := {default_action};")
    lines.append("")
    lines.append("TRANS")
    lines.append("    case")
    for t in controller.transitions:
        action_value = sorted(t.action)[0] if t.action else default_action
        lines.append(f"        {_guard_to_smv(t.guard)} : next(action) = {action_value};")
    lines.append(f"        TRUE : next(action) = {default_action};")
    lines.append("    esac;")
    return "\n".join(lines)


def specifications_to_smv(specifications: Iterable, names: Iterable[str] | None = None) -> str:
    """Render LTL specifications as ``LTLSPEC NAME ... :=`` blocks."""
    specifications = list(specifications)
    if names is None:
        names = [f"phi_{i + 1}" for i in range(len(specifications))]
    lines = []
    for name, spec in zip(names, specifications):
        lines.append(f"LTLSPEC NAME {name} :=")
        lines.append(f"    {_formula_to_smv(spec)};")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def verification_script(model_file: str, spec_names: Iterable[str]) -> str:
    """Render the interactive NuSMV driver script from Appendix D."""
    lines = ["#!NuSMV -source", f"read_model -i {model_file}", "go", ""]
    for i, name in enumerate(spec_names, start=1):
        lines.append(f'check_ltlspec -P "{name}" -o result{i}.txt')
        lines.append("")
    lines.append("quit")
    return "\n".join(lines)
