"""NuSMV-like module language: parser, explicit-state compiler, emitter."""

from repro.modelcheck.smv.ast import CaseBranch, InitAssign, LTLSpec, SMVModule, SMVProgram, VarDecl
from repro.modelcheck.smv.compiler import CompiledModule, compile_module
from repro.modelcheck.smv.emitter import controller_to_smv, specifications_to_smv, verification_script
from repro.modelcheck.smv.parser import parse_smv

__all__ = [
    "CaseBranch",
    "InitAssign",
    "LTLSpec",
    "SMVModule",
    "SMVProgram",
    "VarDecl",
    "CompiledModule",
    "compile_module",
    "controller_to_smv",
    "specifications_to_smv",
    "verification_script",
    "parse_smv",
]
