"""Compile an SMV-like module into an explicit Kripke structure.

Semantics of the supported subset:

* Boolean variables without any ``next``/``TRANS`` constraint are treated as
  free environment inputs: they may change arbitrarily at every step (this is
  exactly how the paper's Appendix-D modules model observations such as
  ``car_from_left``).
* Enumerated variables (typically ``action``) are driven by the TRANS ``case``
  block: the first branch whose condition holds in the *current* state
  determines the allowed ``next`` values (NuSMV's priority-case semantics);
  if no branch matches, the variable may keep any value (non-deterministic).
* ``init(var) := value`` restricts the initial states.

The resulting Kripke state label contains the names of the boolean variables
that are true plus the current value of every enumerated variable (so a spec
can simply mention ``stop`` or ``turn_right`` as an atom, as the paper does).
"""

from __future__ import annotations

from itertools import product as iter_product

from repro.automata.guards import Guard, parse_guard
from repro.automata.kripke import KripkeStructure
from repro.errors import SMVSyntaxError
from repro.modelcheck.smv.ast import SMVModule


def _normalise_condition(condition: str) -> str:
    """Rewrite ``var = value`` and ``action=val`` comparisons into pseudo-atoms.

    The guard parser only understands propositional atoms, so an equality such
    as ``action = turn_left`` is rewritten to the atom ``turn_left`` (the value
    itself is part of the state label).  ``TRUE``/``FALSE`` keywords pass
    through unchanged.
    """
    import re

    def replace(match: "re.Match") -> str:
        return match.group(2)

    text = re.sub(r"(\w+)\s*=\s*(\w+)", replace, condition)
    return text


class CompiledModule:
    """An SMV module compiled to an explicit state space."""

    def __init__(self, module: SMVModule, max_states: int = 20_000):
        self.module = module
        self.max_states = max_states
        self._branch_guards: list[tuple[Guard, str, object]] = []
        for branch in module.trans_branches:
            guard = parse_guard(_normalise_condition(branch.condition))
            self._branch_guards.append((guard, branch.variable, branch.value))

    # ------------------------------------------------------------------ #
    def state_space(self) -> list:
        """Enumerate all variable assignments as dictionaries."""
        names = [v.name for v in self.module.variables]
        domains = [v.domain for v in self.module.variables]
        total = 1
        for domain in domains:
            total *= len(domain)
        if total > self.max_states:
            raise SMVSyntaxError(
                f"module {self.module.name!r} has {total} states which exceeds the "
                f"limit of {self.max_states}; restrict the variable set"
            )
        return [dict(zip(names, values)) for values in iter_product(*domains)]

    def label_of(self, assignment: dict) -> frozenset:
        """Kripke label: true booleans plus values of enumerated variables."""
        label = set()
        for decl in self.module.variables:
            value = assignment[decl.name]
            if decl.is_boolean:
                if value:
                    label.add(decl.name)
            else:
                label.add(str(value))
        return frozenset(label)

    def _constrained_next_values(self, assignment: dict) -> dict:
        """For each case-driven variable, the set of allowed next values."""
        label = self.label_of(assignment)
        allowed: dict = {}
        decided: set = set()
        for guard, variable, value in self._branch_guards:
            if variable in decided:
                continue
            if guard.evaluate(label):
                allowed.setdefault(variable, set()).add(value)
                # NuSMV case blocks are priority-ordered: later branches for the
                # same variable are ignored once one matched — unless several
                # consecutive branches share the same condition text.
                decided.add(variable)
        return allowed

    def is_initial(self, assignment: dict) -> bool:
        for init in self.module.init_assigns:
            if assignment.get(init.variable) != init.value:
                return False
        return True

    def successors(self, assignment: dict) -> list:
        """All assignments reachable in one step under the TRANS semantics."""
        allowed = self._constrained_next_values(assignment)
        names = [v.name for v in self.module.variables]
        domains = []
        for decl in self.module.variables:
            if decl.name in allowed:
                domains.append(sorted(allowed[decl.name], key=str))
            else:
                constrained = any(decl.name == var for _, var, _ in self._branch_guards)
                if constrained:
                    # Case-driven variable with no matching branch: hold or move freely.
                    domains.append(list(decl.domain))
                else:
                    # Free environment input.
                    domains.append(list(decl.domain))
        return [dict(zip(names, values)) for values in iter_product(*domains)]

    # ------------------------------------------------------------------ #
    def to_kripke(self) -> KripkeStructure:
        """Build the full explicit Kripke structure for the module."""
        kripke = KripkeStructure(name=self.module.name)
        assignments = self.state_space()
        keys = [tuple(sorted(a.items(), key=lambda kv: kv[0])) for a in assignments]
        for key, assignment in zip(keys, assignments):
            kripke.add_state(key, self.label_of(assignment), initial=self.is_initial(assignment))
        index = {k: a for k, a in zip(keys, assignments)}
        for key, assignment in index.items():
            for succ in self.successors(assignment):
                succ_key = tuple(sorted(succ.items(), key=lambda kv: kv[0]))
                if succ_key in index:
                    kripke.add_transition(key, succ_key)
        if not kripke.initial_states:
            # No init constraints: every state may start.
            for key in keys:
                kripke.initial_states.add(key)
        kripke.make_total()
        kripke.validate()
        return kripke


def compile_module(module: SMVModule, max_states: int = 20_000) -> KripkeStructure:
    """Compile an :class:`SMVModule` straight to a :class:`KripkeStructure`."""
    return CompiledModule(module, max_states=max_states).to_kripke()
