"""The optimized verification hot path: memoized, pruned, integer-compiled.

Every score the pipeline produces is "how many of the 15 LTL rules hold of
``M ⊗ C``", so :meth:`~repro.modelcheck.checker.ModelChecker.verify_controller`
dominates every cold benchmark.  This module holds the machinery the checker's
fast path (its default) is built from; the naive path — the frozen reference —
lives untouched in :mod:`repro.modelcheck.checker`.

Three independent optimizations compose (see ``docs/modelcheck.md``):

* **Büchi construction memo** (:class:`BuchiMemo`): LTL→NBA translation is
  ~a third of a cold check and the rule book is fixed, so translated (and
  pruned) automata are memoized process-wide, keyed on the *canonical formula
  text* (``str(formula)`` is unambiguous — binary operators parenthesize).
  The memo optionally persists through a
  :class:`~repro.serving.cache.CacheDirectory` shard so worker processes and
  later runs skip translation entirely (:func:`configure_automata_cache`).
* **Automaton pruning** (:func:`prune_automaton`): NBA states that cannot
  reach an accepting state lying on a cycle can never contribute to an
  accepting run; dropping them — and then merging direct-bisimilar states —
  shrinks every product the automaton ever takes part in.  Pruning is
  language-preserving (the fuzz suite spot-checks this on random lassos).
* **Integer compilation** (:func:`compile_kripke` / :func:`compile_product` /
  :func:`find_accepting_lasso`): states, labels and NBA states are interned
  to small integers, the product state ``(s, b)`` becomes the single int
  ``s * m + b``, and emptiness is a BFS plus an iterative Tarjan SCC pass —
  no tuple hashing, no repeated constraint evaluation (per-symbol NBA move
  rows are cached on the :class:`CachedAutomaton`).

A bounded :class:`ResultCache` keyed on (model fingerprint, controller
fingerprint, restart flag, spec key) lets the m sampled responses sharing an
FSA structure skip re-exploration entirely — the "incremental product reuse"
of the ROADMAP.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict, deque
from typing import Sequence

from repro.automata.buchi import BuchiAutomaton, LabelConstraint
from repro.automata.fsa import FSAController
from repro.automata.kripke import KripkeStructure
from repro.automata.operations import (
    backward_reachable,
    cycle_nodes,
)
from repro.automata.product import ProductState
from repro.automata.transition_system import TransitionSystem
from repro.errors import AutomatonError, VerificationError
from repro.logic.ast import Formula
from repro.logic.ltl2buchi import ltl_to_buchi
from repro.obs import tracer as obs

#: Serialization schema of persisted automata; bump on any change to the
#: translation, pruning or payload layout so stale shards are ignored.
FASTPATH_SCHEMA_VERSION = 1


def automata_cache_fingerprint() -> str:
    """Shard identity for the persisted automata memo.

    Includes the library version and the payload schema so a code change that
    could alter translation output invalidates every previously stored
    automaton rather than silently reusing it.
    """
    from repro import __version__

    return json.dumps(
        {"kind": "buchi-memo", "schema": FASTPATH_SCHEMA_VERSION, "version": __version__},
        sort_keys=True,
    )


# ---------------------------------------------------------------------- #
# Automaton pruning
# ---------------------------------------------------------------------- #
def prune_automaton(nba: BuchiAutomaton) -> BuchiAutomaton:
    """Language-preserving shrink of an NBA, states renamed to ``0..n-1``.

    Three steps, each sound for Büchi acceptance:

    1. restrict to states forward-reachable from the initial states;
    2. keep only *useful* states — those that can reach an accepting state
       lying on a cycle (every accepting run visits such a state infinitely
       often, and every state on a path to a useful state is itself useful,
       so reachability is unaffected);
    3. quotient by direct bisimulation (same acceptance flag, same
       ``(constraint, successor-class)`` signature), which preserves the
       accepted language exactly.

    The result's states are consecutive ints assigned in BFS order from the
    initial states — a deterministic, serialization-friendly naming.  An NBA
    with an *empty language* prunes to an automaton with no states at all
    (``num_states == 0``); callers can then skip the product entirely because
    ``L(M ⊗ C) ∩ L(A) = ∅`` holds trivially.
    """
    out: dict = {s: [] for s in nba.states}
    for t in nba.transitions:
        out[t.source].append(t)

    # 1. Forward reachability, BFS in deterministic order.
    initial = sorted(nba.initial_states, key=repr)
    reachable_order: list = []
    seen = set(initial)
    queue = deque(initial)
    while queue:
        s = queue.popleft()
        reachable_order.append(s)
        for t in out[s]:
            if t.target not in seen:
                seen.add(t.target)
                queue.append(t.target)

    succ_map = {s: [t.target for t in out[s] if t.target in seen] for s in reachable_order}

    # 2. Usefulness: can reach an accepting state that lies on a cycle.
    on_cycle = cycle_nodes(reachable_order, succ_map.__getitem__)
    anchors = [s for s in reachable_order if s in nba.accepting_states and s in on_cycle]
    if not anchors:
        return BuchiAutomaton(name=f"{nba.name}_pruned")  # empty language
    useful = backward_reachable(reachable_order, succ_map.__getitem__, anchors)
    kept = [s for s in reachable_order if s in useful]

    # 3. Direct-bisimulation quotient by signature refinement.
    block = {s: (0 if s in nba.accepting_states else 1) for s in kept}
    while True:
        signatures: dict = {}
        new_block: dict = {}
        for s in kept:
            signature = (
                block[s],
                frozenset((t.constraint, block[t.target]) for t in out[s] if t.target in useful),
            )
            if signature not in signatures:
                signatures[signature] = len(signatures)
            new_block[s] = signatures[signature]
        if new_block == block:
            break
        block = new_block

    # Quotient edges, deduplicated, in original transition order.
    quotient_edges: list = []
    edge_seen: set = set()
    quotient_succ: dict = {}
    for s in kept:
        for t in out[s]:
            if t.target not in useful:
                continue
            edge = (block[s], t.constraint, block[t.target])
            if edge not in edge_seen:
                edge_seen.add(edge)
                quotient_edges.append(edge)
                quotient_succ.setdefault(edge[0], []).append(edge[2])

    quotient_initial = []
    for s in kept:
        if s in nba.initial_states and block[s] not in quotient_initial:
            quotient_initial.append(block[s])
    quotient_accepting = {block[s] for s in kept if s in nba.accepting_states}

    # Deterministic rename: BFS over the quotient from the initial classes.
    rename: dict = {}
    queue = deque()
    for b in quotient_initial:
        if b not in rename:
            rename[b] = len(rename)
            queue.append(b)
    while queue:
        b = queue.popleft()
        for b_next in quotient_succ.get(b, ()):
            if b_next not in rename:
                rename[b_next] = len(rename)
                queue.append(b_next)

    pruned = BuchiAutomaton(name=f"{nba.name}_pruned")
    for b, i in rename.items():
        pruned.add_state(i, initial=b in quotient_initial, accepting=b in quotient_accepting)
    for src, constraint, dst in quotient_edges:
        if src in rename and dst in rename:
            pruned.add_transition(rename[src], constraint, rename[dst])
    return pruned


def serialize_automaton(nba: BuchiAutomaton) -> dict:
    """JSON payload for a pruned automaton (int states ``0..n-1``).

    The inverse of :func:`deserialize_automaton`; stored as a
    :class:`~repro.serving.cache.CacheDirectory` shard value by
    :class:`BuchiMemo`.
    """
    return {
        "schema": FASTPATH_SCHEMA_VERSION,
        "states": nba.num_states,
        "initial": sorted(nba.initial_states),
        "accepting": sorted(nba.accepting_states),
        "transitions": [
            [t.source, sorted(t.constraint.positive), sorted(t.constraint.negative), t.target]
            for t in nba.transitions
        ],
    }


def deserialize_automaton(payload) -> BuchiAutomaton | None:
    """Rebuild a pruned automaton from its payload; ``None`` if unusable.

    A payload from a different schema version, or one that is structurally
    malformed, yields ``None`` — the caller falls back to translating from
    scratch, so a stale or corrupt shard can never produce a wrong automaton.
    """
    try:
        if payload["schema"] != FASTPATH_SCHEMA_VERSION:
            return None
        nba = BuchiAutomaton(name="buchi_cached")
        num_states = payload["states"]
        initial = set(payload["initial"])
        accepting = set(payload["accepting"])
        for i in range(num_states):
            nba.add_state(i, initial=i in initial, accepting=i in accepting)
        for src, positive, negative, dst in payload["transitions"]:
            nba.add_transition(
                src, LabelConstraint(frozenset(positive), frozenset(negative)), dst
            )
    except (KeyError, TypeError, ValueError, AutomatonError):
        # Malformed payloads degrade to a fresh translation, never to a
        # wrong automaton.
        return None
    return nba


class CachedAutomaton:
    """A pruned NBA compiled for the emptiness check, as stored in the memo.

    States are ints ``0..num_states-1``.  ``out[b]`` is the tuple of
    ``(constraint, target)`` pairs leaving ``b``; :meth:`row_for` caches the
    per-symbol move row (which targets each state reaches on a given symbol)
    so repeated products over the same scenario labels stop re-evaluating
    constraints.
    """

    def __init__(self, automaton: BuchiAutomaton):
        self.automaton = automaton
        n = automaton.num_states
        rows = [[] for _ in range(n)]
        for t in automaton.transitions:
            rows[t.source].append((t.constraint, t.target))
        self.out = tuple(tuple(row) for row in rows)
        self.initial = tuple(sorted(automaton.initial_states))
        self.accepting = frozenset(automaton.accepting_states)
        self._symbol_rows: dict = {}
        self._rows_lock = threading.Lock()

    @property
    def num_states(self) -> int:
        """Number of NBA states after pruning."""
        return len(self.out)

    @property
    def is_empty(self) -> bool:
        """True when the pruned language is empty: the spec holds trivially."""
        return not self.initial

    def row_for(self, symbol) -> tuple:
        """Per-state successor tuples on ``symbol`` (cached per symbol)."""
        with self._rows_lock:
            row = self._symbol_rows.get(symbol)
            if row is None:
                row = tuple(
                    tuple(
                        dict.fromkeys(
                            target for constraint, target in outs if constraint.satisfied_by(symbol)
                        )
                    )
                    for outs in self.out
                )
                self._symbol_rows[symbol] = row
        return row


# ---------------------------------------------------------------------- #
# Process-wide construction memo
# ---------------------------------------------------------------------- #
class BuchiMemo:
    """Process-wide memo of pruned Büchi automata, keyed on formula text.

    The key is the canonical text of the (already negated) formula —
    ``str(formula)`` is unambiguous because every binary operator is
    parenthesized — so two syntactically identical specs share one
    translation no matter which checker instance asks.  Thread-safe; the
    thread backend shares one checker (and therefore this memo) across its
    workers.

    :meth:`configure_directory` attaches a
    :class:`~repro.serving.cache.CacheDirectory` shard: existing entries are
    preloaded (lazily deserialized on first use), in-memory entries are
    flushed out, and every later translation is written through — so a
    forked worker or a later run starts with the whole rule book already
    translated.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._memory: dict = {}
        self._persisted: dict = {}
        self._directory = None
        self._hits_memory = 0
        self._hits_disk = 0
        self._misses = 0
        self._write_errors = 0

    # ------------------------------------------------------------------ #
    def configure_directory(self, root) -> int:
        """Attach (or with ``None`` detach) a persistence directory.

        Returns the number of serialized automata preloaded from the shard.
        Entries already translated in memory are flushed to the shard so the
        directory converges on the union regardless of configuration order.
        """
        if root is None:
            with self._lock:
                self._directory = None
            return 0
        from repro.serving.cache import CacheDirectory  # deferred: serving sits above modelcheck

        directory = CacheDirectory(root)
        entries = directory.shard_entries(automata_cache_fingerprint())
        with self._lock:
            self._directory = directory
            loaded = 0
            shard_keys = set()
            for key, payload in entries:
                if not isinstance(payload, dict):
                    continue
                shard_keys.add(key)
                if key not in self._persisted:
                    self._persisted[key] = payload
                    loaded += 1
            # Everything translated before the directory attached (its payload
            # is staged in _persisted at translation time) but absent from the
            # shard flushes out now, so the directory converges on the union.
            to_flush = {
                key: payload
                for key, payload in self._persisted.items()
                if key not in shard_keys
            }
        if to_flush:
            self._store(to_flush)
        return loaded

    def lookup(self, key: str):
        """The in-memory :class:`CachedAutomaton` for ``key``, or ``None``."""
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._hits_memory += 1
        return cached

    def has_persisted(self, key: str) -> bool:
        """True when a serialized (not yet deserialized) entry exists for ``key``."""
        with self._lock:
            return key in self._persisted and key not in self._memory

    def load_persisted(self, key: str):
        """Deserialize a persisted entry into memory; ``None`` when unusable."""
        with self._lock:
            payload = self._persisted.get(key)
        automaton = deserialize_automaton(payload) if payload is not None else None
        if automaton is None:
            return None
        cached = CachedAutomaton(automaton)
        with self._lock:
            cached = self._memory.setdefault(key, cached)
            self._hits_disk += 1
        return cached

    def translate_and_store(self, key: str, formula: Formula, *, name: str = "buchi"):
        """Translate + prune ``formula``, memoize under ``key``, write through.

        ``formula`` is the (negated) formula whose language the automaton
        must accept.  The first translation for a key wins; concurrent
        translators converge on the same object.
        """
        pruned = prune_automaton(ltl_to_buchi(formula, name=name))
        cached = CachedAutomaton(pruned)
        payload = serialize_automaton(pruned)
        with self._lock:
            cached = self._memory.setdefault(key, cached)
            self._misses += 1
            self._persisted.setdefault(key, payload)
            directory = self._directory
        if directory is not None:
            self._store({key: payload})
        return cached

    def _store(self, payloads: dict) -> None:
        from repro.serving.cache import FeedbackCache  # deferred: serving sits above modelcheck

        with self._lock:
            directory = self._directory
        if directory is None:
            return
        cache = FeedbackCache(max_entries=max(len(payloads), 1))
        for key, payload in payloads.items():
            cache.put(key, payload)
        try:
            directory.store(automata_cache_fingerprint(), cache)
        except OSError:
            # Persistence is an optimization: a read-only or vanished cache
            # directory must never fail verification itself.
            with self._lock:
                self._write_errors += 1

    def stats(self) -> dict:
        """Hit/miss counters: memory hits, disk hits, misses, write errors."""
        with self._lock:
            return {
                "hits_memory": self._hits_memory,
                "hits_disk": self._hits_disk,
                "misses": self._misses,
                "write_errors": self._write_errors,
                "entries": len(self._memory),
                "persisted": len(self._persisted),
            }

    def clear(self) -> None:
        """Drop every memoized automaton and counter (tests / benchmarks)."""
        with self._lock:
            self._memory.clear()
            self._persisted.clear()
            self._hits_memory = self._hits_disk = self._misses = self._write_errors = 0


_GLOBAL_MEMO = BuchiMemo()


def automata_memo() -> BuchiMemo:
    """The process-wide :class:`BuchiMemo` every default checker shares."""
    return _GLOBAL_MEMO


def configure_automata_cache(root) -> int:
    """Point the process-wide memo at a persistence directory (``None`` detaches).

    This is what :class:`~repro.serving.config.ServingConfig.automata_cache_dir`
    calls — in the parent service at construction time and in every forked
    worker's initializer — so the fixed rule book is translated once per
    *cache directory lifetime* rather than once per process.  Returns the
    number of preloaded automata.
    """
    return _GLOBAL_MEMO.configure_directory(root)


# ---------------------------------------------------------------------- #
# Integer-compiled structures
# ---------------------------------------------------------------------- #
class CompiledStructure:
    """A Kripke structure interned to integers for the emptiness check.

    ``origin[i]`` is the original state object behind int state ``i``;
    ``labels``/``label_ids`` intern the (few, repeated) state labels;
    ``succ[i]`` is a sorted tuple of successor ints; ``initial`` is sorted.
    Built by :func:`compile_kripke` (from an existing structure) or
    :func:`compile_product` (directly from ``M ⊗ C``, skipping the
    intermediate object graph).
    """

    __slots__ = ("name", "origin", "labels", "label_ids", "succ", "initial", "_index")

    def __init__(self, name, origin, labels, label_ids, succ, initial):
        self.name = name
        self.origin = origin
        self.labels = labels
        self.label_ids = label_ids
        self.succ = succ
        self.initial = initial
        self._index = {state: i for i, state in enumerate(origin)}

    @property
    def num_states(self) -> int:
        """Number of states."""
        return len(self.origin)

    def label_of(self, state):
        """The label symbol of an *original* state (counterexample rendering)."""
        return self.labels[self.label_ids[self._index[state]]]


def compile_kripke(kripke: KripkeStructure) -> CompiledStructure:
    """Intern an existing :class:`~repro.automata.kripke.KripkeStructure`."""
    states = kripke.states
    index = {s: i for i, s in enumerate(states)}
    labels: list = []
    label_index: dict = {}
    label_ids: list = []
    for s in states:
        symbol = kripke.label(s)
        lid = label_index.get(symbol)
        if lid is None:
            lid = len(labels)
            label_index[symbol] = lid
            labels.append(symbol)
        label_ids.append(lid)
    succ = tuple(tuple(sorted(index[t] for t in kripke.successors(s))) for s in states)
    initial = tuple(sorted(index[s] for s in kripke.initial_states))
    return CompiledStructure(
        kripke.name, tuple(states), tuple(labels), tuple(label_ids), succ, initial
    )


def compile_product(
    model: TransitionSystem,
    controller: FSAController,
    *,
    stutter_on_deadlock: bool = True,
    restart_on_termination: bool = False,
) -> CompiledStructure:
    """Build ``M ⊗ C`` directly in integer space.

    Semantically identical to :func:`repro.automata.product.build_product`
    followed by :func:`compile_kripke` — same initial states, same
    restart-on-termination and stutter conventions, same reachable state set
    (the differential suite holds the two paths to identical verdicts) — but
    without materializing the intermediate ``ProductState``-keyed Kripke
    structure, which is ~a quarter of the naive path's cost.
    """
    model.validate()
    controller.validate()

    observation_of = {p: model.label(p) for p in model.states}
    model_succ = {p: sorted(model.successors(p)) for p in model.states}
    q0 = controller.initial_state

    moves_cache: dict = {}

    def moves(q, p):
        key = (q, p)
        got = moves_cache.get(key)
        if got is None:
            got = tuple(
                (t.action, t.target)
                for t in controller.enabled_transitions(q, observation_of[p])
            )
            moves_cache[key] = got
        return got

    index: dict = {}
    origin: list = []
    label_syms: list = []
    succ_lists: list = []
    frontier: list = []

    def ensure(p, q, action) -> int:
        key = (p, q, action)
        sid = index.get(key)
        if sid is None:
            sid = len(origin)
            index[key] = sid
            origin.append(ProductState(p, q, action))
            label_syms.append(observation_of[p] | action)
            succ_lists.append([])
            frontier.append(sid)
        return sid

    initial_model_states = sorted(model.initial_states) or model.states
    initial_ids: list = []
    for p in initial_model_states:
        for action, _q_next in moves(q0, p):
            sid = ensure(p, q0, action)
            if sid not in initial_ids:
                initial_ids.append(sid)

    if not initial_ids:
        raise AutomatonError(
            f"controller {controller.name!r} has no enabled transition in any initial "
            f"state of model {model.name!r}; the product automaton is empty"
        )

    while frontier:
        sid = frontier.pop()
        state = origin[sid]
        p, q, action = state.model_state, state.controller_state, state.action
        out = succ_lists[sid]
        controller_targets = [t for a, t in moves(q, p) if a == action]
        added = False
        for q_next in controller_targets:
            for p_next in model_succ[p]:
                for next_action, _ in moves(q_next, p_next):
                    out.append(ensure(p_next, q_next, next_action))
                    added = True
        if not added and restart_on_termination:
            for p_next in model_succ[p]:
                for next_action, _ in moves(q0, p_next):
                    out.append(ensure(p_next, q0, next_action))
                    added = True
        if not added and stutter_on_deadlock:
            out.append(sid)

    labels: list = []
    label_index: dict = {}
    label_ids: list = []
    for symbol in label_syms:
        lid = label_index.get(symbol)
        if lid is None:
            lid = len(labels)
            label_index[symbol] = lid
            labels.append(symbol)
        label_ids.append(lid)

    return CompiledStructure(
        f"{model.name}(x){controller.name}",
        tuple(origin),
        tuple(labels),
        tuple(label_ids),
        tuple(tuple(sorted(set(out))) for out in succ_lists),
        tuple(initial_ids),
    )


# ---------------------------------------------------------------------- #
# Emptiness check
# ---------------------------------------------------------------------- #
def find_accepting_lasso(
    compiled: CompiledStructure,
    cached: CachedAutomaton,
    *,
    spec_label: str = "",
    max_product_states: int = 200_000,
):
    """Emptiness check of ``compiled ⊗ cached`` in integer space.

    Product state ``(s, b)`` is the int ``s * m + b``.  A BFS computes the
    reachable product (raising :class:`~repro.errors.VerificationError` past
    ``max_product_states``, like the naive path); if no accepting NBA state
    is even reachable the check exits early, otherwise an iterative Tarjan
    pass finds an accepting state inside a nontrivial SCC and a lasso through
    it is materialized.  Returns ``((prefix, cycle), stats)`` with prefix /
    cycle as lists of original states (the cycle starts at the repeated
    state, the prefix excludes it — the naive checker's shape), or
    ``(None, stats)`` when the specification holds.
    """
    m = cached.num_states
    label_ids = compiled.label_ids
    succ = compiled.succ
    accepting = cached.accepting
    move = [cached.row_for(symbol) for symbol in compiled.labels]

    with obs.span("mc.product", category="modelcheck", spec=spec_label):
        parents: dict = {}
        adjacency: dict = {}
        order: list = []
        queue = deque()
        for s0 in compiled.initial:
            row = move[label_ids[s0]]
            for b0 in cached.initial:
                for b in row[b0]:
                    pid = s0 * m + b
                    if pid not in parents:
                        parents[pid] = None
                        queue.append(pid)
        saw_accepting = False
        while queue:
            pid = queue.popleft()
            order.append(pid)
            if len(order) > max_product_states:
                raise VerificationError(
                    f"product exceeded {max_product_states} states; "
                    "increase max_product_states or simplify the specification"
                )
            b = pid % m
            if b in accepting:
                saw_accepting = True
            out: list = []
            for s_next in succ[pid // m]:
                base = s_next * m
                for b_next in move[label_ids[s_next]][b]:
                    out.append(base + b_next)
            adjacency[pid] = out
            for succ_pid in out:
                if succ_pid not in parents:
                    parents[succ_pid] = pid
                    queue.append(succ_pid)

    stats = {
        "product_states": len(order),
        "nba_states": m,
        "kripke_states": compiled.num_states,
    }

    with obs.span("mc.check", category="modelcheck", spec=spec_label):
        if not saw_accepting:
            return None, stats
        target = _accepting_scc_target(order, adjacency, accepting, m)
        if target is None:
            return None, stats
        prefix = [target]
        while parents[prefix[-1]] is not None:
            prefix.append(parents[prefix[-1]])
        prefix.reverse()
        cycle = _cycle_through(target, adjacency)
        origin = compiled.origin
        return (
            [origin[pid // m] for pid in prefix[:-1]],
            [origin[pid // m] for pid in cycle],
        ), stats


def _accepting_scc_target(order, adjacency, accepting, m):
    """First accepting product state inside a cycle-capable SCC (or ``None``).

    Iterative Tarjan over the reachable product, roots in BFS order; inside
    the first qualifying SCC the accepting member with the smallest Tarjan
    index is returned, so the choice is deterministic.
    """
    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    counter = 0
    for root in order:
        if root in index:
            continue
        work = [(root, 0)]
        while work:
            node, edge_i = work[-1]
            if edge_i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            out = adjacency[node]
            descended = False
            while edge_i < len(out):
                child = out[edge_i]
                edge_i += 1
                if child not in index:
                    work[-1] = (node, edge_i)
                    work.append((child, 0))
                    descended = True
                    break
                if child in on_stack and index[child] < low[node]:
                    low[node] = index[child]
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                accepting_members = [pid for pid in component if pid % m in accepting]
                if not accepting_members:
                    continue
                if len(component) > 1 or node in adjacency[node]:
                    return min(accepting_members, key=index.__getitem__)
    return None


def _cycle_through(target, adjacency):
    """Shortest cycle ``target → … → target`` (BFS), as ``[target, …]``."""
    if target in adjacency[target]:
        return [target]
    parents: dict = {}
    queue = deque()
    for succ_pid in adjacency[target]:
        if succ_pid not in parents:
            parents[succ_pid] = None
            queue.append(succ_pid)
    while queue:
        node = queue.popleft()
        for succ_pid in adjacency[node]:
            if succ_pid == target:
                path = [node]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                return [target] + list(reversed(path))
            if succ_pid not in parents:
                parents[succ_pid] = node
                queue.append(succ_pid)
    raise VerificationError(
        "internal error: accepting SCC member has no cycle back to itself"
    )  # pragma: no cover - Tarjan guarantees a cycle exists


def automaton_accepts_lasso(
    nba: BuchiAutomaton, prefix: Sequence, cycle: Sequence
) -> bool:
    """Does ``nba`` accept the ultimately-periodic word ``prefix · cycle^ω``?

    ``prefix``/``cycle`` are symbol sequences (``cycle`` non-empty).  Used by
    the fuzz suite to spot-check that :func:`prune_automaton` preserves the
    language: acceptance of any lasso word must be identical before and
    after pruning.
    """
    if not cycle:
        raise ValueError("a lasso word needs a non-empty cycle")
    word = list(prefix) + list(cycle)
    lasso = KripkeStructure(name="lasso")
    for i, symbol in enumerate(word):
        lasso.add_state(i, symbol, initial=i == 0)
    for i in range(len(word) - 1):
        lasso.add_transition(i, i + 1)
    lasso.add_transition(len(word) - 1, len(prefix))
    cached = CachedAutomaton(_rename_states(nba))
    if cached.is_empty:
        return False
    found, _stats = find_accepting_lasso(compile_kripke(lasso), cached)
    return found is not None


def _rename_states(nba: BuchiAutomaton) -> BuchiAutomaton:
    """Rename reachable NBA states to ``0..n-1`` (BFS order), language-preserving."""
    out: dict = {s: [] for s in nba.states}
    for t in nba.transitions:
        out[t.source].append(t)
    rename: dict = {}
    queue = deque()
    for s in sorted(nba.initial_states, key=repr):
        if s not in rename:
            rename[s] = len(rename)
            queue.append(s)
    while queue:
        s = queue.popleft()
        for t in out[s]:
            if t.target not in rename:
                rename[t.target] = len(rename)
                queue.append(t.target)
    renamed = BuchiAutomaton(name=f"{nba.name}_renamed")
    for s, i in rename.items():
        renamed.add_state(
            i, initial=s in nba.initial_states, accepting=s in nba.accepting_states
        )
    for t in nba.transitions:
        if t.source in rename and t.target in rename:
            renamed.add_transition(rename[t.source], t.constraint, rename[t.target])
    return renamed


# ---------------------------------------------------------------------- #
# Structure fingerprints and the verification-result cache
# ---------------------------------------------------------------------- #
def controller_fingerprint(controller: FSAController) -> str:
    """Digest of a controller's *structure* (name excluded).

    Two controllers built from the same canonical response text fingerprint
    identically, so re-verifying a repeated sampled response becomes a
    :class:`ResultCache` hit instead of a product exploration.
    """
    payload = {
        "initial": controller.initial_state,
        "states": controller.states,
        "transitions": [
            [t.source, str(t.guard), sorted(t.action), t.target]
            for t in controller.transitions
        ],
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def model_fingerprint(model: TransitionSystem) -> str:
    """Digest of a world model's structure and labeling (name excluded)."""
    payload = {
        "states": [[s, sorted(model.label(s))] for s in model.states],
        "initial": sorted(model.initial_states),
        "transitions": model.transitions(),
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


class ResultCache:
    """Bounded LRU of :class:`~repro.modelcheck.checker.VerificationResult`.

    Keyed on ``(model fingerprint, controller fingerprint, restart flag,
    spec key)``; results are frozen dataclasses, safe to share between hits.
    Thread-safe (the thread backend funnels every worker through one
    checker).
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key):
        """The cached result for ``key`` (refreshing LRU order), or ``None``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return None

    def put(self, key, result) -> None:
        """Insert a result, evicting the least recently used past the bound."""
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def stats(self) -> dict:
        """Hit/miss/size counters."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses, "entries": len(self._entries)}

    def clear(self) -> None:
        """Drop every entry and counter."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = 0
