"""The rule catalogue: six AST rules distilled from bugs this repo actually had.

Each rule class has a ``rule_id``, a one-line ``description`` and a
``check(context)`` generator over :class:`~repro.analysis.engine.Finding`.
``docs/analysis.md`` documents the originating (fixed) bug behind every rule;
the short version:

==============================  =================================================
``atomic-write``                PR 2: ``FeedbackCache.save`` truncated the
                                persisted cache on crash until writes became
                                tmp + ``os.replace``.
``falsy-default``               PR 3: ``evaluate_model(num_samples=0)`` and
                                ``FeedbackCache.load(max_entries=0)`` silently
                                became the defaults through ``x = arg or d``.
``unguarded-shared-mutation``   PR 6: ``ServingMetrics`` counters were mutated
                                off-lock by producer threads, losing increments.
``rebind-shared-container``     PR 6: ``ServingMetrics.reset()`` rebound
                                ``stage_seconds`` instead of clearing it,
                                stranding registry providers on a dead dict.
``nondeterministic-iteration``  Set iteration feeding score/pair/trace output
                                paths made byte-identical-output guarantees
                                depend on hash order.
``swallowed-exception``         PR 3: broken process pools degraded silently;
                                over-broad handlers that *drop* the error hide
                                exactly that class of failure.
==============================  =================================================
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding

#: Constructors recognised as thread-synchronisation primitives.
LOCK_CONSTRUCTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "Lock",
    "RLock",
    "Condition",
}

#: Constructors/literals recognised as shared containers.
CONTAINER_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "frozenset",
    "tuple",
    "deque",
    "collections.deque",
    "OrderedDict",
    "collections.OrderedDict",
    "defaultdict",
    "collections.defaultdict",
    "Counter",
    "collections.Counter",
    "WeakSet",
    "weakref.WeakSet",
}

#: Method names that mutate a container/file object in place.
MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "reverse",
    "rotate",
    "setdefault",
    "sort",
    "update",
    "write",
}


def dotted_name(node) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def class_lock_attributes(cls: ast.ClassDef) -> set:
    """Names of ``self.<attr>`` synchronisation primitives a class owns.

    Detects both plain ``self._lock = threading.Lock()`` assignments in any
    method and dataclass-style class-level fields
    (``_lock: threading.RLock = field(default_factory=threading.RLock)``).
    """
    locks: set = set()
    for stmt in cls.body:
        # Dataclass field: the annotation or the default_factory names a lock.
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = dotted_name(stmt.annotation)
            if annotation in LOCK_CONSTRUCTORS:
                locks.add(stmt.target.id)
            elif isinstance(stmt.value, ast.Call):
                for keyword in stmt.value.keywords:
                    if keyword.arg == "default_factory" and dotted_name(keyword.value) in LOCK_CONSTRUCTORS:
                        locks.add(stmt.target.id)
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            if dotted_name(node.value.func) not in LOCK_CONSTRUCTORS:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks.add(target.attr)
    return locks


def _with_acquires_lock(node, locks: set) -> bool:
    """Whether one ``with`` statement acquires any of the class's own locks."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):  # e.g. ``with self._cond_factory():``
            expr = expr.func
        name = dotted_name(expr)
        if name is not None and name.startswith("self.") and name[len("self."):] in locks:
            return True
    return False


class AtomicWriteRule:
    """Persistent-path writes must go through :mod:`repro.utils.atomic`.

    Flags ``open(..., "w"/"wb"/"w+")``, ``Path.open("w")``, ``.write_text()``
    and ``.write_bytes()`` anywhere outside the whitelisted atomic-write
    helper module.  A crash (or a concurrent reader) mid-write must never
    observe a truncated artifact; the tmp + ``os.replace`` idiom lives in one
    place so every writer inherits it.
    """

    rule_id = "atomic-write"
    description = "persistent-path write outside the tmp + os.replace idiom"

    #: The one module allowed to open files for (over)writing directly.
    WHITELIST_SUFFIXES = ("repro/utils/atomic.py",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for direct truncating writes in ``context``."""
        if context.posix_path.endswith(self.WHITELIST_SUFFIXES):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._truncating_write(node)
            if what is not None:
                yield Finding(
                    file=context.path,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"{what} writes in place — a crash mid-write corrupts the file; "
                        "use repro.utils.atomic (write_text_atomic / dump_json_atomic / "
                        "AtomicTextWriter)"
                    ),
                )

    @staticmethod
    def _truncating_write(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("write_text", "write_bytes"):
            return f".{func.attr}()"
        mode = None
        if isinstance(func, ast.Name) and func.id == "open":
            mode = node.args[1] if len(node.args) > 1 else None
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            mode = node.args[0] if node.args else None
        if mode is None:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str) and "w" in mode.value:
            return f'open(mode="{mode.value}")'
        return None


class FalsyDefaultRule:
    """``x = arg or default`` turns a caller's 0 / empty collection into the default.

    Flags assignments whose value is ``<parameter> or <numeric/string/
    collection literal-or-constructor>``: an explicit ``0``, ``0.0``, ``""``
    or ``[]`` from the caller silently becomes the default.  Use
    ``if arg is None: arg = default`` instead.
    """

    rule_id = "falsy-default"
    description = "`param or default` default-ing that swallows falsy arguments"

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for or-defaulting of function parameters."""
        for func in ast.walk(context.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = func.args
            params = {
                arg.arg
                for arg in (
                    list(arguments.posonlyargs) + list(arguments.args) + list(arguments.kwonlyargs)
                )
            } - {"self", "cls"}
            for node in ast.walk(func):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if not (isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or)):
                    continue
                first = value.values[0]
                if not (isinstance(first, ast.Name) and first.id in params):
                    continue
                if any(self._falsy_swallowing_default(v) for v in value.values[1:]):
                    yield Finding(
                        file=context.path,
                        line=node.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"`{first.id} or <default>` treats a falsy argument (0, empty "
                            f"collection) as missing; use `if {first.id} is None` instead"
                        ),
                    )

    @staticmethod
    def _falsy_swallowing_default(node) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float, complex, str, bytes)) and not isinstance(
                node.value, bool
            )
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.Tuple)):
            return True
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in CONTAINER_CONSTRUCTORS
        return False


class UnguardedSharedMutationRule:
    """Attributes guarded by a class's lock must never be mutated off-lock.

    For every class that owns a synchronisation primitive (``self._lock =
    threading.Lock()`` or a dataclass lock field), any attribute that is
    mutated inside a ``with self.<lock>:`` block *anywhere* in the class is
    considered lock-guarded.  Mutating such an attribute outside a lock block
    is then a finding — a half-guarded counter loses increments under
    concurrency, the exact bug ``ServingMetrics`` had.

    Two escape hatches keep the rule honest without suppression noise:
    ``__init__`` is exempt (no concurrent access before construction
    completes), and a *private* method is treated as running under the lock
    when every one of its same-class call sites is inside a lock block or
    inside another lock-held method (computed to a fixpoint) — or when its
    name ends in ``_locked``, the documented "caller must hold the lock"
    convention.
    """

    rule_id = "unguarded-shared-mutation"
    description = "lock-guarded attribute mutated outside the lock"

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for off-lock mutations of guarded attributes."""
        for cls in ast.walk(context.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(cls, context)

    # ------------------------------------------------------------------ #
    def _check_class(self, cls: ast.ClassDef, context: FileContext) -> Iterator[Finding]:
        locks = class_lock_attributes(cls)
        if not locks:
            return
        methods = [stmt for stmt in cls.body if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))]
        method_names = {method.name for method in methods}

        # Pass 1: every mutation and every same-class call, with held-lock state.
        mutations: dict = {}      # method name -> [(attr, line, held)]
        call_sites: dict = {}     # callee name -> [(caller name, held)]
        for method in methods:
            collected: list = []
            self._collect(method.body, locks, False, collected, call_sites, method.name, method_names)
            mutations[method.name] = collected

        # Pass 2: fixpoint over private methods whose every call site holds the lock.
        lock_held = {name for name in method_names if name.endswith("_locked")}
        changed = True
        while changed:
            changed = False
            for name in method_names:
                if name in lock_held or not name.startswith("_") or name.startswith("__"):
                    continue
                sites = call_sites.get(name, [])
                if sites and all(held or caller in lock_held for caller, held in sites):
                    lock_held.add(name)
                    changed = True

        # An attribute is lock-guarded when some mutation of it happens under
        # the lock: textually inside a with-block, inside a lock-held method,
        # or inside a method that at least one caller invokes while holding
        # the lock (a *mixed* call path — the other callers are the bug).
        sometimes_held = {
            name
            for name, sites in call_sites.items()
            if any(held or caller in lock_held for caller, held in sites)
        }
        guarded_attrs = {
            attr
            for method_name, per_method in mutations.items()
            for attr, _line, held in per_method
            if method_name != "__init__"
            and (held or method_name in lock_held or method_name in sometimes_held)
        } - locks

        for method in methods:
            if method.name == "__init__" or method.name in lock_held:
                continue
            for attr, line, held in mutations[method.name]:
                if not held and attr in guarded_attrs:
                    yield Finding(
                        file=context.path,
                        line=line,
                        rule_id=self.rule_id,
                        message=(
                            f"self.{attr} is mutated under {cls.name}'s lock elsewhere but "
                            f"not here — unsynchronised updates can be lost; take the lock "
                            "(or suffix the method `_locked` if the caller must hold it)"
                        ),
                    )

    def _collect(self, stmts, locks, held, out, call_sites, method_name, method_names) -> None:
        for stmt in stmts:
            self._collect_node(stmt, locks, held, out, call_sites, method_name, method_names)

    def _collect_node(self, node, locks, held, out, call_sites, method_name, method_names) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            return  # nested scopes run later, under unknown lock state
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_held = held or _with_acquires_lock(node, locks)
            for item in node.items:
                self._collect_node(
                    item.context_expr, locks, held, out, call_sites, method_name, method_names
                )
            self._collect(node.body, locks, inner_held, out, call_sites, method_name, method_names)
            return
        for attr in self._mutated_attrs(node):
            out.append((attr, node.lineno, held))
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee is not None and callee.startswith("self."):
                name = callee[len("self."):]
                if name in method_names:
                    call_sites.setdefault(name, []).append((method_name, held))
        for child in ast.iter_child_nodes(node):
            self._collect_node(child, locks, held, out, call_sites, method_name, method_names)

    @staticmethod
    def _mutated_attrs(node) -> Iterator[str]:
        def self_attr(target) -> str | None:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return target.attr
            return None

        targets: list = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        flattened: list = []
        while targets:
            target = targets.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                targets.extend(target.elts)
            elif isinstance(target, ast.Starred):
                targets.append(target.value)
            else:
                flattened.append(target)
        for target in flattened:
            attr = self_attr(target)
            if attr is not None:
                yield attr
            elif isinstance(target, ast.Subscript):  # self.x[k] = v mutates self.x
                attr = self_attr(target.value)
                if attr is not None:
                    yield attr
        # In-place mutating method calls: self.x.append(...), self.x.clear(), ...
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                attr = self_attr(node.func.value)
                if attr is not None:
                    yield attr


class RebindSharedContainerRule:
    """Clearing shared state by rebinding strands everyone holding the old object.

    For any class whose ``__init__`` binds ``self.<attr>`` to a container,
    assigning that attribute a *fresh empty* container in another method is a
    finding: a telemetry provider, a test, or another thread holding the old
    container keeps observing stale state forever.  Mutate in place
    (``.clear()``) instead — the bug ``ServingMetrics.reset()`` had with
    ``stage_seconds``.
    """

    rule_id = "rebind-shared-container"
    description = "shared container cleared by rebinding instead of .clear()"

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for empty-container rebinds of ``__init__`` containers."""
        for cls in ast.walk(context.tree):
            if isinstance(cls, ast.ClassDef):
                yield from self._check_class(cls, context)

    def _check_class(self, cls: ast.ClassDef, context: FileContext) -> Iterator[Finding]:
        container_attrs = self._init_container_attrs(cls)
        if not container_attrs:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                if not self._is_empty_container(node.value):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in self._flat_targets(targets):
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in container_attrs
                    ):
                        yield Finding(
                            file=context.path,
                            line=node.lineno,
                            rule_id=self.rule_id,
                            message=(
                                f"self.{target.attr} is rebound to a fresh container — "
                                "holders of the old one keep stale state; mutate in place "
                                "with .clear()"
                            ),
                        )

    @staticmethod
    def _flat_targets(targets) -> Iterator:
        stack = list(targets)
        while stack:
            target = stack.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                stack.extend(target.elts)
            else:
                yield target

    @classmethod
    def _init_container_attrs(cls_, cls: ast.ClassDef) -> set:
        attrs: set = set()
        for stmt in cls.body:
            # Dataclass container fields: x: dict = field(default_factory=dict)
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if isinstance(stmt.value, ast.Call):
                    for keyword in stmt.value.keywords:
                        if (
                            keyword.arg == "default_factory"
                            and dotted_name(keyword.value) in CONTAINER_CONSTRUCTORS
                        ):
                            attrs.add(stmt.target.id)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == "__init__":
                for node in ast.walk(stmt):
                    if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                        continue
                    if not cls_._is_container_value(node.value):
                        continue
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for target in cls_._flat_targets(targets):
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.add(target.attr)
        return attrs

    @staticmethod
    def _is_container_value(node) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) and dotted_name(node.func) in CONTAINER_CONSTRUCTORS

    @staticmethod
    def _is_empty_container(node) -> bool:
        if isinstance(node, (ast.List, ast.Set)) and not node.elts:
            return True
        if isinstance(node, ast.Dict) and not node.keys:
            return True
        if (
            isinstance(node, ast.Call)
            and not node.args
            and not node.keywords
            and dotted_name(node.func) in CONTAINER_CONSTRUCTORS
        ):
            return True
        return False


class NondeterministicIterationRule:
    """Iterating a set where order reaches output makes results hash-order-dependent.

    Flags ``for``-loop iterables, comprehension sources and ``list()`` /
    ``tuple()`` / ``enumerate()`` / ``str.join()`` arguments that are
    syntactically sets (literals, set comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls).  Scores, pairs and traces are promised to be
    byte-identical across runs; wrap the set in ``sorted(...)`` to keep that
    promise.  Order-insensitive folds (``sum``, ``len``, ``any``, membership
    tests, another ``set(...)``) are not flagged.
    """

    rule_id = "nondeterministic-iteration"
    description = "unordered set iterated into an order-sensitive context"

    _ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate"}

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for order-sensitive iteration over set expressions."""
        for node in ast.walk(context.tree):
            iterables: list = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(generator.iter for generator in node.generators)
            elif isinstance(node, ast.Call):
                func_name = dotted_name(node.func)
                if func_name in self._ORDER_SENSITIVE_CALLS or (
                    isinstance(node.func, ast.Attribute) and node.func.attr == "join"
                ):
                    iterables.extend(node.args[:1])
            for iterable in iterables:
                if self._is_set_expression(iterable):
                    yield Finding(
                        file=context.path,
                        line=iterable.lineno,
                        rule_id=self.rule_id,
                        message=(
                            "iterating an unordered set here makes the result depend on "
                            "hash order; wrap it in sorted(...) for a deterministic order"
                        ),
                    )

    @staticmethod
    def _is_set_expression(node) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) and dotted_name(node.func) in {"set", "frozenset"}


class SwallowedExceptionRule:
    """Over-broad handlers that drop the error hide worker/stream failures.

    Flags bare ``except:`` unconditionally, and ``except Exception`` /
    ``except BaseException`` handlers whose body neither re-raises, uses the
    bound exception, nor calls anything — the error is simply discarded.
    Dispatcher, worker-pool and stream code must either handle the specific
    exceptions it expects or propagate; a verification error silently
    swallowed becomes a wrong score.
    """

    rule_id = "swallowed-exception"
    description = "bare/over-broad except that drops the error"

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for error-dropping broad exception handlers."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    file=context.path,
                    line=node.lineno,
                    rule_id=self.rule_id,
                    message="bare `except:` catches everything (even KeyboardInterrupt); "
                    "name the exception types this code can actually handle",
                )
                continue
            if not self._is_broad(node.type):
                continue
            if self._body_handles_error(node):
                continue
            caught = dotted_name(node.type) or "Exception"
            yield Finding(
                file=context.path,
                line=node.lineno,
                rule_id=self.rule_id,
                message=(
                    f"`except {caught}` drops the error without re-raising, logging or "
                    "using it — narrow the exception types or propagate the failure"
                ),
            )

    @staticmethod
    def _is_broad(type_node) -> bool:
        def broad(node) -> bool:
            return (dotted_name(node) or "").split(".")[-1] in ("Exception", "BaseException")

        if isinstance(type_node, ast.Tuple):
            return any(broad(element) for element in type_node.elts)
        return broad(type_node)

    @staticmethod
    def _body_handles_error(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(ast.Module(body=list(handler.body), type_ignores=[])):
            if isinstance(node, (ast.Raise, ast.Call)):
                return True
            if handler.name and isinstance(node, ast.Name) and node.id == handler.name:
                return True
        return False


#: The rules ``repro-lint`` (and the tier-1 clean-tree test) run by default.
DEFAULT_RULES = (
    AtomicWriteRule,
    FalsyDefaultRule,
    UnguardedSharedMutationRule,
    RebindSharedContainerRule,
    NondeterministicIterationRule,
    SwallowedExceptionRule,
)


def default_rules() -> list:
    """Fresh instances of every rule in :data:`DEFAULT_RULES`."""
    return [rule() for rule in DEFAULT_RULES]
