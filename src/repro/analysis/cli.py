"""``repro-lint``: run the repro static-analysis rules from the command line.

Usage::

    repro-lint [paths ...] [--format text|json] [--no-lock-order] [--rules a,b]

With no paths the linter analyzes the installed ``repro`` package source (so
``repro-lint`` from the repo root and ``make lint`` both check ``src/repro``).
Exit status is 0 when the tree is clean and 1 when any finding survives —
suitable for CI gating.  ``--format json`` emits a deterministic document
(findings sorted, lock-order edges and cycles included) so future tooling can
diff findings across commits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.engine import run_analysis
from repro.analysis.rules import DEFAULT_RULES, default_rules


def default_target() -> Path:
    """The source tree ``repro-lint`` checks when no paths are given."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST lint + lock-order analysis of the repro codebase's "
        "concurrency and determinism invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the repro package source)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format: human-readable text (default) or a diffable JSON document",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--no-lock-order",
        action="store_true",
        help="skip the cross-file lock-order analysis",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rule ids and exit",
    )
    return parser


def select_rules(spec: str | None) -> list:
    """Rule instances for a ``--rules`` spec (all rules when ``spec`` is None)."""
    rules = default_rules()
    if spec is None:
        return rules
    wanted = [part.strip() for part in spec.split(",") if part.strip()]
    known = {rule.rule_id: rule for rule in rules}
    unknown = [rule_id for rule_id in wanted if rule_id not in known]
    if unknown:
        raise SystemExit(
            f"repro-lint: unknown rule id(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [known[rule_id] for rule_id in wanted]


def main(argv=None) -> int:
    """Entry point; returns the process exit code (0 clean, 1 findings)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.rule_id:30s} {rule.description}")
        return 0
    paths = [Path(p) for p in args.paths] if args.paths else [default_target()]
    for path in paths:
        if not path.exists():
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
            return 2
    report = run_analysis(
        paths,
        rules=select_rules(args.rules),
        lock_order=not args.no_lock_order,
        relative_to=Path.cwd(),
    )

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        cycles = report.lock_cycles
        summary = (
            f"repro-lint: {report.files_checked} files, "
            f"{len(report.findings)} finding(s)"
        )
        if not args.no_lock_order:
            summary += (
                f"; lock-order graph: {len(report.lock_acquisitions)} acquisitions, "
                f"{len(report.lock_edges)} edges, "
                + ("cycle-free" if not cycles else f"{len(cycles)} CYCLE(S)")
            )
        print(summary)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
