"""Static analysis of the repro codebase's own concurrency/determinism invariants.

The paper's core move is verifying LLM-produced controllers against formal
specifications.  This package turns that mindset inward: the informal
invariants the serving/streaming substrate depends on — atomic persistent
writes, lock-guarded shared state, no falsy-``or`` defaults, deterministic
iteration order, never silently swallowing worker errors — are encoded as
machine-checked AST rules that run in tier-1, so the classes of bug PRs 3 and
6 fixed by hand become structurally impossible to merge.

Three layers:

``repro.analysis.engine``
    The rule engine: walks Python sources, runs every registered rule, and
    collects :class:`Finding` records.  Inline suppressions
    (``# repro: allow[rule-id] — reason``) are *checked*: an unknown rule id
    or a missing reason is itself a finding.

``repro.analysis.rules``
    The rule catalogue — six rules distilled from real bugs fixed in this
    repository (see ``docs/analysis.md`` for each rule's originating bug).

``repro.analysis.locks``
    A lock-order analyzer: statically extracts nested ``with <lock>:``
    acquisitions (including acquisitions reached through same-class method
    calls), builds the acquisition-order graph, and reports any cycle as a
    potential deadlock.

The ``repro-lint`` console script (``repro.analysis.cli``) runs everything
over ``src/repro`` and exits non-zero on findings; ``make lint`` wires it
into the default ``make tier1`` flow and ``tests/analysis/test_clean.py``
asserts the tree stays clean.
"""

from repro.analysis.engine import (
    AnalysisReport,
    FileContext,
    Finding,
    Suppression,
    analyze_source,
    parse_suppressions,
    run_analysis,
)
from repro.analysis.locks import LockOrderAnalyzer, LockAcquisition, LockEdge
from repro.analysis.rules import (
    DEFAULT_RULES,
    AtomicWriteRule,
    FalsyDefaultRule,
    NondeterministicIterationRule,
    RebindSharedContainerRule,
    SwallowedExceptionRule,
    UnguardedSharedMutationRule,
    default_rules,
)

__all__ = [
    "AnalysisReport",
    "AtomicWriteRule",
    "DEFAULT_RULES",
    "FalsyDefaultRule",
    "FileContext",
    "Finding",
    "LockAcquisition",
    "LockEdge",
    "LockOrderAnalyzer",
    "NondeterministicIterationRule",
    "RebindSharedContainerRule",
    "Suppression",
    "SwallowedExceptionRule",
    "UnguardedSharedMutationRule",
    "analyze_source",
    "default_rules",
    "parse_suppressions",
    "run_analysis",
]
