"""Static lock-order analysis: nested ``with <lock>:`` acquisitions as a graph.

Deadlock by lock-order inversion is the one concurrency bug a test suite is
worst at catching — it needs two threads to interleave exactly wrongly, once.
This module extracts the *acquisition-order graph* statically instead: every
``with self.<lock>:`` (or ``with self.<lock_factory>():``) block that acquires
another lock inside its body — directly, or through a same-class method call
whose (transitively computed) summary acquires one — contributes an edge
``outer → inner``.  A cycle in that graph means two call paths acquire the
same locks in opposite orders: a potential deadlock, reported as a
``lock-order-cycle`` finding.

Lock identity is ``ClassName.attribute`` (module-level locks use the bare
name).  An attribute counts as a lock when the class assigns it a
``threading`` synchronisation primitive (via
:func:`repro.analysis.rules.class_lock_attributes` — dataclass lock fields
included) or when its name says so (``lock`` / ``cond`` / ``mutex`` /
``sem``), which also covers contextmanager *methods* like
``CacheDirectory._store_lock``.  Distinct instances of one class are
conflated — the usual conservative approximation.  Re-entrant self-edges
(``L → L``, legal on ``RLock``/``Condition``) are excluded from the graph.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.engine import Finding
from repro.analysis.rules import class_lock_attributes, dotted_name

#: Rule id stamped on cycle findings.
LOCK_CYCLE_RULE_ID = "lock-order-cycle"

#: Attribute/function names that read as synchronisation primitives.
_LOCKISH_NAME = re.compile(r"lock|cond|mutex|sem", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class LockAcquisition:
    """One ``with``-statement acquisition of a named lock."""

    lock: str
    file: str
    line: int
    function: str

    def to_dict(self) -> dict:
        """JSON-friendly record for the ``--format json`` lock-order section."""
        return {"lock": self.lock, "file": self.file, "line": self.line, "function": self.function}


@dataclass(frozen=True, order=True)
class LockEdge:
    """``outer`` was held while ``inner`` was acquired (at ``file:line``)."""

    outer: str
    inner: str
    file: str
    line: int
    via: str = ""  # the method call the acquisition was reached through, if any

    def to_dict(self) -> dict:
        """JSON-friendly record for the ``--format json`` lock-order section."""
        return {
            "outer": self.outer,
            "inner": self.inner,
            "file": self.file,
            "line": self.line,
            "via": self.via,
        }


class LockOrderAnalyzer:
    """Accumulates acquisitions/edges over files; reports ordering cycles.

    Feed it files with :meth:`add_file`, then read :attr:`acquisitions`,
    :attr:`edges`, :meth:`graph`, :meth:`cycles` and :meth:`findings`.
    """

    def __init__(self):
        self.acquisitions: list = []
        self.edges: list = []
        self._edge_keys: set = set()

    # ------------------------------------------------------------------ #
    def add_file(self, path: str, source: str) -> None:
        """Extract acquisitions and ordering edges from one source file.

        Files that do not parse are skipped — the engine already reports a
        ``syntax-error`` finding for them.
        """
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._add_class(path, node)
        # Module-level functions: bare-name locks only.
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_function(path, node, owner=None, lock_attrs=set(), summaries={})

    # ------------------------------------------------------------------ #
    def _add_class(self, path: str, cls: ast.ClassDef) -> None:
        lock_attrs = class_lock_attributes(cls)
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        # Pass 1: per-method direct acquisitions + same-class calls, then a
        # fixpoint for transitive summaries (locks reachable by calling m).
        direct: dict = {}
        calls: dict = {}
        for name, method in methods.items():
            acquired: set = set()
            called: set = set()
            for node in ast.walk(method):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        lock = self._lock_of(item.context_expr, cls.name, lock_attrs)
                        if lock is not None:
                            acquired.add(lock)
                elif isinstance(node, ast.Call):
                    callee = dotted_name(node.func)
                    if callee and callee.startswith("self.") and callee[5:] in methods:
                        called.add(callee[5:])
            direct[name] = acquired
            calls[name] = called
        summaries = {name: set(acquired) for name, acquired in direct.items()}
        changed = True
        while changed:
            changed = False
            for name in summaries:
                merged = set(summaries[name])
                for callee in calls[name]:
                    merged |= summaries[callee]
                if merged != summaries[name]:
                    summaries[name] = merged
                    changed = True

        # Pass 2: walk each method with the held-lock stack, emitting edges.
        for name, method in methods.items():
            self._walk_function(path, method, owner=cls.name, lock_attrs=lock_attrs, summaries=summaries)

    def _lock_of(self, expr, owner: str | None, lock_attrs: set) -> str | None:
        """The lock id a ``with``-item acquires, or None if it is not a lock."""
        if isinstance(expr, ast.Call):  # contextmanager factories: self._store_lock(x)
            expr = expr.func
        name = dotted_name(expr)
        if name is None:
            return None
        if owner is not None:
            if not name.startswith("self."):
                return None
            attr = name[5:]
            if "." in attr:  # self.a.b — another object's lock; out of scope
                return None
            if attr in lock_attrs or _LOCKISH_NAME.search(attr):
                return f"{owner}.{attr}"
            return None
        if "." not in name and _LOCKISH_NAME.search(name):
            return name
        return None

    def _walk_function(self, path, func, *, owner, lock_attrs, summaries) -> None:
        def visit(node, held: tuple) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
                return  # nested scopes execute later, under unknown lock state
            if isinstance(node, (ast.With, ast.AsyncWith)):
                stack = held
                for item in node.items:
                    visit(item.context_expr, stack)
                    lock = self._lock_of(item.context_expr, owner, lock_attrs)
                    if lock is not None:
                        self.acquisitions.append(
                            LockAcquisition(lock=lock, file=path, line=node.lineno, function=func.name)
                        )
                        self._emit_edges(stack, lock, path, node.lineno, via="")
                        stack = stack + (lock,)
                for stmt in node.body:
                    visit(stmt, stack)
                return
            if held and isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee and callee.startswith("self.") and callee[5:] in summaries:
                    for lock in sorted(summaries[callee[5:]]):
                        self._emit_edges(held, lock, path, node.lineno, via=callee)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in func.body:
            visit(stmt, ())

    def _emit_edges(self, held: tuple, inner: str, path: str, line: int, *, via: str) -> None:
        for outer in held:
            if outer == inner:  # re-entrant acquisition (RLock/Condition); not an order edge
                continue
            key = (outer, inner)
            if key not in self._edge_keys:
                self._edge_keys.add(key)
                self.edges.append(LockEdge(outer=outer, inner=inner, file=path, line=line, via=via))

    # ------------------------------------------------------------------ #
    def graph(self) -> dict:
        """Adjacency mapping ``{outer: sorted([inner, ...])}`` of the order graph."""
        adjacency: dict = {}
        for edge in self.edges:
            adjacency.setdefault(edge.outer, set()).add(edge.inner)
        return {outer: sorted(inners) for outer, inners in sorted(adjacency.items())}

    def cycles(self) -> list:
        """Every distinct acquisition-order cycle, as a list of lock names.

        Each cycle is rotated to start at its lexicographically smallest
        member, so the report is deterministic across runs.
        """
        adjacency = {outer: set(inners) for outer, inners in self.graph().items()}
        WHITE, GREY, BLACK = 0, 1, 2
        color = {lock: WHITE for lock in adjacency}
        found: list = []
        seen_keys: set = set()
        stack: list = []

        def dfs(lock: str) -> None:
            color[lock] = GREY
            stack.append(lock)
            for nxt in sorted(adjacency.get(lock, ())):
                if color.get(nxt, WHITE) == GREY:
                    cycle = stack[stack.index(nxt):]
                    pivot = cycle.index(min(cycle))
                    normalized = tuple(cycle[pivot:] + cycle[:pivot])
                    if normalized not in seen_keys:
                        seen_keys.add(normalized)
                        found.append(list(normalized))
                elif color.get(nxt, WHITE) == WHITE and nxt in adjacency:
                    dfs(nxt)
                elif color.get(nxt, WHITE) == WHITE:
                    color[nxt] = BLACK  # sink: no outgoing edges, cannot close a cycle
            stack.pop()
            color[lock] = BLACK

        for lock in sorted(adjacency):
            if color[lock] == WHITE:
                dfs(lock)
        return found

    def findings(self) -> list:
        """One ``lock-order-cycle`` finding per cycle, anchored at an edge site."""
        findings = []
        edge_at = {(edge.outer, edge.inner): edge for edge in self.edges}
        for cycle in self.cycles():
            pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
            anchor = next((edge_at[pair] for pair in pairs if pair in edge_at), None)
            path = " -> ".join(cycle + [cycle[0]])
            findings.append(
                Finding(
                    file=anchor.file if anchor else "<unknown>",
                    line=anchor.line if anchor else 0,
                    rule_id=LOCK_CYCLE_RULE_ID,
                    message=(
                        f"lock acquisition order cycle {path}: two call paths take these "
                        "locks in opposite orders — a potential deadlock; pick one global "
                        "order and restructure the inner acquisition"
                    ),
                )
            )
        return findings
