"""The rule engine: walk files, run rules, collect findings, honor suppressions.

A *rule* is any object with a ``rule_id`` string, a ``description`` string and
a ``check(context)`` method yielding :class:`Finding` records for one parsed
file (a :class:`FileContext`).  The engine owns everything rule-agnostic:

* discovering and parsing source files (:func:`run_analysis`);
* inline suppressions — ``# repro: allow[rule-id] — reason`` silences that
  rule on the comment's line (or, for a full-line comment, on the next line).
  Suppressions are **checked**: naming a rule id the engine doesn't know, or
  omitting the reason, is itself a finding (rule id ``suppression``), so a
  stale or sloppy suppression cannot silently rot;
* the :class:`AnalysisReport` aggregate the CLI and the tier-1 clean-tree
  test consume, including the lock-order section from
  :mod:`repro.analysis.locks`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Engine-level rule id stamped on defective suppression comments.
SUPPRESSION_RULE_ID = "suppression"

#: Matches ``repro: allow[rule-id] — reason`` after a ``#`` (the reason
#: separator may be an em dash, a hyphen, or a colon; the reason itself is
#: mandatory and checked).
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[^\]]*)\]\s*(?:[—:-]+\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    file: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        """``file:line: [rule-id] message`` — the text-format report line."""
        return f"{self.file}:{self.line}: [{self.rule_id}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-friendly record (the ``--format json`` finding shape)."""
        return {
            "file": self.file,
            "line": self.line,
            "rule_id": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[rule-id] — reason`` comment."""

    line: int            # physical line of the comment (1-based)
    applies_to: int      # line whose findings it silences
    rule_id: str
    reason: str | None


@dataclass
class FileContext:
    """Everything a rule needs about one parsed source file."""

    path: str                      # path as reported in findings
    source: str
    tree: ast.AST
    lines: Sequence[str] = field(default_factory=list)

    @property
    def posix_path(self) -> str:
        """The path with forward slashes, for suffix-based whitelists."""
        return Path(self.path).as_posix()


def parse_suppressions(source: str) -> list:
    """Every suppression comment in ``source``, with the line it applies to.

    Only real ``#`` comments count (the source is tokenized, so a docstring
    *describing* the suppression syntax is not a suppression).  A suppression
    trailing code applies to its own line; a suppression that is the whole
    line (a standalone comment) applies to the next line, so it can sit above
    the statement it excuses.
    """
    import io
    import tokenize

    suppressions = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            number, column = token.start
            standalone = token.line[:column].strip() == ""
            suppressions.append(
                Suppression(
                    line=number,
                    applies_to=number + 1 if standalone else number,
                    rule_id=match.group("rule").strip(),
                    reason=(match.group("reason") or "").strip() or None,
                )
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Keep what tokenised before the defect; the engine reports the
        # syntax error itself via analyze_source.
        pass
    return suppressions


def _check_suppressions(suppressions: Iterable, known_rule_ids, path: str) -> Iterator[Finding]:
    """Findings for defective suppression comments (unknown rule, no reason)."""
    for suppression in suppressions:
        if suppression.rule_id not in known_rule_ids:
            yield Finding(
                file=path,
                line=suppression.line,
                rule_id=SUPPRESSION_RULE_ID,
                message=(
                    f"suppression names unknown rule id {suppression.rule_id!r} "
                    f"(known: {', '.join(sorted(known_rule_ids))})"
                ),
            )
        elif suppression.reason is None:
            yield Finding(
                file=path,
                line=suppression.line,
                rule_id=SUPPRESSION_RULE_ID,
                message=(
                    f"suppression of {suppression.rule_id!r} has no reason — "
                    "write `# repro: allow[rule-id] — why this is safe`"
                ),
            )


def analyze_source(source: str, path: str, rules: Sequence | None = None) -> list:
    """Run ``rules`` over one source string; returns the surviving findings.

    Findings silenced by a valid suppression are dropped; findings *about*
    defective suppressions are added.  A file that does not parse yields a
    single ``syntax-error`` finding instead of raising — the linter must be
    able to report on a tree it cannot fully check.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                file=path,
                line=exc.lineno or 1,
                rule_id="syntax-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    context = FileContext(path=path, source=source, tree=tree, lines=source.splitlines())
    suppressions = parse_suppressions(source)
    known_rule_ids = {rule.rule_id for rule in rules} | {SUPPRESSION_RULE_ID}
    suppressed = {
        (suppression.applies_to, suppression.rule_id)
        for suppression in suppressions
        if suppression.rule_id in known_rule_ids and suppression.reason is not None
    }

    findings = list(_check_suppressions(suppressions, known_rule_ids, path))
    for rule in rules:
        for finding in rule.check(context):
            if (finding.line, finding.rule_id) not in suppressed:
                findings.append(finding)
    return sorted(findings)


@dataclass
class AnalysisReport:
    """The aggregate result of one :func:`run_analysis` pass."""

    findings: list = field(default_factory=list)
    files_checked: int = 0
    lock_acquisitions: list = field(default_factory=list)
    lock_edges: list = field(default_factory=list)
    lock_cycles: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no rule fired and the lock graph is acyclic."""
        return not self.findings

    def to_dict(self) -> dict:
        """JSON-friendly report (the ``repro-lint --format json`` document),
        deterministic across runs so future tooling can diff findings."""
        return {
            "files_checked": self.files_checked,
            "findings": [finding.to_dict() for finding in sorted(self.findings)],
            "lock_order": {
                "acquisitions": [a.to_dict() for a in self.lock_acquisitions],
                "edges": [e.to_dict() for e in self.lock_edges],
                "cycles": [list(cycle) for cycle in self.lock_cycles],
            },
        }


def iter_python_files(paths: Iterable) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories), sorted."""
    seen = set()
    for path in paths:
        path = Path(path)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def run_analysis(
    paths: Iterable,
    rules: Sequence | None = None,
    *,
    lock_order: bool = True,
    relative_to: str | Path | None = None,
) -> AnalysisReport:
    """Analyze every Python file under ``paths`` and return one report.

    ``relative_to`` shortens finding paths (e.g. to repo-relative form) when
    given.  ``lock_order=False`` skips the cross-file lock-order pass (the
    per-file rules still run).
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    from repro.analysis.locks import LockOrderAnalyzer

    report = AnalysisReport()
    analyzer = LockOrderAnalyzer()
    for file_path in iter_python_files(paths):
        display = file_path
        if relative_to is not None:
            try:
                display = file_path.relative_to(relative_to)
            except ValueError:
                pass
        source = file_path.read_text()
        report.files_checked += 1
        report.findings.extend(analyze_source(source, str(display), rules))
        if lock_order:
            analyzer.add_file(str(display), source)
    if lock_order:
        report.lock_acquisitions = analyzer.acquisitions
        report.lock_edges = analyzer.edges
        report.lock_cycles = analyzer.cycles()
        report.findings.extend(analyzer.findings())
    report.findings.sort()
    return report
