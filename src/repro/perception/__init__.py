"""Simulated perception: scenes, detector, calibration, noisy grounding."""

from repro.perception.calibration import (
    CalibrationComparison,
    CalibrationCurve,
    DEFAULT_BIN_CENTERS,
    calibration_curve,
    compare_domains,
)
from repro.perception.detector import Detection, SimulatedDetector, detection_accuracy
from repro.perception.grounding import PerceptionNoiseModel, perfect_perception
from repro.perception.scenes import (
    CATEGORIES,
    Scene,
    SceneObject,
    WEATHER_CONDITIONS,
    generate_dataset,
    generate_scene,
)

__all__ = [
    "CalibrationComparison",
    "CalibrationCurve",
    "DEFAULT_BIN_CENTERS",
    "calibration_curve",
    "compare_domains",
    "Detection",
    "SimulatedDetector",
    "detection_accuracy",
    "PerceptionNoiseModel",
    "perfect_perception",
    "CATEGORIES",
    "Scene",
    "SceneObject",
    "WEATHER_CONDITIONS",
    "generate_dataset",
    "generate_scene",
]
