"""A simulated open-vocabulary object detector (the Grounded-SAM substitute).

The detector looks at each annotated object and produces a detection with a
confidence score; the detection is *correct* (right category, localised) with
a probability that depends on the object's visibility through a single
calibration curve shared by both domains.  Consequently the detector's
accuracy conditioned on confidence is (approximately) domain-invariant even
though the marginal confidence distributions differ — the property Figure 12
measures and the sim-to-real transfer argument of Section 5.3 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perception.scenes import Scene, SceneObject
from repro.utils.rng import seeded_rng


@dataclass(frozen=True)
class Detection:
    """One detection: the object's category, the confidence, and correctness."""

    category: str
    confidence: float
    correct: bool
    domain: str
    weather: str


@dataclass
class SimulatedDetector:
    """Grounded-SAM stand-in with a shared confidence→accuracy characteristic.

    Parameters
    ----------
    sharpness:
        Slope of the confidence→accuracy logistic curve.
    confidence_noise:
        Standard deviation of the noise between an object's visibility and the
        reported confidence (models the detector's imperfect self-assessment).
    per_category_bias:
        Additive visibility bias per category (traffic lights are small and
        harder; cars are large and easier).
    domain_gap:
        Residual domain-dependent shift of the accuracy curve.  Near zero by
        default: the paper's finding is that the detector behaves consistently
        across simulation and reality.
    """

    sharpness: float = 6.0
    confidence_noise: float = 0.12
    per_category_bias: dict = field(default_factory=lambda: {"car": 0.05, "pedestrian": -0.02, "traffic_light": -0.07})
    domain_gap: float = 0.02
    detection_rate: float = 0.96

    # ------------------------------------------------------------------ #
    def _accuracy_probability(self, confidence: float, domain: str) -> float:
        """P(correct | confidence, domain): shared logistic curve + tiny domain shift."""
        shift = self.domain_gap if domain == "real" else 0.0
        logit = self.sharpness * (confidence - 0.35) - shift
        return float(1.0 / (1.0 + np.exp(-logit)) * 0.97 + 0.02)

    def detect_object(self, scene: Scene, obj: SceneObject, rng: np.random.Generator) -> Detection | None:
        """Detect one object; returns None when the detector misses it entirely."""
        if rng.random() > self.detection_rate:
            return None
        visibility = obj.visibility() + self.per_category_bias.get(obj.category, 0.0) - 0.25 * scene.clutter
        confidence = float(np.clip(rng.normal(visibility, self.confidence_noise), 0.01, 0.99))
        correct = bool(rng.random() < self._accuracy_probability(confidence, scene.domain))
        return Detection(
            category=obj.category,
            confidence=confidence,
            correct=correct,
            domain=scene.domain,
            weather=scene.weather,
        )

    def detect_scene(self, scene: Scene, rng: np.random.Generator | int | None = None) -> list:
        """All detections for one scene."""
        rng = seeded_rng(rng)
        detections = []
        for obj in scene.objects:
            detection = self.detect_object(scene, obj, rng)
            if detection is not None:
                detections.append(detection)
        return detections

    def detect_dataset(self, scenes, seed: int | None = None) -> list:
        """Detections for a whole dataset of scenes."""
        rng = seeded_rng(seed)
        detections: list[Detection] = []
        for scene in scenes:
            detections.extend(self.detect_scene(scene, rng))
        return detections


def detection_accuracy(detections) -> float:
    """Overall fraction of correct detections."""
    detections = list(detections)
    if not detections:
        return 0.0
    return sum(1 for d in detections if d.correct) / len(detections)
