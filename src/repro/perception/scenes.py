"""Synthetic driving scenes for the perception study (Figures 12 and 13).

The paper compares a vision model's detection behaviour on images rendered by
Carla ("simulation") against real-world images from NuImages ("real").  We do
not have either corpus offline, so this module generates *synthetic scenes*:
collections of objects whose visual attributes (apparent size, occlusion,
contrast, clutter) are drawn from domain- and weather-dependent distributions.
The two domains differ in their attribute marginals — real images are more
cluttered and lower-contrast — which is exactly the structure needed to ask
the paper's question: does detection accuracy, *conditioned on the detector's
confidence*, coincide across domains?
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.utils.rng import seeded_rng

#: Object categories of Figure 12.
CATEGORIES: tuple = ("car", "pedestrian", "traffic_light")

#: Weather / lighting conditions of Figure 13.
WEATHER_CONDITIONS: tuple = ("sunny", "cloudy", "rain", "night")

#: Visibility penalty applied per weather condition (0 = unaffected).
_WEATHER_PENALTY: dict = {"sunny": 0.0, "cloudy": 0.06, "rain": 0.16, "night": 0.24}

#: Domain-level attribute shifts: the real-world domain has more clutter and
#: occlusion and lower contrast than the simulator's clean renders.
_DOMAIN_SHIFT: dict = {
    "simulation": {"occlusion": 0.00, "contrast": 0.05, "clutter": 0.0},
    "real": {"occlusion": 0.08, "contrast": -0.07, "clutter": 0.12},
}


@dataclass(frozen=True)
class SceneObject:
    """One annotated object in a scene."""

    category: str
    size: float        # apparent size in [0, 1] (fraction of image height)
    occlusion: float   # fraction occluded in [0, 1]
    contrast: float    # local contrast in [0, 1]

    def visibility(self) -> float:
        """A scalar in [0, 1] summarising how easy the object is to detect."""
        return float(np.clip(0.55 * self.size + 0.3 * self.contrast + 0.15 * (1.0 - self.occlusion), 0.0, 1.0))


@dataclass
class Scene:
    """A synthetic image: a domain, weather condition, clutter level and objects."""

    domain: str
    weather: str
    clutter: float
    objects: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.objects)


def generate_scene(domain: str, *, weather: str | None = None, seed=None) -> Scene:
    """Generate one scene of the requested domain."""
    if domain not in _DOMAIN_SHIFT:
        raise SimulationError(f"unknown domain {domain!r}; expected 'simulation' or 'real'")
    rng = seeded_rng(seed)
    weather = weather or str(rng.choice(WEATHER_CONDITIONS))
    if weather not in _WEATHER_PENALTY:
        raise SimulationError(f"unknown weather {weather!r}")
    shift = _DOMAIN_SHIFT[domain]
    penalty = _WEATHER_PENALTY[weather]

    num_objects = int(rng.integers(2, 7))
    objects = []
    for _ in range(num_objects):
        category = str(rng.choice(CATEGORIES, p=[0.5, 0.3, 0.2]))
        base_size = {"car": 0.35, "pedestrian": 0.18, "traffic_light": 0.12}[category]
        size = float(np.clip(rng.normal(base_size, 0.1), 0.03, 1.0))
        occlusion = float(np.clip(rng.beta(1.6, 5.0) + shift["occlusion"] + 0.3 * shift["clutter"], 0.0, 0.95))
        contrast = float(np.clip(rng.normal(0.62 + shift["contrast"] - penalty, 0.12), 0.05, 1.0))
        objects.append(SceneObject(category=category, size=size, occlusion=occlusion, contrast=contrast))
    return Scene(domain=domain, weather=weather, clutter=float(np.clip(0.3 + shift["clutter"] + penalty, 0, 1)), objects=objects)


def generate_dataset(domain: str, num_scenes: int, *, weather: str | None = None, seed: int | None = None) -> list:
    """Generate a dataset of scenes (the Carla-extract or NuImages stand-in)."""
    if num_scenes <= 0:
        raise SimulationError(f"num_scenes must be positive, got {num_scenes}")
    rng = seeded_rng(seed)
    return [generate_scene(domain, weather=weather, seed=rng) for _ in range(num_scenes)]
