"""Confidence-accuracy calibration of the detector (Figure 12).

Follows the confidence-calibration procedure the paper cites (Yang et al.,
2023): group detections by confidence, compute the empirical accuracy per
confidence bin, and produce a smoothed estimate of the confidence→accuracy
mapping.  Figure 12 plots that mapping separately for the simulation and the
real-world dataset, per object category and overall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perception.scenes import CATEGORIES

#: The confidence levels of Figure 12's x-axis.
DEFAULT_BIN_CENTERS: tuple = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)


@dataclass
class CalibrationCurve:
    """The confidence→accuracy mapping for one (domain, category) slice."""

    domain: str
    category: str
    bin_centers: np.ndarray
    accuracies: np.ndarray        # empirical accuracy per bin (NaN when empty)
    counts: np.ndarray            # detections per bin
    smoothed: np.ndarray          # kernel-smoothed estimate

    def as_rows(self) -> list:
        """``(confidence, accuracy, smoothed, count)`` rows (printable table)."""
        rows = []
        for center, accuracy, smooth, count in zip(self.bin_centers, self.accuracies, self.smoothed, self.counts):
            rows.append((float(center), float(accuracy), float(smooth), int(count)))
        return rows


def _bin_accuracy(confidences: np.ndarray, correct: np.ndarray, centers: np.ndarray) -> tuple:
    """Empirical accuracy and count per confidence bin (nearest-center binning)."""
    accuracies = np.full(len(centers), np.nan)
    counts = np.zeros(len(centers), dtype=int)
    if confidences.size == 0:
        return accuracies, counts
    assignment = np.argmin(np.abs(confidences[:, None] - centers[None, :]), axis=1)
    for index in range(len(centers)):
        mask = assignment == index
        counts[index] = int(mask.sum())
        if counts[index] > 0:
            accuracies[index] = float(correct[mask].mean())
    return accuracies, counts


def _smooth(confidences: np.ndarray, correct: np.ndarray, centers: np.ndarray, bandwidth: float = 0.12) -> np.ndarray:
    """Nadaraya-Watson (Gaussian-kernel) smoothed accuracy estimate."""
    smoothed = np.full(len(centers), np.nan)
    if confidences.size == 0:
        return smoothed
    for index, center in enumerate(centers):
        weights = np.exp(-0.5 * ((confidences - center) / bandwidth) ** 2)
        total = weights.sum()
        if total > 1e-9:
            smoothed[index] = float((weights * correct).sum() / total)
    return smoothed


def calibration_curve(
    detections,
    *,
    domain: str,
    category: str | None = None,
    bin_centers=DEFAULT_BIN_CENTERS,
) -> CalibrationCurve:
    """Compute the calibration curve of one domain (optionally one category)."""
    centers = np.asarray(bin_centers, dtype=np.float64)
    selected = [d for d in detections if d.domain == domain and (category is None or d.category == category)]
    confidences = np.asarray([d.confidence for d in selected], dtype=np.float64)
    correct = np.asarray([1.0 if d.correct else 0.0 for d in selected], dtype=np.float64)
    accuracies, counts = _bin_accuracy(confidences, correct, centers)
    smoothed = _smooth(confidences, correct, centers)
    return CalibrationCurve(
        domain=domain,
        category=category or "overall",
        bin_centers=centers,
        accuracies=accuracies,
        counts=counts,
        smoothed=smoothed,
    )


@dataclass
class CalibrationComparison:
    """Simulation-vs-real calibration curves for every category plus overall."""

    curves: dict = field(default_factory=dict)   # (domain, category) -> CalibrationCurve

    def curve(self, domain: str, category: str = "overall") -> CalibrationCurve:
        return self.curves[(domain, category)]

    def max_gap(self, category: str = "overall", *, min_count: int = 12) -> float:
        """Largest |sim - real| smoothed-accuracy difference over populated bins.

        Bins with fewer than ``min_count`` detections in either domain are
        ignored — their empirical accuracy is too noisy to compare.
        """
        sim_curve = self.curve("simulation", category)
        real_curve = self.curve("real", category)
        sim, real = sim_curve.smoothed, real_curve.smoothed
        populated = (sim_curve.counts >= min_count) & (real_curve.counts >= min_count)
        valid = populated & ~(np.isnan(sim) | np.isnan(real))
        if not valid.any():
            return float("nan")
        return float(np.max(np.abs(sim[valid] - real[valid])))

    def is_consistent(self, tolerance: float = 0.15, categories=None) -> bool:
        """The paper's Section-5.3 criterion: curves coincide within tolerance."""
        categories = list(categories) if categories is not None else ["overall", *CATEGORIES]
        gaps = [self.max_gap(category) for category in categories]
        return all(np.isnan(gap) or gap <= tolerance for gap in gaps)


def compare_domains(detections, *, bin_centers=DEFAULT_BIN_CENTERS) -> CalibrationComparison:
    """Build the full Figure-12 comparison from a pooled detection list."""
    comparison = CalibrationComparison()
    for domain in ("simulation", "real"):
        comparison.curves[(domain, "overall")] = calibration_curve(detections, domain=domain, bin_centers=bin_centers)
        for category in CATEGORIES:
            comparison.curves[(domain, category)] = calibration_curve(
                detections, domain=domain, category=category, bin_centers=bin_centers
            )
    return comparison
