"""Perception-in-the-loop grounding: noisy observation filters for the simulator.

Section 5.3's argument is that the controller's decisions depend only on
visual observations; if the vision model behaves consistently in simulation
and reality the verified controller transfers.  This module closes that loop
inside the reproduction: it turns the perfect observations of the simulator
into *detected* observations with miss / false-positive noise derived from the
simulated detector, and plugs into
:class:`repro.sim.executor.ControllerExecutor` as its ``observation_filter``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.driving.propositions import DRIVING_PROPOSITIONS, PEDESTRIAN_PROPOSITIONS
from repro.utils.validation import check_probability

#: Which detector category each proposition's evidence comes from.
PROPOSITION_CATEGORY: dict = {
    "green_traffic_light": "traffic_light",
    "green_left_turn_light": "traffic_light",
    "flashing_left_turn_light": "traffic_light",
    "opposite_car": "car",
    "car_from_left": "car",
    "car_from_right": "car",
    "pedestrian_at_left": "pedestrian",
    "pedestrian_at_right": "pedestrian",
    "pedestrian_in_front": "pedestrian",
    "stop_sign": "traffic_light",
    "pedestrian": "pedestrian",
}


@dataclass
class PerceptionNoiseModel:
    """Per-category miss and false-positive rates of the perception stack."""

    miss_rate: dict = field(default_factory=lambda: {"car": 0.04, "pedestrian": 0.06, "traffic_light": 0.05})
    false_positive_rate: dict = field(default_factory=lambda: {"car": 0.01, "pedestrian": 0.01, "traffic_light": 0.01})

    def __post_init__(self) -> None:
        for name, table in (("miss_rate", self.miss_rate), ("false_positive_rate", self.false_positive_rate)):
            for category, value in table.items():
                check_probability(f"{name}[{category}]", value)

    def __call__(self, observations: frozenset, rng: np.random.Generator) -> frozenset:
        """Apply misses and false positives to a true observation set."""
        detected = set()
        for proposition in observations:
            category = PROPOSITION_CATEGORY.get(proposition, "car")
            if rng.random() >= self.miss_rate.get(category, 0.0):
                detected.add(proposition)
        for proposition in DRIVING_PROPOSITIONS:
            if proposition in observations or proposition == "pedestrian":
                continue
            category = PROPOSITION_CATEGORY.get(proposition, "car")
            if rng.random() < self.false_positive_rate.get(category, 0.0):
                detected.add(proposition)
        # Keep the derived "any pedestrian" proposition consistent.
        if detected & set(PEDESTRIAN_PROPOSITIONS):
            detected.add("pedestrian")
        else:
            detected.discard("pedestrian")
        return frozenset(detected)


def perfect_perception(observations: frozenset, rng: np.random.Generator) -> frozenset:  # noqa: ARG001
    """The identity observation filter (no perception noise)."""
    return frozenset(observations)
