"""repro — a full reproduction of "Fine-Tuning Language Models Using Formal
Methods Feedback" (DPO-AF, MLSys 2024) built from scratch in Python.

Sub-packages
------------
``repro.automata``
    Transition-system world models, FSA controllers, products, Büchi automata.
``repro.logic``
    LTL: AST, parser, NNF, LTL→Büchi translation, finite-trace semantics.
``repro.modelcheck``
    The NuSMV-substitute LTL model checker and an SMV-like module language.
``repro.glm2fsa``
    Semantic parsing and alignment of step-by-step responses into controllers.
``repro.driving``
    The autonomous-driving domain: vocabulary, rule book, scenarios, tasks.
``repro.lm`` / ``repro.dpo``
    The numpy language model (with LoRA) and the DPO trainer.
``repro.feedback``
    Formal-verification and empirical (trace-based) feedback plus ranking.
``repro.sim`` / ``repro.perception``
    The Carla-substitute simulator and the simulated perception stack.
``repro.serving``
    Batched, cached, deduplicated feedback scoring (the verification service).
``repro.core``
    The end-to-end DPO-AF pipeline and its configuration.
"""

from repro.core.config import PipelineConfig, paper_scale_config, quick_pipeline_config
from repro.core.pipeline import DPOAFPipeline

__version__ = "1.0.0"

__all__ = ["DPOAFPipeline", "PipelineConfig", "paper_scale_config", "quick_pipeline_config", "__version__"]
