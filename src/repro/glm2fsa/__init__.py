"""GLM2FSA: from language-model step text to FSA controllers (Section 4.1)."""

from repro.glm2fsa.aligner import align_response, align_step, find_action, find_propositions
from repro.glm2fsa.builder import build_controller, build_controller_from_text
from repro.glm2fsa.grammar import (
    ActionStep,
    Condition,
    ConditionLiteral,
    ConditionalStep,
    ObserveStep,
    ParsedResponse,
    Step,
)
from repro.glm2fsa.semantic_parser import parse_aligned_step, parse_response, parse_step, strip_numbering

__all__ = [
    "align_response",
    "align_step",
    "find_action",
    "find_propositions",
    "build_controller",
    "build_controller_from_text",
    "ActionStep",
    "Condition",
    "ConditionLiteral",
    "ConditionalStep",
    "ObserveStep",
    "ParsedResponse",
    "Step",
    "parse_aligned_step",
    "parse_response",
    "parse_step",
    "strip_numbering",
]
