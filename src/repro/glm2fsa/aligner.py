"""Alignment of free-text phrases to the defined propositions and actions.

The paper's second prompt ("Align the following steps to the set of Boolean
propositions {...} and actions {...}") asks the language model to rewrite its
own steps using the canonical vocabulary.  In this reproduction the alignment
is a deterministic lexicon lookup: it is the behaviour the fine-tuned model is
supposed to converge to, and making it deterministic removes one source of
noise from the feedback signal while exercising the same code path (raw step
text in, vocabulary-aligned step text out).

The lexicon intentionally covers many phrasings (e.g. "oncoming traffic",
"cars coming from the opposite direction") so the semantic parser tolerates
the lexical variety present in the synthetic response corpus.
"""

from __future__ import annotations

import re

from repro.errors import AlignmentError

#: Phrase → environment proposition.  Longest phrases are matched first.
PROPOSITION_LEXICON: dict = {
    "green traffic light": "green_traffic_light",
    "traffic light is green": "green_traffic_light",
    "traffic light turns green": "green_traffic_light",
    "light is green": "green_traffic_light",
    "green light": "green_traffic_light",
    "green left turn light": "green_left_turn_light",
    "left turn light is green": "green_left_turn_light",
    "left turn light turns green": "green_left_turn_light",
    "green left turn arrow": "green_left_turn_light",
    "green arrow": "green_left_turn_light",
    "left turn light": "green_left_turn_light",
    "flashing left turn light": "flashing_left_turn_light",
    "opposite car": "opposite_car",
    "oncoming traffic": "opposite_car",
    "oncoming car": "opposite_car",
    "oncoming cars": "opposite_car",
    "oncoming vehicle": "opposite_car",
    "oncoming vehicles": "opposite_car",
    "traffic to clear": "opposite_car",
    "car ahead": "opposite_car",
    "car in front": "opposite_car",
    "car from the left": "car_from_left",
    "car from left": "car_from_left",
    "cars from the left": "car_from_left",
    "car approaching from the left": "car_from_left",
    "traffic from the left": "car_from_left",
    "traffic from your left": "car_from_left",
    "left approaching car": "car_from_left",
    "car on the left": "car_from_left",
    "car from the right": "car_from_right",
    "car from right": "car_from_right",
    "cars from the right": "car_from_right",
    "traffic from the right": "car_from_right",
    "car approaching from the right": "car_from_right",
    "car on the right": "car_from_right",
    "pedestrian at left": "pedestrian_at_left",
    "pedestrian on the left": "pedestrian_at_left",
    "pedestrian on your left": "pedestrian_at_left",
    "pedestrians on the left": "pedestrian_at_left",
    "pedestrians on your left": "pedestrian_at_left",
    "pedestrian at right": "pedestrian_at_right",
    "pedestrian on the right": "pedestrian_at_right",
    "pedestrian on your right": "pedestrian_at_right",
    "pedestrians on the right": "pedestrian_at_right",
    "pedestrians on your right": "pedestrian_at_right",
    "right side pedestrian": "pedestrian_at_right",
    "pedestrian in front": "pedestrian_in_front",
    "pedestrian ahead": "pedestrian_in_front",
    "pedestrian crossing in front": "pedestrian_in_front",
    "pedestrian in the crosswalk": "pedestrian_in_front",
    "stop sign": "stop_sign",
    "pedestrian": "pedestrian",
    "pedestrians": "pedestrian",
    "traffic light": "green_traffic_light",  # "observe the traffic light"
    "intersection is clear": "intersection_clear",  # unaligned marker (see below)
}

#: Phrase → controller action.  Longest phrases are matched first.
ACTION_LEXICON: dict = {
    "come to a complete stop": "stop",
    "come to a stop": "stop",
    "remain stopped": "stop",
    "stay stopped": "stop",
    "stop": "stop",
    "halt": "stop",
    "wait": "stop",
    "yield": "stop",
    "turn your vehicle left": "turn_left",
    "execute the action turn left": "turn_left",
    "make the left turn": "turn_left",
    "turn left": "turn_left",
    "turn your vehicle right": "turn_right",
    "execute the action turn right": "turn_right",
    "make the right turn": "turn_right",
    "proceed to turn right": "turn_right",
    "turn right": "turn_right",
    "execute the action go straight": "go_straight",
    "go straight": "go_straight",
    "proceed straight": "go_straight",
    "drive straight": "go_straight",
    "continue straight": "go_straight",
    "proceed through the intersection": "go_straight",
    "drive through the intersection": "go_straight",
    "start moving forward": "go_straight",
    "move forward": "go_straight",
    "keep moving": "go_straight",
    "enter the roundabout": "go_straight",
    "proceed into the roundabout": "go_straight",
    "proceed": "go_straight",
    "accelerate": "go_straight",
}

#: Verbs introducing a pure observation (no control action).
OBSERVE_VERBS: tuple = (
    "observe",
    "check",
    "look for",
    "look to",
    "look at",
    "watch for",
    "monitor",
    "scan for",
)

#: Cues that negate the following proposition phrase.
NEGATION_CUES: tuple = (
    "no",
    "not",
    "without",
    "clear of",
    "absent",
    "free of",
    "none",
)

#: Propositions the lexicon may emit that are *not* part of the driving
#: vocabulary; the aligner maps them to nothing (they are dropped with a
#: warning flag) — mirrors the paper's remark that alignment can fail.
UNALIGNED_MARKERS: frozenset = frozenset({"intersection_clear"})


def _phrase_pattern(phrase: str) -> re.Pattern:
    return re.compile(r"\b" + re.escape(phrase) + r"\b")


_SORTED_PROPOSITIONS = sorted(PROPOSITION_LEXICON, key=len, reverse=True)
_SORTED_ACTIONS = sorted(ACTION_LEXICON, key=len, reverse=True)


#: Patterns after a proposition phrase that negate it ("the light is not green").
_POST_NEGATION_RE = re.compile(
    r"^\s*(?:is|are|has|have)?\s*(?:not|n't)\b|^\s*(?:is|are)\s+(?:off|absent|gone|clear)\b"
)


def find_propositions(text: str) -> list:
    """Find proposition mentions in ``text``.

    Returns a list of ``(start_index, proposition, negated)`` triples ordered
    by position.  Longest-phrase-first matching prevents "traffic light" from
    shadowing "green traffic light"; negation is detected from cues shortly
    before ("no car from left") or after ("the light is not green") the phrase.
    """
    text = text.lower().replace("-", " ")
    matches: list = []
    claimed: list = []  # character spans already matched

    def overlaps(start: int, end: int) -> bool:
        return any(not (end <= s or start >= e) for s, e in claimed)

    for phrase in _SORTED_PROPOSITIONS:
        for match in _phrase_pattern(phrase).finditer(text):
            start, end = match.span()
            if overlaps(start, end):
                continue
            claimed.append((start, end))
            proposition = PROPOSITION_LEXICON[phrase]
            negated = _is_negated(text, start, end)
            matches.append((start, proposition, negated))
    matches.sort(key=lambda item: item[0])
    return matches


def _is_negated(text: str, start: int, end: int) -> bool:
    """True if a negation cue occurs shortly before or right after the phrase."""
    window = text[max(0, start - 28): start]
    window_tokens = window.replace(",", " ").split()
    tail = " ".join(window_tokens[-4:])
    if any(re.search(r"\b" + re.escape(cue) + r"\b", tail) for cue in NEGATION_CUES):
        return True
    return bool(_POST_NEGATION_RE.search(text[end: end + 24]))


def find_action(text: str) -> str | None:
    """The controller action mentioned in ``text``, or None.

    The *earliest* mention wins (ties broken towards the longer phrase), so
    "turn left and proceed through the intersection" maps to ``turn_left``
    rather than to the later "proceed ..." phrase.
    """
    text = text.lower().replace("-", " ")
    best: tuple | None = None
    for phrase in _SORTED_ACTIONS:
        match = _phrase_pattern(phrase).search(text)
        if match is None:
            continue
        key = (match.start(), -len(phrase))
        if best is None or key < best[0]:
            best = (key, ACTION_LEXICON[phrase])
    return None if best is None else best[1]


def is_observation(text: str) -> bool:
    """True if the sentence is an observation/check rather than a control action."""
    text = text.lower().strip()
    return any(text.startswith(verb) or f" {verb} " in f" {text} " for verb in OBSERVE_VERBS)


def _aligned_literals(text: str) -> list:
    """Proposition literals of a clause, as ``"prop"`` / ``"no prop"`` strings."""
    parts = []
    for _, proposition, negated in find_propositions(text):
        if proposition in UNALIGNED_MARKERS:
            continue
        parts.append(("no " if negated else "") + proposition)
    return parts


def _split_conditional(text: str) -> tuple | None:
    """Split an "if ..." / "when ..." sentence into (condition, consequence) clauses."""
    match = re.search(r"\b(?:if|when)\b", text)
    if not match:
        return None
    remainder = text[match.end():]
    # Prefer an explicit "then"; otherwise split at the first comma.
    then_match = re.search(r"\bthen\b", remainder)
    if then_match:
        return remainder[: then_match.start()], remainder[then_match.end():]
    comma = remainder.find(",")
    if comma >= 0:
        return remainder[:comma], remainder[comma + 1:]
    return remainder, ""


def align_step(text: str) -> str:
    """Rewrite one step so propositions/actions use the canonical vocabulary.

    This is the deterministic stand-in for the paper's second (alignment)
    query, e.g. "Observe the state of the green traffic light." becomes
    "observe green_traffic_light" and "If there is no car from the left, check
    pedestrians on your right." becomes
    "if no car_from_left , observe pedestrian_at_right".
    """
    lowered = text.lower().replace("-", " ").strip().rstrip(".")

    conditional = _split_conditional(lowered)
    if conditional is not None:
        condition_clause, consequence_clause = conditional
        condition_parts = _aligned_literals(condition_clause)
        condition = " and ".join(condition_parts) if condition_parts else "true"
        action = find_action(consequence_clause)
        if action is not None and not is_observation(consequence_clause):
            consequence = action
        else:
            observed = _aligned_literals(consequence_clause)
            consequence = "observe " + " and ".join(observed) if observed else (action or "observe")
        return f"if {condition} , {consequence}"

    action = find_action(lowered)
    prop_parts = _aligned_literals(lowered)
    if action is not None and not is_observation(lowered):
        return action
    if prop_parts:
        return "observe " + " and ".join(prop_parts)
    if action is not None:
        return action
    raise AlignmentError(f"cannot align step to the vocabulary: {text!r}")


def align_response(text: str) -> str:
    """Align every numbered step of a response (blank lines are preserved)."""
    aligned_lines = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        body = re.sub(r"^\d+[.)]\s*", "", stripped)
        if not body:
            continue
        aligned_lines.append(align_step(body))
    return "\n".join(f"{i + 1}. {line}" for i, line in enumerate(aligned_lines))
