"""Semantic parsing of (aligned) step descriptions into structured steps.

The parser consumes the canonical form produced by
:func:`repro.glm2fsa.aligner.align_step`::

    observe green_traffic_light
    if no car_from_left and no pedestrian_at_right , turn_right
    if pedestrian_in_front , stop
    turn_right

and produces :class:`~repro.glm2fsa.grammar.ObserveStep`,
:class:`~repro.glm2fsa.grammar.ConditionalStep` and
:class:`~repro.glm2fsa.grammar.ActionStep` objects.  Raw (unaligned) responses
are accepted too: they are passed through the aligner first, mirroring the
paper's two-stage prompting (steps, then alignment).
"""

from __future__ import annotations

import re

from repro.driving.propositions import DRIVING_ACTIONS
from repro.errors import AlignmentError
from repro.glm2fsa.aligner import align_step
from repro.glm2fsa.grammar import (
    ActionStep,
    Condition,
    ConditionLiteral,
    ConditionalStep,
    ObserveStep,
    ParsedResponse,
    Step,
)

_NUMBER_PREFIX_RE = re.compile(r"^\d+[.)]\s*")
_ACTIONS = set(DRIVING_ACTIONS)


def strip_numbering(line: str) -> str:
    """Remove a leading ``"3. "`` / ``"3) "`` numbering prefix."""
    return _NUMBER_PREFIX_RE.sub("", line.strip())


def _parse_literals(text: str) -> tuple[tuple, str]:
    """Parse ``"no a and b"`` / ``"a or b"`` into literals plus the connective."""
    text = text.strip()
    if not text or text == "true":
        return (), "and"
    connective = "or" if re.search(r"\bor\b", text) else "and"
    raw_parts = re.split(r"\band\b|\bor\b", text)
    literals = []
    for part in raw_parts:
        part = part.strip().strip(",")
        if not part:
            continue
        negated = part.startswith("no ") or part.startswith("not ")
        name = part[3:].strip() if negated else part
        name = name.replace("not ", "").strip()
        if not name:
            continue
        literals.append(ConditionLiteral(name, positive=not negated))
    return tuple(literals), connective


def parse_aligned_step(text: str) -> Step:
    """Parse one canonical (aligned) step description."""
    text = text.strip().rstrip(".").strip()
    if not text:
        raise AlignmentError("empty step description")

    if text.startswith("if "):
        body = text[3:]
        if "," in body:
            condition_text, consequence = body.split(",", 1)
        else:
            # Fall back to splitting before the final action/observe token.
            match = re.search(r"\b(" + "|".join(sorted(_ACTIONS | {"observe"}, key=len, reverse=True)) + r")\b", body)
            if not match:
                raise AlignmentError(f"conditional step has no consequence: {text!r}")
            condition_text, consequence = body[: match.start()], body[match.start():]
        literals, connective = _parse_literals(condition_text)
        consequence = consequence.strip()
        if consequence.startswith("observe"):
            observed_literals, _ = _parse_literals(consequence[len("observe"):])
            observed = tuple(lit.proposition for lit in observed_literals)
            return ConditionalStep(Condition(literals, connective), action=None, observed=observed, text=text)
        action = consequence.split()[0] if consequence else ""
        if action not in _ACTIONS:
            raise AlignmentError(f"unknown action {action!r} in step {text!r}")
        return ConditionalStep(Condition(literals, connective), action=action, text=text)

    if text.startswith("observe"):
        observed_literals, _ = _parse_literals(text[len("observe"):])
        observed = tuple(lit.proposition for lit in observed_literals)
        return ObserveStep(propositions=observed, text=text)

    first_word = text.split()[0]
    if first_word in _ACTIONS:
        return ActionStep(action=first_word, text=text)
    raise AlignmentError(f"cannot parse aligned step: {text!r}")


def parse_step(text: str, *, aligned: bool = False) -> Step:
    """Parse one step; align raw prose first unless ``aligned`` is True."""
    canonical = text if aligned else align_step(strip_numbering(text))
    return parse_aligned_step(canonical)


def parse_response(text: str, *, task: str = "", aligned: bool = False) -> ParsedResponse:
    """Parse a whole numbered response into a :class:`ParsedResponse`.

    Lines that cannot be aligned are skipped (the paper notes alignment can
    fail; an unalignable step simply contributes nothing to the controller,
    which typically lowers the verification score of that response).
    """
    steps = []
    for line in text.splitlines():
        stripped = strip_numbering(line)
        if not stripped:
            continue
        try:
            steps.append(parse_step(stripped, aligned=aligned))
        except AlignmentError:
            continue
    return ParsedResponse(task=task, steps=steps, raw_text=text)
