"""FSA construction from parsed steps — the GLM2FSA algorithm (Yang et al. 2022).

One controller state is created per step (plus a final state); transition
rules follow the paper's construction, with two conventions made explicit:

* **Wait action.**  While a step's condition is not met (or during a pure
  observation) the vehicle holds, i.e. the transition outputs ``stop`` by
  default.  This matches the fine-tuned controllers in Figures 7/18, whose
  "condition not met" branches emit ``stop``; passing ``wait_action=None``
  reproduces the ε (no-operation) branches of the pre-fine-tuning figures.
* **Guarding steps.**  A conditional step whose consequence is ``stop``
  ("If the left-turn light is not green, then stop") keeps stopping *while*
  its condition holds and advances once the condition clears — the shape of
  the fine-tuned left-turn controller in Figure 18.
"""

from __future__ import annotations

from typing import Iterable

from repro.automata.fsa import FSAController
from repro.automata.guards import TRUE
from repro.automata.alphabet import Vocabulary
from repro.driving.propositions import DRIVING_VOCABULARY
from repro.errors import AlignmentError
from repro.glm2fsa.grammar import ActionStep, ConditionalStep, ObserveStep, ParsedResponse, Step
from repro.glm2fsa.semantic_parser import parse_response


def build_controller(
    steps: Iterable[Step] | ParsedResponse,
    *,
    name: str = "controller",
    vocabulary: Vocabulary = DRIVING_VOCABULARY,
    wait_action: str | None = "stop",
) -> FSAController:
    """Build an FSA controller from parsed steps (the GLM2FSA construction).

    Parameters
    ----------
    steps:
        Parsed steps (or a :class:`ParsedResponse`).
    wait_action:
        Output symbol used while waiting/observing; ``None`` gives the ε
        output symbol.

    Raises
    ------
    AlignmentError
        If there are no usable steps (an empty controller cannot be verified).
    """
    if isinstance(steps, ParsedResponse):
        step_list = list(steps.steps)
    else:
        step_list = list(steps)
    if not step_list:
        raise AlignmentError(f"response for {name!r} contains no parseable steps")

    controller = FSAController(name=name, vocabulary=vocabulary)
    states = [controller.add_state(f"q{i}") for i in range(len(step_list) + 1)]
    controller.initial_state = states[0]

    for index, step in enumerate(step_list):
        state, next_state = states[index], states[index + 1]
        if isinstance(step, ObserveStep):
            controller.add_transition(state, TRUE, wait_action, next_state)
        elif isinstance(step, ActionStep):
            controller.add_transition(state, TRUE, step.action, next_state)
        elif isinstance(step, ConditionalStep):
            guard = step.condition.to_guard()
            negated = step.condition.negated_guard()
            if step.action == "stop":
                # Guarding step: keep stopping while the condition holds.
                controller.add_transition(state, guard, "stop", state)
                controller.add_transition(state, negated, wait_action, next_state)
            elif step.action is not None:
                controller.add_transition(state, guard, step.action, next_state)
                controller.add_transition(state, negated, wait_action, state)
            else:
                # Conditional observation ("if no car from left, check ...").
                controller.add_transition(state, guard, wait_action, next_state)
                controller.add_transition(state, negated, wait_action, state)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step type {step!r}")

    controller.validate()
    return controller


def build_controller_from_text(
    text: str,
    *,
    task: str = "",
    name: str | None = None,
    vocabulary: Vocabulary = DRIVING_VOCABULARY,
    wait_action: str | None = "stop",
    aligned: bool = False,
) -> FSAController:
    """Parse a raw response and build its controller in one call."""
    parsed = parse_response(text, task=task, aligned=aligned)
    return build_controller(
        parsed,
        name=name or (task or "controller"),
        vocabulary=vocabulary,
        wait_action=wait_action,
    )
