"""Structured step representations produced by the GLM2FSA semantic parser.

A language-model response is a numbered list of step descriptions.  Semantic
parsing (Section 4.1, "Controller Construction") turns each step into one of
three structured forms:

* :class:`ObserveStep` — "Observe the traffic light." (no control action)
* :class:`ActionStep` — "Turn right." (unconditional action)
* :class:`ConditionalStep` — "If there is no car from left, turn right."
  (a guarded action or observation)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal as LiteralType

from repro.automata.guards import Guard, GuardNot, atom, conj, disj, TRUE


@dataclass(frozen=True)
class ConditionLiteral:
    """One literal of a step condition: a proposition and its polarity."""

    proposition: str
    positive: bool = True

    def to_guard(self) -> Guard:
        guard = atom(self.proposition)
        return guard if self.positive else GuardNot(guard)

    def __str__(self) -> str:
        return self.proposition if self.positive else f"no {self.proposition}"


@dataclass(frozen=True)
class Condition:
    """A step condition: literals joined by ``and`` or ``or``."""

    literals: tuple = ()
    connective: LiteralType["and", "or"] = "and"

    def to_guard(self) -> Guard:
        if not self.literals:
            return TRUE
        guards = [lit.to_guard() for lit in self.literals]
        return conj(*guards) if self.connective == "and" else disj(*guards)

    def negated_guard(self) -> Guard:
        return GuardNot(self.to_guard())

    def propositions(self) -> frozenset:
        return frozenset(lit.proposition for lit in self.literals)

    def __str__(self) -> str:
        joiner = f" {self.connective} "
        return joiner.join(str(lit) for lit in self.literals) or "true"


@dataclass(frozen=True)
class ObserveStep:
    """An observation step: look at / check some propositions, no action."""

    propositions: tuple = ()
    text: str = ""

    def __str__(self) -> str:
        props = ", ".join(self.propositions) or "environment"
        return f"<observe {props}>"


@dataclass(frozen=True)
class ActionStep:
    """An unconditional action step."""

    action: str
    text: str = ""

    def __str__(self) -> str:
        return f"<{self.action}>"


@dataclass(frozen=True)
class ConditionalStep:
    """A guarded step: if ``condition`` then ``action`` (or observe ``observed``)."""

    condition: Condition
    action: str | None = None
    observed: tuple = ()
    text: str = ""

    @property
    def is_action(self) -> bool:
        return self.action is not None

    def __str__(self) -> str:
        consequence = f"<{self.action}>" if self.action else f"<check {', '.join(self.observed)}>"
        return f"<if> <{self.condition}>, {consequence}"


#: Union type of all step forms.
Step = ObserveStep | ActionStep | ConditionalStep


@dataclass
class ParsedResponse:
    """A fully parsed language-model response: task name plus ordered steps."""

    task: str = ""
    steps: list = field(default_factory=list)
    raw_text: str = ""

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        lines = [f"Parsed response for task {self.task!r}:"]
        lines.extend(f"  {i + 1}. {step}" for i, step in enumerate(self.steps))
        return "\n".join(lines)
