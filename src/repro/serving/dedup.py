"""Response canonicalization and within-batch deduplication.

A freshly pre-trained small model frequently samples the *same* step-by-step
response several times per prompt; template augmentation repeats the library
verbatim every epoch.  Verification feedback depends only on the parsed step
content, so two responses that differ in line endings, numbering whitespace or
trailing blanks induce identical controllers and identical scores.  The
canonical form below normalises exactly those differences — everything the
semantic parser (:func:`repro.glm2fsa.semantic_parser.parse_response`, which
splits on lines and strips each one) provably ignores — so the service can
verify each distinct response once per batch and once per cache lifetime.
"""

from __future__ import annotations


def canonicalize_response(text: str) -> str:
    """Normalise a response to its score-equivalent canonical form.

    Applied transformations (each invisible to the line-based step parser):

    * ``\\r\\n`` / ``\\r`` → ``\\n``;
    * leading/trailing whitespace stripped from every line;
    * empty lines dropped (the parser skips them).

    Whitespace *inside* a line is preserved: the alignment lexicon matches
    phrases with exact single spaces, so collapsing internal runs could map
    two differently-scoring responses onto one canonical form.
    """
    lines = text.replace("\r\n", "\n").replace("\r", "\n").split("\n")
    canonical = [line.strip() for line in lines]
    return "\n".join(line for line in canonical if line)


def first_occurrence(items) -> tuple:
    """Collapse a sequence to its distinct items, preserving first-seen order.

    Returns ``(unique, assignment)`` where ``assignment[i]`` is the index into
    ``unique`` for the ``i``-th input — the scatter map shared by
    :func:`dedupe_responses` and the scheduler's per-key dedup.
    """
    unique: list = []
    index_of: dict = {}
    assignment: list = []
    for item in items:
        if item not in index_of:
            index_of[item] = len(unique)
            unique.append(item)
        assignment.append(index_of[item])
    return unique, assignment


def dedupe_responses(responses) -> tuple:
    """Collapse a batch to its unique canonical responses.

    Returns ``(unique, assignment)`` where ``unique`` is the list of distinct
    canonical forms in first-appearance order and ``assignment[i]`` is the
    index into ``unique`` for the ``i``-th input response — so scores computed
    for ``unique`` scatter back to the original order deterministically::

        unique, assignment = dedupe_responses(batch)
        scores = [score(u) for u in unique]
        per_response = [scores[j] for j in assignment]
    """
    return first_occurrence(canonicalize_response(response) for response in responses)
