"""Configuration of the feedback-serving subsystem.

Lives inside :mod:`repro.serving` (rather than :mod:`repro.core.config`) so
the serving package has no import-time dependency on the pipeline layer; the
core config re-exports :class:`ServingConfig` for callers assembling a
:class:`~repro.core.config.PipelineConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Supported worker-pool backends for scoring cache misses.
BACKENDS: tuple = ("serial", "thread", "process")


@dataclass(frozen=True)
class ServingConfig:
    """How batched feedback scoring is executed.

    Parameters
    ----------
    enabled:
        When False the service scores every job serially with no cache or
        dedup — the bitwise reference path the cached path must match.
    cache_size:
        LRU bound on the result cache (entries are a hash key plus an int).
    backend:
        ``"thread"`` fans cache misses out to a ``ThreadPoolExecutor``;
        ``"process"`` to a ``ProcessPoolExecutor`` whose workers rebuild the
        verification stack once per process (true multi-core parallelism for
        the GIL-bound verification work); ``"serial"`` scores them inline.
        All three produce identical, input-order results.
    max_workers:
        Pool width for the ``"thread"`` and ``"process"`` backends.
    persist_path:
        Optional JSON file the cache is loaded from at startup and flushed to
        by :meth:`~repro.serving.scheduler.FeedbackService.flush`, warming
        later runs.
    shared_cache_dir:
        Optional directory of per-fingerprint cache shards
        (:class:`~repro.serving.cache.CacheDirectory`) shared between the
        pipeline, the benchmarks and the ``repro-serve`` CLI.  At startup the
        service warm-starts from the shard matching its feedback fingerprint;
        ``flush()`` merges its results back.  Composes with ``persist_path``
        (a private single-file cache) — either, both or neither may be set.
    shared_cache_max_entries:
        Optional per-shard entry bound for the shared cache directory.  When
        set, ``flush()`` compacts the directory
        (:meth:`~repro.serving.cache.CacheDirectory.compact`), trimming every
        shard to its newest ``shared_cache_max_entries`` entries so long-lived
        directories stop growing without bound.
    shared_cache_max_bytes:
        Optional total-size bound (bytes) for the shared cache directory.
        When set, ``flush()``-time compaction evicts whole shards, least
        recently written first, until the directory fits.  Composes with
        ``shared_cache_max_entries`` (entries are trimmed before shards are
        evicted); either, both or neither may be set.
    max_inflight_batches:
        Optional back-pressure bound on asynchronous submission: when this
        many batches submitted via
        :meth:`~repro.serving.scheduler.FeedbackService.submit_batch` are
        still unresolved, further ``submit_batch`` calls *block* (and
        ``score_batch_async`` awaits) until the dispatcher drains below the
        bound.  Keeps a producer that samples much faster than verification
        from queueing unbounded work (and the memory that holds it).  The
        time producers spend blocked is recorded as
        ``ServingMetrics.backpressure_seconds``.  ``None`` (default) imposes
        no bound.  A batch is always admitted when nothing is in flight, so a
        single batch can never deadlock against the bound.
    max_inflight_jobs:
        Optional back-pressure bound counted in *jobs* rather than batches,
        for producers with uneven batch sizes.  A submission blocks while the
        jobs already in flight plus its own would exceed the bound (unless
        nothing is in flight — an oversized single batch is admitted rather
        than deadlocked).  Composes with ``max_inflight_batches``; either,
        both or neither may be set.
    worker_retries:
        How many times a *failed* process-backend worker pool (workers died,
        ``BrokenExecutor``) is rebuilt — with the shared jittered-backoff
        policy from :mod:`repro.utils.retry` — before the batch (and every
        later one) degrades to the serial reference loop.  ``0`` (default)
        keeps the historical degrade-on-first-failure behavior.  Scores are
        identical either way; only the parallelism is at stake.
    automata_cache_dir:
        Optional directory for the Büchi construction memo's persisted shard
        (:func:`repro.modelcheck.fastpath.configure_automata_cache`).  The
        service configures the process-wide memo at startup and threads the
        directory through :class:`~repro.serving.backends.WorkerPayload`, so
        freshly forked process-backend workers load the rule book's pruned
        automata from disk instead of re-translating LTL on every init.
        Distinct from ``shared_cache_dir`` (which caches *scores*); this
        caches the automata themselves, keyed on canonical formula text.
    """

    enabled: bool = True
    cache_size: int = 4096
    backend: str = "thread"
    max_workers: int = 4
    persist_path: str | None = None
    shared_cache_dir: str | None = None
    shared_cache_max_entries: int | None = None
    shared_cache_max_bytes: int | None = None
    max_inflight_batches: int | None = None
    max_inflight_jobs: int | None = None
    worker_retries: int = 0
    automata_cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown serving backend {self.backend!r}; known: {BACKENDS}")
        if self.cache_size <= 0:
            raise ValueError(f"cache_size must be positive, got {self.cache_size}")
        if self.max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {self.max_workers}")
        if self.shared_cache_max_entries is not None and self.shared_cache_max_entries <= 0:
            raise ValueError(
                f"shared_cache_max_entries must be positive, got {self.shared_cache_max_entries}"
            )
        if self.shared_cache_max_bytes is not None and self.shared_cache_max_bytes <= 0:
            raise ValueError(
                f"shared_cache_max_bytes must be positive, got {self.shared_cache_max_bytes}"
            )
        if self.shared_cache_dir is None and (
            self.shared_cache_max_entries is not None or self.shared_cache_max_bytes is not None
        ):
            # A bound with nothing to bound would be silently ignored; surface
            # the misconfiguration instead of letting the user believe their
            # cache directory is capped.
            raise ValueError(
                "shared_cache_max_entries/shared_cache_max_bytes require shared_cache_dir"
            )
        if self.max_inflight_batches is not None and self.max_inflight_batches <= 0:
            raise ValueError(
                f"max_inflight_batches must be positive, got {self.max_inflight_batches}"
            )
        if self.max_inflight_jobs is not None and self.max_inflight_jobs <= 0:
            raise ValueError(f"max_inflight_jobs must be positive, got {self.max_inflight_jobs}")
        if self.worker_retries < 0:
            raise ValueError(f"worker_retries must be non-negative, got {self.worker_retries}")
