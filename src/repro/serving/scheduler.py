"""The batched feedback service: dedup → cache → worker pool → scatter.

:class:`FeedbackService` is the single entry point through which the pipeline
(and anything else) scores language-model responses.  A batch of ``(task,
response)`` jobs is canonicalised and deduplicated, cache hits are answered
immediately, and only the remaining unique misses are verified — serially, on
a thread pool, or on a persistent process pool (see
:mod:`repro.serving.backends`) — before results scatter back to the original
submission order.  World models, formal verifiers and empirical evaluators
are built once per scenario and reused across every batch (and, for the
process backend, once per worker process *for the service's whole lifetime*:
the :class:`~repro.serving.backends.WorkerPool` is forked lazily on the first
large cold batch and reused thereafter).  A ``persist_path`` file and/or a
``shared_cache_dir`` of per-fingerprint shards warm-start the cache across
runs.

Two submission styles share one execution path:

* :meth:`FeedbackService.score_batch` — synchronous, returns scores in
  submission order (the reference API);
* :meth:`FeedbackService.submit_batch` — asynchronous: the batch is queued on
  a single dispatcher thread and a :class:`PendingBatch` future handle is
  returned immediately, so a producer can sample batch *k+1* while batch *k*
  verifies.  :func:`as_completed` streams handles as they finish and
  :meth:`FeedbackService.score_batch_async` adapts a submission to
  ``asyncio``.  Batches are *executed* strictly in submission order on the
  one dispatcher thread, so the cache evolves exactly as it would under
  sequential ``score_batch`` calls — async scores are bitwise-identical to
  the synchronous ones.

Asynchronous submission is *bounded*: ``ServingConfig.max_inflight_batches``
/ ``max_inflight_jobs`` apply back-pressure, blocking ``submit_batch`` (and
suspending ``score_batch_async``) while too much submitted work is still
unresolved, so a producer far ahead of verification cannot queue unbounded
batches.  Producer time spent blocked is recorded on
:class:`~repro.serving.metrics.ServingMetrics` as ``backpressure_seconds``.

The dispatcher thread itself is a first-class object: a :class:`Dispatcher`
can be shared by several services (pass it to the :class:`FeedbackService`
constructor), serialising all their batches on one thread so the CLI or the
pipeline can serve multiple task streams without spawning a thread per
service.  Admission across services is round-robin — one batch per service
in rotation, so a chatty service cannot starve another's stream — while each
service's own batches still execute strictly in its submission order (the
property determinism rests on).  A service constructed without one lazily
creates — and owns — a private dispatcher.

A service owns OS resources once the async or process paths are used
(dispatcher thread, worker processes); release them with
:meth:`FeedbackService.close` or by using the service as a context manager.
A *shared* dispatcher outlives the services registered with it and is closed
by whoever constructed it.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import as_completed as _futures_as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.obs import tracer as obs
from repro.feedback.formal import FormalVerifier
from repro.serving.backends import (
    ResponseScorer,
    WorkerPayload,
    WorkerPool,
    run_serial,
    run_thread,
)
from repro.serving.cache import (
    CacheDirectory,
    FeedbackCache,
    cache_key,
    feedback_fingerprint,
    model_digest,
)
from repro.serving.config import ServingConfig
from repro.serving.dedup import canonicalize_response, first_occurrence
from repro.serving.metrics import ServingMetrics
from repro.utils.retry import RetryPolicy


@dataclass(frozen=True)
class FeedbackJob:
    """One scoring request: a response to verify in a task's scenario."""

    task: str
    scenario: str
    response: str


class PendingBatch:
    """Future handle for a batch submitted with :meth:`FeedbackService.submit_batch`.

    A thin, read-only wrapper over a :class:`concurrent.futures.Future` whose
    result is the batch's score list in submission order — exactly what
    :meth:`FeedbackService.score_batch` would have returned.
    """

    def __init__(self, jobs: Sequence[FeedbackJob], future: Future):
        self.jobs = list(jobs)
        self._future = future

    def result(self, timeout: float | None = None) -> list:
        """Block until the batch is scored and return the scores."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        """The exception the batch raised, or None once it scored cleanly."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        """Whether the batch has resolved (scored or failed); never blocks."""
        return self._future.done()

    def __len__(self) -> int:
        return len(self.jobs)


def as_completed(batches: Iterable[PendingBatch], timeout: float | None = None) -> Iterator[PendingBatch]:
    """Yield :class:`PendingBatch` handles as their scores become available.

    The streaming counterpart of calling ``handle.result()`` in submission
    order: consumers that don't care which batch finishes first (e.g. flushing
    scored records to disk) can start on whichever verifies earliest.
    """
    batches = list(batches)
    by_future = {batch._future: batch for batch in batches}
    for future in _futures_as_completed(by_future, timeout=timeout):
        yield by_future[future]


class Dispatcher:
    """A single-threaded, service-fair batch executor services submit through.

    Every asynchronous batch a :class:`FeedbackService` accepts runs on a
    dispatcher: one worker thread executing each *service's* batches strictly
    in that service's submission order, which is what keeps async scores
    bitwise-identical to sequential ``score_batch`` calls.  A service
    constructed without a dispatcher lazily creates a private one;
    constructing a ``Dispatcher`` explicitly and passing it to several
    services *shares* that thread between them::

        with Dispatcher() as dispatcher:
            formal = FeedbackService(specs, dispatcher=dispatcher)
            empirical = FeedbackService(specs, feedback=empirical_cfg,
                                        dispatcher=dispatcher)
            handles = [formal.submit_batch(a), empirical.submit_batch(b)]

    Admission across services is **round-robin**, not FIFO: each service owns
    a queue, and the worker thread takes one batch from each non-empty queue
    in rotation.  A chatty service that has queued a hundred batches
    therefore delays another service's next batch by at most one batch, not
    a hundred — no registered stream can be starved.  Within one service the
    queue is strictly FIFO, preserving the per-service submission-order
    execution that determinism depends on.  Each service keeps its own
    cache, worker pool and telemetry — only the submission thread is shared.

    Lifecycle: services :meth:`register` on construction and
    :meth:`unregister` when closed; closing a service never tears down a
    shared dispatcher (it drains only its own in-flight batches).  The owner
    — whoever constructed the dispatcher — releases the thread with
    :meth:`close` or a ``with`` block.  ``close()`` waits for everything
    already submitted, then rejects new submissions with ``RuntimeError``.
    """

    def __init__(self, *, name: str = "feedback-dispatch"):
        self.name = name
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None
        # Weak references: a service dropped without close() falls out of the
        # registry on GC instead of leaving a stale entry (or, with id()
        # keys, aliasing a later allocation at the same address).
        self._services: weakref.WeakSet = weakref.WeakSet()
        # Round-robin state: one FIFO deque of (future, fn, args) per
        # submitter, and a rotation of the submitter keys.  A key is the
        # id() of the submitting service (kept alive by the bound method in
        # its queued items, so ids cannot alias while a queue is non-empty);
        # direct `submit()` callers without a service share the None key.
        self._queues: dict = {}
        self._rotation: deque = deque()
        self._closed = False

    # ------------------------------------------------------------------ #
    def register(self, service) -> None:
        """Record ``service`` as a user of this dispatcher."""
        with self._lock:
            if self._closed:
                raise RuntimeError("register on a closed Dispatcher")
            self._services.add(service)

    def unregister(self, service) -> None:
        """Forget ``service``; the dispatcher keeps running for the others."""
        with self._lock:
            self._services.discard(service)

    @property
    def active_services(self) -> int:
        """How many registered services are currently using this dispatcher."""
        with self._lock:
            return len(self._services)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed dispatcher rejects submits."""
        with self._lock:
            return self._closed

    @property
    def queued_batches(self) -> int:
        """Batches admitted but not yet started by the worker thread."""
        with self._lock:
            return sum(len(queue) for queue in self._queues.values())

    # ------------------------------------------------------------------ #
    def submit(self, fn, *args, service=None) -> Future:
        """Queue ``fn(*args)`` on the dispatch thread; returns its future.

        ``service`` identifies the fairness queue the call joins: batches
        from the same service run in their submission order, while distinct
        services are interleaved round-robin.  Callers without a service
        (``service=None``) share one queue.  The worker thread is started
        lazily on the first submission, so a dispatcher that is constructed
        but never used costs nothing.
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("submit on a closed Dispatcher")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=self.name
                )
            key = None if service is None else id(service)
            if key not in self._queues:
                self._queues[key] = deque()
                self._rotation.append(key)
            self._queues[key].append((future, fn, args))
            depth = sum(len(queue) for queue in self._queues.values())
            # One _run_next per queued item: the executor's own FIFO only
            # counts how many items remain; *which* item each run executes
            # is decided by the round-robin pop below.
            self._executor.submit(self._run_next)
        obs.counter("dispatcher.queue_depth", depth)
        return future

    def _pop_round_robin(self):
        """Take the next item fairly: one batch per non-empty queue, in rotation."""
        with self._lock:
            for _ in range(len(self._rotation)):
                key = self._rotation[0]
                self._rotation.rotate(-1)  # the chosen key goes to the back
                queue = self._queues.get(key)
                if queue:
                    item = queue.popleft()
                    if not queue:
                        # Drop the empty queue so a departed service's key
                        # can't linger (or alias a recycled id) forever.
                        del self._queues[key]
                        self._rotation.remove(key)
                    return item
        return None

    def _run_next(self) -> None:
        """Execute one queued batch, chosen round-robin across services."""
        item = self._pop_round_robin()
        if item is None:  # every queue drained (shutdown already ran the rest)
            return
        future, fn, args = item
        if not future.set_running_or_notify_cancel():
            return
        obs.counter("dispatcher.queue_depth", self.queued_batches)
        try:
            with obs.span("dispatch.batch", category="serving", dispatcher=self.name):
                result = fn(*args)
        except BaseException as exc:
            future.set_exception(exc)
        else:
            future.set_result(result)

    # ------------------------------------------------------------------ #
    def close(self, *, wait: bool = True) -> None:
        """Drain submitted batches (when ``wait``) and stop the thread.

        Idempotent.  After ``close()`` every ``submit`` — from any service —
        raises ``RuntimeError``; services themselves remain usable through
        their synchronous ``score_batch`` path.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
            self._services.clear()
        if executor is not None:
            # Shutdown waits for the already-submitted _run_next calls —
            # exactly one per queued batch — so every admitted batch still
            # executes (and resolves its future) before the thread stops.
            executor.shutdown(wait=wait)

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FeedbackService:
    """Batched, cached scoring of responses against the rule book.

    Parameters
    ----------
    specifications:
        Mapping ``{name: Formula}`` every job is scored against.
    feedback:
        A :class:`~repro.core.config.FeedbackConfig` selecting formal
        verification or empirical (simulator) evaluation and its parameters.
    config:
        A :class:`~repro.serving.config.ServingConfig`; defaults to the
        cached, thread-backed configuration.
    seed:
        Base seed for empirical trace collection (matching the pipeline's
        ``config.seed`` so cached and uncached scores agree).
    model_builder:
        ``scenario name -> TransitionSystem``; defaults to the driving
        scenario catalogue.  A custom builder cannot be shipped to worker
        processes, so it silently downgrades the ``"process"`` backend to the
        thread pool.
    verifier:
        Optional pre-built :class:`FormalVerifier` to share (e.g. with a
        pipeline that also exposes one); constructed from ``feedback``
        otherwise.
    dispatcher:
        Optional shared :class:`Dispatcher` to run asynchronous submissions
        on.  When omitted the service lazily creates a private dispatcher and
        closes it with the service; a supplied dispatcher is *borrowed* —
        ``close()`` drains this service's in-flight batches and unregisters,
        leaving the dispatcher running for its other services.
    """

    def __init__(
        self,
        specifications: Mapping,
        *,
        feedback=None,
        config: ServingConfig | None = None,
        seed: int = 0,
        model_builder=None,
        verifier: FormalVerifier | None = None,
        dispatcher: Dispatcher | None = None,
    ):
        if feedback is None:
            from repro.core.config import FeedbackConfig  # deferred: core sits above serving

            feedback = FeedbackConfig()
        self.specifications = dict(specifications)
        self.feedback = feedback
        self.config = config or ServingConfig()
        self.seed = seed
        self._scorer = ResponseScorer.from_feedback(
            self.specifications,
            feedback,
            seed=seed,
            model_builder=model_builder,
            verifier=verifier,
        )
        self.model_builder = self._scorer.model_builder
        self.verifier = self._scorer.verifier
        # Worker processes rebuild the scorer from this payload.  Only the
        # default (catalogue) model builder is reproducible in a fresh
        # process, and a supplied verifier must agree with what the payload
        # would rebuild (the pipeline shares one constructed from the same
        # feedback config — fine; a genuinely custom verifier is not).
        verifier_matches_payload = verifier is None or (
            dict(verifier.specifications) == self.specifications
            and verifier.wait_action == feedback.wait_action
            and verifier.restart_on_termination == feedback.restart_on_termination
        )
        # Workers inherit the trace destination at construction time: the
        # tracer installed *now* decides whether (and where) worker processes
        # shard their spans, which is why the pipeline/CLI install the tracer
        # before building services.
        shard_dir = obs.current_tracer().shard_dir
        self._payload = (
            WorkerPayload.from_feedback(
                self.specifications,
                feedback,
                seed=seed,
                trace_shard_dir=None if shard_dir is None else str(shard_dir),
                automata_cache_dir=self.config.automata_cache_dir,
            )
            if model_builder is None and verifier_matches_payload
            else None
        )
        if self.config.automata_cache_dir is not None:
            # Attach the process-wide Büchi memo to its persisted shard now,
            # so this process loads previously translated rule-book automata
            # and flushes its own translations for future runs (and for the
            # workers, which configure the same directory in their init).
            from repro.modelcheck.fastpath import configure_automata_cache  # deferred: avoid cycle

            configure_automata_cache(self.config.automata_cache_dir)
        self.metrics = ServingMetrics()
        self._fingerprint = feedback_fingerprint(feedback, self.specifications, seed=seed)
        if not verifier_matches_payload:
            # A divergent verifier changes formal scores, so it must also
            # change the cache identity — otherwise this service would share
            # persisted entries with a default-config run.
            import json as _json

            self._fingerprint += _json.dumps(
                {
                    "verifier": {
                        "wait_action": self.verifier.wait_action,
                        "restart_on_termination": self.verifier.restart_on_termination,
                        "specifications": sorted(
                            f"{name}={formula}" for name, formula in self.verifier.specifications.items()
                        ),
                    }
                },
                sort_keys=True,
            )
        self.cache = self._initial_cache()
        self._digests: dict = {}
        # Guards the digest memo: scenario_digest is reachable both from the
        # public API (off-lock) and from inside the batch path (under
        # _batch_lock), so it needs its own consistently-held lock.
        self._digest_lock = threading.Lock()
        # One persistent process pool per service lifetime (forked lazily on
        # the first large miss batch, reused for every batch after that) and
        # one dispatcher for async submissions — private by default, shared
        # when the caller passed one in.  The lock serialises score_batch
        # bodies so direct calls and dispatcher-thread calls can interleave
        # without racing the cache or the metrics.
        self._pool: WorkerPool | None = None
        self._dispatcher: Dispatcher | None = dispatcher
        self._owns_dispatcher = dispatcher is None
        if dispatcher is not None:
            dispatcher.register(self)
        self._batch_lock = threading.Lock()
        # Guards lazy dispatcher creation and the closed flag, so concurrent
        # submit_batch callers share one dispatcher (order determinism) and
        # submit can never race past close() into a shut-down executor.
        self._submit_lock = threading.Lock()
        self._closed = False
        # Back-pressure bookkeeping: batches/jobs submitted asynchronously
        # and not yet resolved.  The condition's lock guards the two counters
        # and the backpressure metrics; waiters block here (never holding
        # _submit_lock) until completions drain the dispatcher below the
        # configured in-flight bounds.
        self._inflight = threading.Condition()
        self._inflight_batches = 0
        self._inflight_jobs = 0

    def _initial_cache(self) -> FeedbackCache:
        cache = None
        path = self.config.persist_path
        if path is not None and Path(path).exists():
            try:
                cache = FeedbackCache.load(path, max_entries=self.config.cache_size)
            except (OSError, ValueError, KeyError, TypeError):
                # Warm-starting is best-effort: an unreadable or corrupt
                # persisted cache must not take the service down.
                pass
        if cache is None:
            cache = FeedbackCache(max_entries=self.config.cache_size)
        if self.config.shared_cache_dir is not None:
            try:
                directory = CacheDirectory(self.config.shared_cache_dir)
                adopted = cache.merge(directory.shard_entries(self._fingerprint))
                self.metrics.record_warm_start(adopted)
            except OSError:
                pass
        return cache

    # ------------------------------------------------------------------ #
    # Shared per-scenario machinery
    # ------------------------------------------------------------------ #
    def scenario_model(self, scenario: str):
        """The (cached) world model responses in ``scenario`` are checked against."""
        return self._scorer.scenario_model(scenario)

    def evaluator(self, scenario: str):
        """The (cached) empirical evaluator for ``scenario``."""
        return self._scorer.evaluator(scenario)

    def scenario_digest(self, scenario: str) -> str:
        """The (cached) structural digest of a scenario's world model.

        Part of every cache key in formal mode, so edited world models (or a
        custom ``model_builder``) never collide with a stale persisted cache.
        Empirical scores never touch the formal model — its digest would both
        be meaningless and force simulator-only scenarios to have one — so
        empirical mode keys on the fingerprint (mode, traces, seed, version)
        alone.
        """
        if self.feedback.use_empirical:
            return ""
        with self._digest_lock:
            if scenario not in self._digests:
                self._digests[scenario] = model_digest(self.scenario_model(scenario))
            return self._digests[scenario]

    def _prepare_scenarios(self, jobs: Sequence[FeedbackJob]) -> None:
        """Build each scenario's model/evaluator once, before any thread fan-out.

        Sorted so preparation order (and any RNG it consumes) is deterministic
        regardless of set iteration order.
        """
        for scenario in sorted({job.scenario for job in jobs}):
            self._scorer.prepare(scenario)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _score_uncached(self, job: FeedbackJob) -> int:
        """Verify one job from scratch (the serial reference computation)."""
        return self._scorer.score(job.task, job.scenario, job.response)

    def _score_misses(self, jobs: Sequence[FeedbackJob]) -> list:
        """Fan the unique cache misses out to the configured backend."""
        backend = self.config.backend
        if backend == "process" and self._payload is not None:
            if self._pool is None:
                # ``worker_retries`` rebuilds a broken pool (jittered backoff,
                # shared policy) before degrading to the serial loop for good.
                retry = (
                    RetryPolicy(max_attempts=self.config.worker_retries + 1)
                    if self.config.worker_retries
                    else None
                )
                self._pool = WorkerPool(
                    self._payload, max_workers=self.config.max_workers, retry=retry
                )
            return self._pool.run(jobs, fallback=self._scorer)
        if backend in ("thread", "process"):
            # "process" lands here only when no payload could be built — a
            # custom model builder or a verifier diverging from the feedback
            # config, neither of which can be rebuilt inside a worker; the
            # thread pool is the closest safe substitute and scores
            # identically.
            return run_thread(self._scorer, jobs, max_workers=self.config.max_workers)
        return run_serial(self._scorer, jobs)

    def score_batch(self, jobs: Sequence[FeedbackJob]) -> list:
        """Scores for ``jobs``, in submission order.

        Deduplicates by ``(scenario, canonical response)``, answers hits from
        the cache, fans the remaining misses out to the configured backend,
        and records telemetry.  Disabled serving degenerates to a serial loop
        with no cache — the reference path.  Thread-safe: batches from direct
        callers and from the async dispatcher execute one at a time.
        """
        jobs = list(jobs)
        with self._batch_lock, obs.span(
            "serving.score_batch", category="serving", jobs=len(jobs)
        ):
            return self._score_batch_locked(jobs)

    def _score_batch_locked(self, jobs: list) -> list:
        start = time.perf_counter()
        if not self.config.enabled:
            # The reference path performs no cache lookups, so it must record
            # none: hits=misses=0, with the work accounted as uncached jobs.
            # (It used to claim `misses=len(jobs)`, making hit_rate report
            # cache activity that never happened.)
            scores = run_serial(self._scorer, jobs)
            self.metrics.record_batch(
                jobs=len(jobs), unique=len(jobs), hits=0, misses=0,
                uncached=len(jobs), seconds=time.perf_counter() - start,
            )
            return scores

        # Dedup: first occurrence of each (scenario, canonical text) key is
        # the representative whose score every duplicate receives.
        self._prepare_scenarios(jobs)
        keys = [
            cache_key(
                job.scenario,
                canonicalize_response(job.response),
                self._fingerprint,
                self.scenario_digest(job.scenario),
            )
            for job in jobs
        ]
        unique_keys, _ = first_occurrence(keys)
        representative: dict = {}
        for index, key in enumerate(keys):
            representative.setdefault(key, jobs[index])

        resolved: dict = {}
        misses: list = []
        for key in unique_keys:
            cached = self.cache.get(key)
            if cached is None:
                misses.append((key, representative[key]))
            else:
                resolved[key] = cached

        if misses:
            miss_scores = self._score_misses([job for _, job in misses])
            for (key, _), score in zip(misses, miss_scores):
                resolved[key] = score
                self.cache.put(key, score)

        self.metrics.record_batch(
            jobs=len(jobs),
            unique=len(unique_keys),
            hits=len(unique_keys) - len(misses),
            misses=len(misses),
            seconds=time.perf_counter() - start,
        )
        return [resolved[key] for key in keys]

    def score_responses(self, task, responses: Iterable[str]) -> list:
        """Scores for several responses to one task (a common batch shape)."""
        return self.score_batch(
            [FeedbackJob(task=task.name, scenario=task.scenario, response=r) for r in responses]
        )

    def score_response(self, task, response: str) -> int:
        """Score a single response (still cached/deduplicated)."""
        return self.score_responses(task, [response])[0]

    # ------------------------------------------------------------------ #
    # Asynchronous submission
    # ------------------------------------------------------------------ #
    def _over_inflight_bound(self, num_jobs: int) -> bool:
        """Whether admitting ``num_jobs`` more would exceed the configured bound.

        Called with ``self._inflight``'s lock held.  An idle dispatcher
        (nothing in flight) always admits — even a batch larger than
        ``max_inflight_jobs`` — so back-pressure can delay work but never
        deadlock it.
        """
        if self._inflight_batches == 0:
            return False
        max_batches = self.config.max_inflight_batches
        if max_batches is not None and self._inflight_batches >= max_batches:
            return True
        max_jobs = self.config.max_inflight_jobs
        return max_jobs is not None and self._inflight_jobs + num_jobs > max_jobs

    def _admit(self, num_jobs: int) -> None:
        """Block until the in-flight bounds allow one more batch, then count it."""
        with self._inflight:
            blocked_since = None
            while self._over_inflight_bound(num_jobs):
                if blocked_since is None:
                    blocked_since = time.perf_counter()
                self._inflight.wait()
            if blocked_since is not None:
                self.metrics.record_backpressure(time.perf_counter() - blocked_since)
            self._inflight_batches += 1
            self._inflight_jobs += num_jobs

    def _release(self, num_jobs: int) -> None:
        """Uncount one resolved (or never-submitted) batch and wake waiters."""
        with self._inflight:
            self._inflight_batches -= 1
            self._inflight_jobs -= num_jobs
            self._inflight.notify_all()

    def submit_batch(self, jobs: Sequence[FeedbackJob]) -> PendingBatch:
        """Queue ``jobs`` for scoring and return a :class:`PendingBatch`.

        Batches are executed in submission order on the service's
        :class:`Dispatcher` (a single thread, possibly shared with other
        services), so interleaved ``submit_batch`` / ``score_batch`` calls
        see the cache evolve exactly as sequential ``score_batch`` calls
        would — the handle's ``result()`` is bitwise-identical to the
        synchronous score list.  The producer is free to keep sampling (the
        pipeline samples task *k+1* while task *k* verifies here).

        When ``ServingConfig.max_inflight_batches`` / ``max_inflight_jobs``
        are set this call *blocks* while the dispatcher holds that much
        unresolved work, releasing the producer only as completions drain the
        queue — back-pressure for producers far ahead of verification.  Time
        spent blocked is recorded via
        :meth:`ServingMetrics.record_backpressure
        <repro.serving.metrics.ServingMetrics.record_backpressure>`.
        """
        jobs = list(jobs)
        self._admit(len(jobs))
        try:
            with self._submit_lock:
                if self._closed:
                    raise RuntimeError("submit_batch on a closed FeedbackService")
                if self._dispatcher is None:
                    self._dispatcher = Dispatcher()
                    self._dispatcher.register(self)
                future = self._dispatcher.submit(self.score_batch, jobs, service=self)
        except BaseException:
            # The batch never reached the dispatcher; give its slot back so a
            # failed submission cannot wedge the in-flight accounting.
            self._release(len(jobs))
            raise
        future.add_done_callback(lambda _future: self._release(len(jobs)))
        return PendingBatch(jobs, future)

    def submit_responses(self, task, responses: Iterable[str]) -> PendingBatch:
        """Async counterpart of :meth:`score_responses`."""
        return self.submit_batch(
            [FeedbackJob(task=task.name, scenario=task.scenario, response=r) for r in responses]
        )

    async def score_batch_async(self, jobs: Sequence[FeedbackJob]) -> list:
        """``asyncio`` adapter over :meth:`submit_batch`.

        Awaitable from any running event loop; verification happens on the
        dispatcher thread / worker pool, so the loop stays responsive.  Under
        back-pressure (``max_inflight_batches`` / ``max_inflight_jobs``) the
        blocking admission runs on a helper thread, so this coroutine
        *yields* to the event loop instead of stalling it while the
        dispatcher drains.
        """
        import asyncio

        jobs = list(jobs)
        if self.config.max_inflight_batches is None and self.config.max_inflight_jobs is None:
            # Unbounded: submission is pure queueing and cannot block, so
            # skip the executor hop and submit inline.
            handle = self.submit_batch(jobs)
        else:
            loop = asyncio.get_running_loop()
            handle = await loop.run_in_executor(None, self.submit_batch, jobs)
        return await asyncio.wrap_future(handle._future)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, *, flush: bool = True) -> None:
        """Drain pending async batches and release threads/worker processes.

        Waits for every batch this service already submitted, optionally
        flushes the cache to its configured destinations, then shuts down the
        dispatcher (if this service owns it — a *shared* dispatcher is only
        unregistered from, and keeps serving its other services) and the
        persistent process pool.  Idempotent; after ``close()`` the
        synchronous ``score_batch`` path still works (the process backend
        degrades to serial scoring) but ``submit_batch`` raises.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            dispatcher, self._dispatcher = self._dispatcher, None
            owned = self._owns_dispatcher
        if dispatcher is not None:
            if owned:
                dispatcher.close(wait=True)
            else:
                # Drain only this service's batches — the in-flight counter
                # falls to zero exactly when the last one resolves — and
                # leave the shared dispatcher running for its other users.
                with self._inflight:
                    while self._inflight_batches > 0:
                        self._inflight.wait()
                dispatcher.unregister(self)
        # Serialise against any in-flight synchronous score_batch: flushing
        # while a batch mutates the cache, or closing the pool under a
        # running pool.map, would corrupt the flush or crash the batch.
        with self._batch_lock:
            if flush:
                self.flush()
            if self._pool is not None:
                self._pool.close()

    def __enter__(self) -> "FeedbackService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def flush(self) -> bool:
        """Persist the cache to ``persist_path`` and/or ``shared_cache_dir``.

        Best-effort, like warm-starting: a full disk, revoked permissions or
        an unserializable score must not destroy the results the cache merely
        accelerates.  Both writes are atomic, so a crash mid-flush can never
        corrupt a previously persisted cache.  When the config bounds the
        shared directory (``shared_cache_max_entries`` /
        ``shared_cache_max_bytes``), the directory is compacted after the
        store so it cannot grow without bound across runs.  Returns True when
        at least one configured destination was written.
        """
        wrote = False
        if self.config.persist_path is not None:
            try:
                self.cache.save(self.config.persist_path)
                wrote = True
            except (OSError, TypeError, ValueError):
                pass
        if self.config.shared_cache_dir is not None:
            try:
                directory = CacheDirectory(self.config.shared_cache_dir)
                directory.store(self._fingerprint, self.cache)
                wrote = True
                if (
                    self.config.shared_cache_max_entries is not None
                    or self.config.shared_cache_max_bytes is not None
                ):
                    directory.compact(
                        max_entries=self.config.shared_cache_max_entries,
                        max_bytes=self.config.shared_cache_max_bytes,
                    )
            except (OSError, TypeError, ValueError):
                pass
        return wrote
