"""The batched feedback service: dedup → cache → worker pool → scatter.

:class:`FeedbackService` is the single entry point through which the pipeline
(and anything else) scores language-model responses.  A batch of ``(task,
response)`` jobs is canonicalised and deduplicated, cache hits are answered
immediately, and only the remaining unique misses are verified — serially or
on a thread pool — before results scatter back to the original submission
order.  World models, formal verifiers and empirical evaluators are built once
per scenario and reused across every batch.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import AlignmentError
from repro.feedback.empirical import EmpiricalEvaluator
from repro.feedback.formal import FormalVerifier
from repro.glm2fsa.builder import build_controller_from_text
from repro.serving.cache import FeedbackCache, cache_key, feedback_fingerprint, model_digest
from repro.serving.config import ServingConfig
from repro.serving.dedup import canonicalize_response, first_occurrence
from repro.serving.metrics import ServingMetrics


@dataclass(frozen=True)
class FeedbackJob:
    """One scoring request: a response to verify in a task's scenario."""

    task: str
    scenario: str
    response: str


class FeedbackService:
    """Batched, cached scoring of responses against the rule book.

    Parameters
    ----------
    specifications:
        Mapping ``{name: Formula}`` every job is scored against.
    feedback:
        A :class:`~repro.core.config.FeedbackConfig` selecting formal
        verification or empirical (simulator) evaluation and its parameters.
    config:
        A :class:`~repro.serving.config.ServingConfig`; defaults to the
        cached, thread-backed configuration.
    seed:
        Base seed for empirical trace collection (matching the pipeline's
        ``config.seed`` so cached and uncached scores agree).
    model_builder:
        ``scenario name -> TransitionSystem``; defaults to the driving
        scenario catalogue.
    verifier:
        Optional pre-built :class:`FormalVerifier` to share (e.g. with a
        pipeline that also exposes one); constructed from ``feedback``
        otherwise.
    """

    def __init__(
        self,
        specifications: Mapping,
        *,
        feedback=None,
        config: ServingConfig | None = None,
        seed: int = 0,
        model_builder=None,
        verifier: FormalVerifier | None = None,
    ):
        if feedback is None:
            from repro.core.config import FeedbackConfig  # deferred: core sits above serving

            feedback = FeedbackConfig()
        if model_builder is None:
            from repro.driving.scenarios.universal import scenario_model

            model_builder = scenario_model
        self.specifications = dict(specifications)
        self.feedback = feedback
        self.config = config or ServingConfig()
        self.seed = seed
        self.model_builder = model_builder
        self.verifier = verifier or FormalVerifier(
            self.specifications,
            wait_action=feedback.wait_action,
            restart_on_termination=feedback.restart_on_termination,
        )
        self.metrics = ServingMetrics()
        self.cache = self._initial_cache()
        self._fingerprint = feedback_fingerprint(feedback, self.specifications, seed=seed)
        self._models: dict = {}
        self._evaluators: dict = {}
        self._digests: dict = {}

    def _initial_cache(self) -> FeedbackCache:
        path = self.config.persist_path
        if path is not None:
            from pathlib import Path

            if Path(path).exists():
                try:
                    return FeedbackCache.load(path, max_entries=self.config.cache_size)
                except (OSError, ValueError, KeyError, TypeError):
                    # Warm-starting is best-effort: an unreadable or corrupt
                    # persisted cache must not take the service down.
                    pass
        return FeedbackCache(max_entries=self.config.cache_size)

    # ------------------------------------------------------------------ #
    # Shared per-scenario machinery
    # ------------------------------------------------------------------ #
    def scenario_model(self, scenario: str):
        """The (cached) world model responses in ``scenario`` are checked against."""
        if scenario not in self._models:
            self._models[scenario] = self.model_builder(scenario)
        return self._models[scenario]

    def evaluator(self, scenario: str) -> EmpiricalEvaluator:
        """The (cached) empirical evaluator for ``scenario``."""
        if scenario not in self._evaluators:
            from repro.sim.executor import SimulationGrounding  # deferred: optional path

            self._evaluators[scenario] = EmpiricalEvaluator(
                self.specifications,
                SimulationGrounding(scenario),
                threshold=self.feedback.empirical_threshold,
            )
        return self._evaluators[scenario]

    def scenario_digest(self, scenario: str) -> str:
        """The (cached) structural digest of a scenario's world model.

        Part of every cache key in formal mode, so edited world models (or a
        custom ``model_builder``) never collide with a stale persisted cache.
        Empirical scores never touch the formal model — its digest would both
        be meaningless and force simulator-only scenarios to have one — so
        empirical mode keys on the fingerprint (mode, traces, seed, version)
        alone.
        """
        if self.feedback.use_empirical:
            return ""
        if scenario not in self._digests:
            self._digests[scenario] = model_digest(self.scenario_model(scenario))
        return self._digests[scenario]

    def _prepare_scenarios(self, jobs: Sequence[FeedbackJob]) -> None:
        """Build each scenario's model/evaluator once, before any thread fan-out."""
        for scenario in {job.scenario for job in jobs}:
            if self.feedback.use_empirical:
                self.evaluator(scenario)
            else:
                self.scenario_model(scenario)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _score_uncached(self, job: FeedbackJob) -> int:
        """Verify one job from scratch (the serial reference computation)."""
        if self.feedback.use_empirical:
            try:
                controller = build_controller_from_text(
                    job.response, task=job.task, wait_action=self.feedback.wait_action
                )
            except AlignmentError:
                return 0
            feedback = self.evaluator(job.scenario).evaluate_controller(
                controller, num_traces=self.feedback.empirical_traces, seed=self.seed
            )
            return feedback.num_satisfied
        feedback = self.verifier.verify_response(
            self.scenario_model(job.scenario), job.response, task=job.task
        )
        return feedback.num_satisfied

    def score_batch(self, jobs: Sequence[FeedbackJob]) -> list:
        """Scores for ``jobs``, in submission order.

        Deduplicates by ``(scenario, canonical response)``, answers hits from
        the cache, fans the remaining misses out to the configured backend,
        and records telemetry.  Disabled serving degenerates to a serial loop
        with no cache — the reference path.
        """
        jobs = list(jobs)
        start = time.perf_counter()
        if not self.config.enabled:
            scores = [self._score_uncached(job) for job in jobs]
            self.metrics.record_batch(
                jobs=len(jobs), unique=len(jobs), hits=0, misses=len(jobs),
                seconds=time.perf_counter() - start,
            )
            return scores

        # Dedup: first occurrence of each (scenario, canonical text) key is
        # the representative whose score every duplicate receives.
        self._prepare_scenarios(jobs)
        keys = [
            cache_key(
                job.scenario,
                canonicalize_response(job.response),
                self._fingerprint,
                self.scenario_digest(job.scenario),
            )
            for job in jobs
        ]
        unique_keys, _ = first_occurrence(keys)
        representative: dict = {}
        for index, key in enumerate(keys):
            representative.setdefault(key, jobs[index])

        resolved: dict = {}
        misses: list = []
        for key in unique_keys:
            cached = self.cache.get(key)
            if cached is None:
                misses.append((key, representative[key]))
            else:
                resolved[key] = cached

        if misses:
            if self.config.backend == "thread" and len(misses) > 1:
                with ThreadPoolExecutor(max_workers=self.config.max_workers) as pool:
                    miss_scores = list(pool.map(self._score_uncached, [job for _, job in misses]))
            else:
                miss_scores = [self._score_uncached(job) for _, job in misses]
            for (key, _), score in zip(misses, miss_scores):
                resolved[key] = score
                self.cache.put(key, score)

        self.metrics.record_batch(
            jobs=len(jobs),
            unique=len(unique_keys),
            hits=len(unique_keys) - len(misses),
            misses=len(misses),
            seconds=time.perf_counter() - start,
        )
        return [resolved[key] for key in keys]

    def score_responses(self, task, responses: Iterable[str]) -> list:
        """Scores for several responses to one task (a common batch shape)."""
        return self.score_batch(
            [FeedbackJob(task=task.name, scenario=task.scenario, response=r) for r in responses]
        )

    def score_response(self, task, response: str) -> int:
        """Score a single response (still cached/deduplicated)."""
        return self.score_responses(task, [response])[0]

    # ------------------------------------------------------------------ #
    def flush(self) -> bool:
        """Persist the cache when a ``persist_path`` is configured.

        Best-effort, like warm-starting: a full disk or revoked permissions
        must not destroy the results the cache merely accelerates.  Returns
        True when an enabled persist path was written.
        """
        if self.config.persist_path is None:
            return False
        try:
            self.cache.save(self.config.persist_path)
            return True
        except OSError:
            return False
