"""``repro-serve`` — score a JSONL file of responses through the feedback service.

Input: one JSON object per line with a ``task`` (a name from
:mod:`repro.driving.tasks`) and a ``response`` (the step-by-step text)::

    {"task": "turn_right_traffic_light", "response": "1. Observe the traffic light. ..."}

A record may instead name its verification ``scenario`` directly, which also
covers tasks outside the built-in catalogue::

    {"task": "merge_onto_highway", "scenario": "highway_merge", "response": "..."}

Output: the *original* objects — every extra field (ids, provenance, …) is
preserved verbatim — with the resolved ``scenario`` and an integer ``score``
merged in, one per line, followed by a telemetry summary on stderr.  The
input file is validated in full before any verification machinery is built,
so a typo'd path or malformed line is reported immediately; when ``--output``
is used the file is written through a tmp file and moved into place, so a
failure mid-run never leaves a truncated output behind.

By default the whole input is scored as one synchronous batch.  With
``--batch-size N`` the input is split into batches submitted asynchronously
through one shared :class:`~repro.serving.scheduler.Dispatcher`
(``FeedbackService.submit_batch``); ``--max-inflight-batches`` /
``--max-inflight-jobs`` bound how much *unresolved verification work* may be
queued on the dispatcher at once — the shape a long-running producer wants.
(The input file itself is still loaded and validated in full up front, so
these bounds cap dispatcher queueing, not total process memory.)  Output
order and scores are identical either way.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

EPILOG = """\
backends:
  serial    score cache misses inline — the bitwise reference path
  thread    ThreadPoolExecutor; cheap to start, but verification is pure
            Python, so the GIL caps it near single-core speed
  process   ProcessPoolExecutor; each worker builds the verifier/world-model
            stack once and scores chunks of misses in parallel — use this for
            large cold batches on multi-core machines (small batches fall
            back to serial automatically)

caching:
  --cache-file FILE   private single-file cache: loaded at startup, written
                      (atomically) at exit
  --cache-dir DIR     shared cache directory: one JSON shard per feedback
                      fingerprint (<sha256-prefix>.json), written atomically
                      and merged across runs — point the pipeline, the
                      benchmarks and repeated repro-serve invocations at the
                      same directory and they warm-start each other.  A
                      changed mode/spec-set/seed changes the fingerprint and
                      therefore the shard, so stale scores are never served.
  --cache-max-entries N / --cache-max-bytes N
                      compact the shared directory after flushing: trim every
                      shard to its newest N entries, then evict whole shards
                      (least recently written first) until the directory is
                      under N bytes — keeps long-lived cache directories from
                      growing without bound.

streaming:
  --batch-size N      submit the input as batches of N records through the
                      service's async API (one shared dispatcher thread)
                      instead of one blocking score_batch call; scores and
                      output order are identical
  --max-inflight-batches N / --max-inflight-jobs N
                      back-pressure for --batch-size: block submission while
                      N batches (or jobs) are still unresolved, bounding the
                      verification work queued on the dispatcher; time spent
                      blocked is reported in the telemetry line

daemon mode:
  repro-serve daemon --socket S --store DIR [service flags]
                      run feedback scoring as a durable multi-client service:
                      every job is journaled before it is acknowledged, so a
                      killed daemon restarted on the same --store resumes and
                      finishes every accepted job exactly once, with scores
                      identical to a one-shot run
  repro-serve submit|status|watch --socket S
                      submit a JSONL file as a batch (--wait writes the same
                      scored records a one-shot run would), query job/batch/
                      daemon state, or stream progress events (docs/jobs.md)

training data:
  --pairs-output PATH write a DPO-ready preference dataset next to the scored
                      records: responses are grouped per task, ranked by
                      score (canonically — input order never matters), turned
                      into preference pairs, tokenised with a vocabulary fit
                      on the input, and emitted as one encoded pair per JSONL
                      line (token ids + response-mask starts, the
                      repro.dpo.stream.DPODatasetWriter spill format).  The
                      file is byte-identical whether the input was scored
                      blocking or streamed with --batch-size.
"""


#: Subcommands routed to :mod:`repro.jobs.cli` (the daemon mode); everything
#: else is the original one-shot scoring path, byte-for-byte.
JOBS_COMMANDS = ("daemon", "submit", "status", "watch")


def add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the service/config flags shared by every ``repro-serve`` entry point.

    The one-shot parser and the ``daemon`` subcommand both call this, so a
    daemon is configured with exactly the flags a one-shot run understands —
    same names, same defaults, same help text.  Pair with
    :func:`serving_config_from_args` / :func:`build_specifications` /
    :func:`build_feedback` to turn the parsed values into service inputs.
    """
    parser.add_argument("--mode", choices=("formal", "empirical"), default="formal", help="feedback channel")
    parser.add_argument("--core-specs", action="store_true", help="score against Φ1-Φ5 only instead of all 15 rules")
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="thread", help="worker-pool backend"
    )
    parser.add_argument("--max-workers", type=int, default=4, help="worker-pool width")
    parser.add_argument("--cache-size", type=int, default=4096, help="LRU bound on the result cache")
    parser.add_argument("--cache-file", type=Path, default=None, help="persist/warm-start the cache at this path")
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="shared cross-run cache directory of per-fingerprint shards",
    )
    parser.add_argument(
        "--cache-max-entries", type=int, default=None,
        help="compact the shared cache directory to this many entries per shard",
    )
    parser.add_argument(
        "--cache-max-bytes", type=int, default=None,
        help="compact the shared cache directory to this many total bytes",
    )
    parser.add_argument(
        "--automata-cache-dir", type=Path, default=None,
        help="persist the Büchi construction memo here (skips LTL re-translation across runs/workers)",
    )
    parser.add_argument("--seed", type=int, default=0, help="seed for empirical trace collection")


def build_specifications(args) -> dict:
    """The specification set the parsed arguments select (core or all 15)."""
    from repro.driving.specifications import all_specifications, core_specifications

    return core_specifications() if args.core_specs else all_specifications()


def build_feedback(args):
    """The :class:`~repro.core.config.FeedbackConfig` for ``--mode``."""
    from repro.core.config import FeedbackConfig

    return FeedbackConfig(use_empirical=args.mode == "empirical")


def serving_config_from_args(args, **overrides):
    """Build the :class:`~repro.serving.config.ServingConfig` the flags describe.

    ``overrides`` are extra ``ServingConfig`` fields an entry point adds on
    top of the shared flags (the one-shot path passes its back-pressure
    bounds).  Raises ``ValueError`` exactly as ``ServingConfig`` does.
    """
    from repro.serving import ServingConfig

    return ServingConfig(
        backend=args.backend,
        max_workers=args.max_workers,
        cache_size=args.cache_size,
        persist_path=str(args.cache_file) if args.cache_file else None,
        shared_cache_dir=str(args.cache_dir) if args.cache_dir else None,
        shared_cache_max_entries=args.cache_max_entries,
        shared_cache_max_bytes=args.cache_max_bytes,
        automata_cache_dir=str(args.automata_cache_dir) if args.automata_cache_dir else None,
        **overrides,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Score step-by-step driving responses through the batched feedback service.",
        epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("jsonl", type=Path, help="input JSONL file of {task, response} objects")
    parser.add_argument("-o", "--output", type=Path, default=None, help="output JSONL path (default: stdout)")
    add_service_arguments(parser)
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help="submit the input asynchronously in batches of this many records",
    )
    parser.add_argument(
        "--max-inflight-batches", type=int, default=None,
        help="back-pressure: max unresolved async batches (requires --batch-size)",
    )
    parser.add_argument(
        "--max-inflight-jobs", type=int, default=None,
        help="back-pressure: max unresolved async jobs (requires --batch-size)",
    )
    parser.add_argument(
        "--pairs-output", type=Path, default=None,
        help="also write DPO-ready encoded preference pairs (JSONL) to this path",
    )
    parser.add_argument(
        "--trace", type=Path, default=None,
        help="export a Chrome/Perfetto trace of the run to this path "
        "(inspect with repro-trace report or ui.perfetto.dev)",
    )
    return parser


def load_jobs(path: Path) -> list:
    """Parse the input JSONL into ``(record, scenario)`` pairs.

    The full input record is kept so the output can preserve caller metadata;
    ``scenario`` is the resolved verification scenario (from the record or the
    task catalogue).
    """
    from repro.driving.scenarios.universal import SCENARIO_BUILDERS
    from repro.driving.tasks import task_by_name

    jobs = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_number}: invalid JSON ({exc})") from exc
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{line_number}: each line must be a JSON object, got {type(record).__name__}")
        if "task" not in record or "response" not in record:
            raise ValueError(f"{path}:{line_number}: each record needs 'task' and 'response' fields")
        for field in ("task", "response"):
            if not isinstance(record[field], str):
                raise ValueError(
                    f"{path}:{line_number}: {field!r} must be a string, got {type(record[field]).__name__}"
                )
        scenario = record.get("scenario")
        if scenario is not None and not isinstance(scenario, str):
            raise ValueError(
                f"{path}:{line_number}: 'scenario' must be a string, got {type(scenario).__name__}"
            )
        if scenario is None:
            try:
                scenario = task_by_name(record["task"]).scenario
            except KeyError as exc:
                raise ValueError(
                    f"{path}:{line_number}: {exc.args[0]} (or add a 'scenario' field to the record)"
                ) from exc
        elif scenario not in SCENARIO_BUILDERS:
            raise ValueError(
                f"{path}:{line_number}: unknown scenario {scenario!r}; known: {sorted(SCENARIO_BUILDERS)}"
            )
        jobs.append((record, scenario))
    return jobs


def write_pairs(jobs, scores, output: Path):
    """Build and write DPO-ready encoded preference pairs from scored records.

    Responses are grouped per ``task`` (first-occurrence order, input order
    within a group), ranked with the canonical, order-independent
    :func:`~repro.feedback.ranker.rank_to_pairs`, and tokenised by a
    :class:`~repro.dpo.stream.DPODatasetWriter` spilling to ``output`` — the
    same JSONL shard format the streaming pipeline writes, reloadable with
    :func:`repro.dpo.stream.read_encoded_pairs`.  Every input is
    deterministic (the tokenizer vocabulary is fit on the records in input
    order), so the file is byte-identical however the scores were obtained.
    Returns the writer (telemetry on ``writer.telemetry``).
    """
    from repro.dpo.stream import DPODatasetWriter
    from repro.driving.tasks import task_by_name
    from repro.feedback.ranker import rank_to_pairs
    from repro.lm.corpus import format_document, format_prompt
    from repro.lm.tokenizer import Tokenizer

    grouped: dict = {}
    for (record, _scenario), score in zip(jobs, scores):
        grouped.setdefault(record["task"], ([], []))
        responses, task_scores = grouped[record["task"]]
        responses.append(record["response"])
        task_scores.append(score)

    def prompt_for(task_name: str) -> str:
        try:
            return format_prompt(task_by_name(task_name))
        except KeyError:  # off-catalogue task scored via an explicit scenario
            return format_prompt(task_name)

    prompts = {task: prompt_for(task) for task in grouped}
    # The vocabulary covers every document the pairs will encode, fit in
    # deterministic input order.
    texts = []
    for task, (responses, _task_scores) in grouped.items():
        texts.append(prompts[task])
        texts.extend(format_document(prompts[task], response) for response in responses)
    tokenizer = Tokenizer.fit(texts)

    writer = DPODatasetWriter(tokenizer, spill_path=output)
    for task, (responses, task_scores) in grouped.items():
        for pair in rank_to_pairs(prompts[task], responses, task_scores, task=task):
            writer.append(pair)
    writer.seal()
    return writer


def write_records(records, output: Path | None) -> None:
    """Write scored records to ``output`` (atomically) or stdout."""
    lines = "".join(json.dumps(record) + "\n" for record in records)
    if output is None:
        sys.stdout.write(lines)
        return
    from repro.utils.atomic import write_text_atomic

    write_text_atomic(output, lines)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in JOBS_COMMANDS:
        # Daemon mode lives in repro.jobs (imported lazily so the one-shot
        # path pays nothing for it); everything below is unchanged.
        from repro.jobs.cli import main as jobs_main

        return jobs_main(argv)
    args = build_parser().parse_args(argv)

    # Validate and load the whole input before building any verification
    # machinery: a bad path or malformed line must fail fast and cheap.
    try:
        jobs = load_jobs(args.jsonl)
    except (OSError, ValueError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2

    from repro.serving import Dispatcher, FeedbackJob, FeedbackService

    if args.batch_size is None and (
        args.max_inflight_batches is not None or args.max_inflight_jobs is not None
    ):
        print(
            "repro-serve: --max-inflight-batches/--max-inflight-jobs require --batch-size",
            file=sys.stderr,
        )
        return 2
    if args.batch_size is not None and args.batch_size <= 0:
        print(f"repro-serve: --batch-size must be positive, got {args.batch_size}", file=sys.stderr)
        return 2

    specifications = build_specifications(args)
    try:
        config = serving_config_from_args(
            args,
            max_inflight_batches=args.max_inflight_batches,
            max_inflight_jobs=args.max_inflight_jobs,
        )
    except ValueError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    feedback_jobs = [
        FeedbackJob(task=record["task"], scenario=scenario, response=record["response"])
        for record, scenario in jobs
    ]
    from repro.obs import tracer as obs

    # Tracing must be live before the service is built: the service captures
    # the tracer's shard directory into its worker payload, which is how
    # process-backend workers know where to write their span shards.
    tracer = None
    if args.trace is not None:
        tracer = obs.Tracer.for_trace_file(args.trace)
        obs.install_tracer(tracer)
    # The context managers flush the cache (and compact the shared directory
    # when bounded) on exit, then shut down the dispatch thread / worker pool.
    with Dispatcher(name="repro-serve") as dispatcher:
        with FeedbackService(
            specifications,
            feedback=build_feedback(args),
            config=config,
            seed=args.seed,
            dispatcher=dispatcher,
        ) as service:
            if args.batch_size is None:
                scores = service.score_batch(feedback_jobs)
            else:
                # Stream the input through the async API: submission blocks
                # under the configured in-flight bounds, capping the
                # unresolved work queued on the dispatcher.  Batches resolve
                # in submission order, so concatenation preserves input order.
                handles = [
                    service.submit_batch(feedback_jobs[start : start + args.batch_size])
                    for start in range(0, len(feedback_jobs), args.batch_size)
                ]
                scores = [score for handle in handles for score in handle.result()]

    write_records(
        ({**record, "scenario": scenario, "score": score} for (record, scenario), score in zip(jobs, scores)),
        args.output,
    )
    if args.pairs_output is not None:
        pairs_writer = write_pairs(jobs, scores, args.pairs_output)
        service.metrics.record_stage("encode", pairs_writer.telemetry.encode_seconds)
        print(
            f"wrote {pairs_writer.telemetry.pairs_encoded} encoded preference pairs "
            f"to {args.pairs_output} "
            f"(encode stage {pairs_writer.telemetry.encode_seconds:.2f}s)",
            file=sys.stderr,
        )

    # One MetricsRegistry snapshot feeds both the stderr summary and the
    # exported trace — the same code path the pipeline's telemetry uses.
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.report import format_serving_summary

    registry = MetricsRegistry()
    registry.register_provider("serving", service.metrics.snapshot)
    snapshot = registry.snapshot()
    print(format_serving_summary(snapshot["serving"]), file=sys.stderr)
    if tracer is not None:
        from repro.obs.export import write_chrome_trace

        if obs.current_tracer() is tracer:
            obs.uninstall_tracer()
        write_chrome_trace(args.trace, tracer, metrics=snapshot)
        tracer.close()
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
