"""``repro-serve`` — score a JSONL file of responses through the feedback service.

Input: one JSON object per line with a ``task`` (a name from
:mod:`repro.driving.tasks`) and a ``response`` (the step-by-step text)::

    {"task": "turn_right_traffic_light", "response": "1. Observe the traffic light. ..."}

A record may instead name its verification ``scenario`` directly, which also
covers tasks outside the built-in catalogue::

    {"task": "merge_onto_highway", "scenario": "highway_merge", "response": "..."}

Output: the same objects with a ``score`` field, one per line, followed by a
telemetry summary on stderr.  A persisted cache file makes repeated
invocations warm-start.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Score step-by-step driving responses through the batched feedback service.",
    )
    parser.add_argument("jsonl", type=Path, help="input JSONL file of {task, response} objects")
    parser.add_argument("-o", "--output", type=Path, default=None, help="output JSONL path (default: stdout)")
    parser.add_argument("--mode", choices=("formal", "empirical"), default="formal", help="feedback channel")
    parser.add_argument("--core-specs", action="store_true", help="score against Φ1-Φ5 only instead of all 15 rules")
    parser.add_argument("--backend", choices=("serial", "thread"), default="thread", help="worker-pool backend")
    parser.add_argument("--max-workers", type=int, default=4, help="worker-pool width")
    parser.add_argument("--cache-size", type=int, default=4096, help="LRU bound on the result cache")
    parser.add_argument("--cache-file", type=Path, default=None, help="persist/warm-start the cache at this path")
    parser.add_argument("--seed", type=int, default=0, help="seed for empirical trace collection")
    return parser


def load_jobs(path: Path) -> list:
    """Parse the input JSONL into ``(task name, scenario, response)`` records."""
    from repro.driving.scenarios.universal import SCENARIO_BUILDERS
    from repro.driving.tasks import task_by_name

    jobs = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{line_number}: invalid JSON ({exc})") from exc
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{line_number}: each line must be a JSON object, got {type(record).__name__}")
        if "task" not in record or "response" not in record:
            raise ValueError(f"{path}:{line_number}: each record needs 'task' and 'response' fields")
        scenario = record.get("scenario")
        if scenario is None:
            try:
                scenario = task_by_name(record["task"]).scenario
            except KeyError as exc:
                raise ValueError(
                    f"{path}:{line_number}: {exc.args[0]} (or add a 'scenario' field to the record)"
                ) from exc
        elif scenario not in SCENARIO_BUILDERS:
            raise ValueError(
                f"{path}:{line_number}: unknown scenario {scenario!r}; known: {sorted(SCENARIO_BUILDERS)}"
            )
        jobs.append((record["task"], scenario, record["response"]))
    return jobs


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    from repro.core.config import FeedbackConfig
    from repro.driving.specifications import all_specifications, core_specifications
    from repro.serving import FeedbackJob, FeedbackService, ServingConfig

    specifications = core_specifications() if args.core_specs else all_specifications()
    service = FeedbackService(
        specifications,
        feedback=FeedbackConfig(use_empirical=args.mode == "empirical"),
        config=ServingConfig(
            backend=args.backend,
            max_workers=args.max_workers,
            cache_size=args.cache_size,
            persist_path=str(args.cache_file) if args.cache_file else None,
        ),
        seed=args.seed,
    )

    try:
        jobs = load_jobs(args.jsonl)
    except (OSError, ValueError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2

    scores = service.score_batch(
        [FeedbackJob(task=task, scenario=scenario, response=response) for task, scenario, response in jobs]
    )
    service.flush()

    out = args.output.open("w") if args.output else sys.stdout
    try:
        for (task, scenario, response), score in zip(jobs, scores):
            out.write(json.dumps({"task": task, "scenario": scenario, "response": response, "score": score}) + "\n")
    finally:
        if args.output:
            out.close()

    telemetry = service.metrics.snapshot()
    print(
        f"scored {telemetry['jobs']} responses ({telemetry['unique_jobs']} unique) "
        f"in {telemetry['total_seconds']:.2f}s — "
        f"{telemetry['throughput']:.1f} responses/s, "
        f"hit rate {telemetry['hit_rate']:.0%}, dedup rate {telemetry['dedup_rate']:.0%}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
