"""Batched, cached feedback serving for high-throughput controller verification.

Every stage of the DPO-AF loop — preference-pair collection, template
augmentation, checkpoint evaluation — reduces to the same primitive: *score a
language-model response against a scenario's rule book*.  Done inline, that
primitive rebuilds a GLM2FSA controller and re-runs the model checker (or
simulator) per call, so feedback cost scales with samples × tasks × epochs.
This package turns it into a standalone service with four layers:

``dedup``
    Score-preserving response canonicalisation, so the many identical
    responses a small model samples verify exactly once per batch
    (:func:`~repro.serving.dedup.canonicalize_response`,
    :func:`~repro.serving.dedup.dedupe_responses`).
``cache``
    A content-addressed LRU result cache keyed by a SHA-256 digest of
    ``(scenario, canonical response, feedback fingerprint)``, with hit/miss
    stats, atomic JSON persistence (:class:`~repro.serving.cache.
    FeedbackCache`), and a managed cross-run cache directory
    (:class:`~repro.serving.cache.CacheDirectory`, below).
``backends``
    The three execution strategies for scoring cache misses
    (:mod:`repro.serving.backends`): ``"serial"`` (inline reference loop),
    ``"thread"`` (GIL-bound pool; cheap, always safe) and ``"process"``
    (a *persistent* :class:`~repro.serving.backends.WorkerPool` whose worker
    processes rebuild the verifier/world-model/evaluator stack once per
    process from a picklable :class:`~repro.serving.backends.WorkerPayload`,
    then stay alive across every batch the service scores — the
    fork/initializer cost is paid once per service, not once per cold
    batch).  All three return bitwise-identical scores in submission order;
    select one with ``ServingConfig(backend=...)``.
``scheduler``
    :class:`~repro.serving.scheduler.FeedbackService` — accepts batches of
    :class:`~repro.serving.scheduler.FeedbackJob`, partitions cache hits from
    misses, fans misses out to the configured backend, and scatters scores
    back in deterministic submission order.  World models, formal verifiers
    and empirical evaluators are constructed once per scenario, not once per
    response.  Besides synchronous ``score_batch``, batches can be submitted
    asynchronously: ``submit_batch`` queues work on a dispatcher thread and
    returns a :class:`~repro.serving.scheduler.PendingBatch` future handle
    immediately (stream completions with
    :func:`~repro.serving.scheduler.as_completed`, or await
    ``score_batch_async`` from an event loop), so producers overlap sampling
    with verification while scores stay bitwise-identical to the synchronous
    path.  Submission is *bounded*: ``ServingConfig.max_inflight_batches`` /
    ``max_inflight_jobs`` apply back-pressure, blocking producers that run
    too far ahead of verification (blocked time is telemetered as
    ``backpressure_seconds``).  The dispatch thread is a first-class
    :class:`~repro.serving.scheduler.Dispatcher` that several services can
    share, serving multiple task streams over one thread; admission across
    services is round-robin (one batch per service in rotation), so a chatty
    service can never starve another's stream, while each service's own
    batches still run in its submission order.  Services own
    threads/processes once those paths are used; release them with
    ``close()`` or a ``with`` block.
``metrics``
    Throughput / latency / hit-rate telemetry
    (:class:`~repro.serving.metrics.ServingMetrics`), surfaced on
    :class:`~repro.core.pipeline.PipelineResult` as ``serving_metrics``.

Cross-run shared cache layout
-----------------------------
``ServingConfig(shared_cache_dir="…")`` names a directory the pipeline, the
benchmarks and the ``repro-serve`` CLI can all share.  Each distinct feedback
fingerprint (mode + parameters + spec set + seed + package version) owns one
shard file::

    <shared_cache_dir>/
        <sha256(fingerprint)[:16]>.json     # {"schema", "fingerprint", "entries"}
        <…>.json.tmp.<pid>                  # in-flight atomic writes; never read
        <…>.json.lock                       # advisory flush locks; never read

Services warm-start from their own shard at construction and merge results
back on ``flush()``; shards are written with tmp-file + ``os.replace``, so a
crash can never leave a partial shard, and corrupt or foreign shards load as
empty rather than serving stale scores.  Long-lived directories are bounded
by :meth:`CacheDirectory.compact <repro.serving.cache.CacheDirectory.compact>`
(run automatically at flush time when ``ServingConfig.shared_cache_max_entries``
/ ``shared_cache_max_bytes`` are set): shards are trimmed to their newest
entries, evicted whole oldest-write-first past the byte budget, and orphaned
lock/tmp litter is swept.

Scores produced with serving enabled are bitwise-identical to the serial
reference path (``ServingConfig(enabled=False)``): the cache key covers every
input that can influence a score, and canonicalisation only discards
whitespace the step parser provably ignores.
"""

from repro.serving.backends import ResponseScorer, WorkerPayload, WorkerPool
from repro.serving.cache import (
    CacheDirectory,
    CacheStats,
    CompactionReport,
    FeedbackCache,
    cache_key,
    feedback_fingerprint,
    model_digest,
)
from repro.serving.config import BACKENDS, ServingConfig
from repro.serving.dedup import canonicalize_response, dedupe_responses, first_occurrence
from repro.serving.metrics import ServingMetrics
from repro.serving.scheduler import (
    Dispatcher,
    FeedbackJob,
    FeedbackService,
    PendingBatch,
    as_completed,
)

__all__ = [
    "BACKENDS",
    "CacheDirectory",
    "CacheStats",
    "CompactionReport",
    "FeedbackCache",
    "cache_key",
    "feedback_fingerprint",
    "model_digest",
    "ResponseScorer",
    "ServingConfig",
    "WorkerPayload",
    "WorkerPool",
    "canonicalize_response",
    "dedupe_responses",
    "first_occurrence",
    "ServingMetrics",
    "Dispatcher",
    "FeedbackJob",
    "FeedbackService",
    "PendingBatch",
    "as_completed",
]
