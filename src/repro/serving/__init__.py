"""Batched, cached feedback serving for high-throughput controller verification.

Every stage of the DPO-AF loop — preference-pair collection, template
augmentation, checkpoint evaluation — reduces to the same primitive: *score a
language-model response against a scenario's rule book*.  Done inline, that
primitive rebuilds a GLM2FSA controller and re-runs the model checker (or
simulator) per call, so feedback cost scales with samples × tasks × epochs.
This package turns it into a standalone service with four layers:

``dedup``
    Score-preserving response canonicalisation, so the many identical
    responses a small model samples verify exactly once per batch
    (:func:`~repro.serving.dedup.canonicalize_response`,
    :func:`~repro.serving.dedup.dedupe_responses`).
``cache``
    A content-addressed LRU result cache keyed by a SHA-256 digest of
    ``(scenario, canonical response, feedback fingerprint)``, with hit/miss
    stats and optional JSON persistence
    (:class:`~repro.serving.cache.FeedbackCache`).
``scheduler``
    :class:`~repro.serving.scheduler.FeedbackService` — accepts batches of
    :class:`~repro.serving.scheduler.FeedbackJob`, partitions cache hits from
    misses, fans misses out to a configurable ``concurrent.futures`` backend,
    and scatters scores back in deterministic submission order.  World models,
    formal verifiers and empirical evaluators are constructed once per
    scenario, not once per response.
``metrics``
    Throughput / latency / hit-rate telemetry
    (:class:`~repro.serving.metrics.ServingMetrics`), surfaced on
    :class:`~repro.core.pipeline.PipelineResult` as ``serving_metrics``.

Scores produced with serving enabled are bitwise-identical to the serial
reference path (``ServingConfig(enabled=False)``): the cache key covers every
input that can influence a score, and canonicalisation only discards
whitespace the step parser provably ignores.
"""

from repro.serving.cache import CacheStats, FeedbackCache, cache_key, feedback_fingerprint, model_digest
from repro.serving.config import ServingConfig
from repro.serving.dedup import canonicalize_response, dedupe_responses, first_occurrence
from repro.serving.metrics import ServingMetrics
from repro.serving.scheduler import FeedbackJob, FeedbackService

__all__ = [
    "CacheStats",
    "FeedbackCache",
    "cache_key",
    "feedback_fingerprint",
    "model_digest",
    "ServingConfig",
    "canonicalize_response",
    "dedupe_responses",
    "first_occurrence",
    "ServingMetrics",
    "FeedbackJob",
    "FeedbackService",
]
