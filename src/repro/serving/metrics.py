"""Throughput, latency and cache telemetry for the feedback service.

The counters accumulate over the life of one :class:`~repro.serving.scheduler.
FeedbackService`; ``snapshot()`` collapses them into a JSON-friendly dict that
the pipeline attaches to :class:`~repro.core.pipeline.PipelineResult` so a run
reports how much verification work the cache and dedup layers absorbed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class ServingMetrics:
    """Accumulated telemetry for batched feedback scoring.

    Mutation is lock-guarded: batches recorded on the dispatcher thread,
    back-pressure recorded on producer threads and stage timings recorded by
    the CLI all fold into the same counters, so unsynchronised ``+=`` updates
    could lose increments.  Reads (``snapshot()`` and the derived-rate
    properties) take the same lock, so a snapshot never observes a batch
    half-recorded.
    """

    batches: int = 0
    jobs: int = 0                  # responses submitted (after fan-in, before dedup)
    unique_jobs: int = 0           # distinct canonical jobs per batch, summed
    cache_hits: int = 0            # unique jobs answered from the cache
    cache_misses: int = 0          # unique jobs that required verification
    uncached_jobs: int = 0         # jobs scored with serving disabled (no cache lookups)
    warm_start_entries: int = 0    # entries retained from a shared cache directory
    backpressure_waits: int = 0    # submit_batch calls that blocked on the in-flight bound
    backpressure_seconds: float = 0.0  # producer time spent blocked by back-pressure
    total_seconds: float = 0.0
    stage_seconds: dict = field(default_factory=dict)  # named pipeline-stage wall clocks
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    def record_batch(
        self, *, jobs: int, unique: int, hits: int, misses: int, seconds: float, uncached: int = 0
    ) -> None:
        """Fold one ``score_batch`` call into the running totals.

        ``uncached`` counts jobs the disabled-serving reference path scored
        without ever consulting the cache — those are *not* misses, and must
        not drag ``hit_rate`` / ``dedup_rate`` below what the cache actually
        did.
        """
        with self._lock:
            self.batches += 1
            self.jobs += jobs
            self.unique_jobs += unique
            self.cache_hits += hits
            self.cache_misses += misses
            self.uncached_jobs += uncached
            self.total_seconds += seconds

    def record_backpressure(self, seconds: float) -> None:
        """Fold one blocked ``submit_batch`` admission into the totals.

        ``seconds`` is how long the producer waited for the in-flight bound
        (``ServingConfig.max_inflight_batches`` / ``max_inflight_jobs``) to
        drain before its batch was admitted.  Persistent growth here means
        verification, not sampling, is the pipeline's bottleneck — add
        workers or loosen the bound.
        """
        with self._lock:
            self.backpressure_waits += 1
            self.backpressure_seconds += seconds

    def record_warm_start(self, entries: int) -> None:
        """Count entries adopted from a shared cache directory at startup."""
        with self._lock:
            self.warm_start_entries += entries

    def record_stage(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock time for one named pipeline stage.

        Stages are caller-defined (the streaming CLI records ``encode`` for
        the pair-encoding pass; the pipeline may record its own) and land in
        ``snapshot()["stage_seconds"]``, so consumers of the telemetry see
        how the end-to-end wall clock splits across overlapping stages.
        """
        with self._lock:
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds

    # ------------------------------------------------------------------ #
    @property
    def hit_rate(self) -> float:
        """Fraction of unique jobs answered without re-verification."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def dedup_rate(self) -> float:
        """Fraction of submitted jobs removed as within-batch duplicates."""
        if self.jobs == 0:
            return 0.0
        return 1.0 - self.unique_jobs / self.jobs

    @property
    def throughput(self) -> float:
        """Responses scored per second, amortised over every batch."""
        return self.jobs / self.total_seconds if self.total_seconds > 0 else 0.0

    @property
    def mean_batch_latency(self) -> float:
        return self.total_seconds / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        """JSON-friendly view of the counters and derived rates."""
        with self._lock:
            return {
                "batches": self.batches,
                "jobs": self.jobs,
                "unique_jobs": self.unique_jobs,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "uncached_jobs": self.uncached_jobs,
                "warm_start_entries": self.warm_start_entries,
                "backpressure_waits": self.backpressure_waits,
                "backpressure_seconds": self.backpressure_seconds,
                "total_seconds": self.total_seconds,
                "stage_seconds": dict(self.stage_seconds),
                "hit_rate": self.hit_rate,
                "dedup_rate": self.dedup_rate,
                "throughput": self.throughput,
                "mean_batch_latency": self.mean_batch_latency,
            }

    def reset(self) -> None:
        """Zero every counter in place.

        ``stage_seconds`` is *cleared*, not rebound: callers holding a
        reference to the dict (a registry provider, a test inspecting stage
        timings) keep observing the live mapping after a reset instead of a
        detached snapshot frozen at the old values.
        """
        with self._lock:
            self.batches = self.jobs = self.unique_jobs = 0
            self.cache_hits = self.cache_misses = self.uncached_jobs = self.warm_start_entries = 0
            self.backpressure_waits = 0
            self.backpressure_seconds = self.total_seconds = 0.0
            self.stage_seconds.clear()
