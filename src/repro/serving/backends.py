"""Worker-pool backends for scoring cache misses.

The scheduler scores a miss by building a GLM2FSA controller from the response
and model-checking it (or rolling it out in the simulator) — pure-Python CPU
work.  Three backends execute that work:

``"serial"``
    An inline loop.  The bitwise reference every other backend must match.
``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  GIL-bound for this
    workload, so its wins come from overlapping the little I/O there is; kept
    because it is cheap to spin up and always safe.
``"process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker process
    runs an initializer that rebuilds the verifier/world-model/evaluator stack
    exactly once from a picklable :class:`WorkerPayload`; misses are dispatched
    in contiguous chunks and results concatenated in submission order, so the
    scatter is deterministic regardless of which worker finishes first.  Small
    miss batches fall back to the serial loop — forking processes for a couple
    of jobs costs more than it saves.

The process backend's executor lives inside a :class:`WorkerPool`: the pool is
started lazily on the first large-enough miss batch and then *reused for every
subsequent batch* over the owning service's lifetime, so the fork/initializer
cost is paid once per worker rather than once per cold batch.  ``close()``
(reached through :meth:`FeedbackService.close
<repro.serving.scheduler.FeedbackService.close>` or the service's context
manager) shuts the workers down; a closed or broken pool degrades to the
serial loop, never to wrong scores.  :func:`run_process` remains as the
one-shot convenience (a throwaway pool per call).

:class:`ResponseScorer` is the single implementation of "score one response
from scratch" shared by all three: the scheduler owns one for the serial and
thread paths, and every worker process owns one built from the payload.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.obs import tracer as obs
from repro.errors import AlignmentError
from repro.feedback.empirical import EmpiricalEvaluator
from repro.feedback.formal import FormalVerifier
from repro.glm2fsa.builder import build_controller_from_text
from repro.utils.retry import RetryPolicy

#: Miss batches smaller than this are scored inline by the process backend:
#: the fork/initializer cost would dominate the verification work saved.
PROCESS_MIN_BATCH = 4


class ResponseScorer:
    """Builds the verification stack once and scores ``(task, scenario, response)`` jobs.

    Parameters mirror the fields of :class:`~repro.core.config.FeedbackConfig`
    (passed individually so this module never imports the pipeline layer) plus
    the empirical seed.  World models and evaluators are built lazily, once
    per scenario, and reused for every subsequent job.
    """

    def __init__(
        self,
        specifications: Mapping,
        *,
        wait_action: str | None = "stop",
        restart_on_termination: bool = True,
        use_empirical: bool = False,
        empirical_traces: int = 10,
        empirical_threshold: float = 0.9,
        seed: int = 0,
        model_builder=None,
        verifier: FormalVerifier | None = None,
    ):
        if model_builder is None:
            from repro.driving.scenarios.universal import scenario_model

            model_builder = scenario_model
        self.specifications = dict(specifications)
        self.wait_action = wait_action
        self.restart_on_termination = restart_on_termination
        self.use_empirical = use_empirical
        self.empirical_traces = empirical_traces
        self.empirical_threshold = empirical_threshold
        self.seed = seed
        self.model_builder = model_builder
        self.verifier = verifier or FormalVerifier(
            self.specifications,
            wait_action=wait_action,
            restart_on_termination=restart_on_termination,
        )
        self._models: dict = {}
        self._evaluators: dict = {}

    @classmethod
    def from_feedback(cls, specifications, feedback, *, seed=0, model_builder=None, verifier=None):
        """Construct from a :class:`~repro.core.config.FeedbackConfig`-like object."""
        return cls(
            specifications,
            wait_action=feedback.wait_action,
            restart_on_termination=feedback.restart_on_termination,
            use_empirical=feedback.use_empirical,
            empirical_traces=feedback.empirical_traces,
            empirical_threshold=feedback.empirical_threshold,
            seed=seed,
            model_builder=model_builder,
            verifier=verifier,
        )

    # ------------------------------------------------------------------ #
    def scenario_model(self, scenario: str):
        """The (cached) world model responses in ``scenario`` are checked against."""
        if scenario not in self._models:
            self._models[scenario] = self.model_builder(scenario)
        return self._models[scenario]

    def evaluator(self, scenario: str) -> EmpiricalEvaluator:
        """The (cached) empirical evaluator for ``scenario``."""
        if scenario not in self._evaluators:
            from repro.sim.executor import SimulationGrounding  # deferred: optional path

            self._evaluators[scenario] = EmpiricalEvaluator(
                self.specifications,
                SimulationGrounding(scenario),
                threshold=self.empirical_threshold,
            )
        return self._evaluators[scenario]

    def prepare(self, scenario: str) -> None:
        """Build ``scenario``'s model/evaluator eagerly, before any fan-out."""
        if self.use_empirical:
            self.evaluator(scenario)
        else:
            self.scenario_model(scenario)

    # ------------------------------------------------------------------ #
    def score(self, task: str, scenario: str, response: str) -> int:
        """Verify one response from scratch (the serial reference computation)."""
        if self.use_empirical:
            try:
                controller = build_controller_from_text(
                    response, task=task, wait_action=self.wait_action
                )
            except AlignmentError:
                return 0
            feedback = self.evaluator(scenario).evaluate_controller(
                controller, num_traces=self.empirical_traces, seed=self.seed
            )
            return feedback.num_satisfied
        feedback = self.verifier.verify_response(self.scenario_model(scenario), response, task=task)
        return feedback.num_satisfied


@dataclass(frozen=True)
class WorkerPayload:
    """Everything a worker process needs to rebuild a :class:`ResponseScorer`.

    Every field pickles: specifications are plain formula dataclasses, the
    rest are primitives.  Custom ``model_builder`` callables are deliberately
    *not* part of the payload — a service configured with one cannot use the
    process backend (the scheduler falls back to its in-process pool), since
    shipping arbitrary closures to workers is neither picklable in general
    nor reproducible.
    """

    specifications: tuple  # ((name, formula), ...) in a stable order
    wait_action: str | None
    restart_on_termination: bool
    use_empirical: bool
    empirical_traces: int
    empirical_threshold: float
    seed: int
    #: Directory worker processes write per-PID trace shards into; ``None``
    #: keeps workers untraced (the default — tracing is opt-in).
    trace_shard_dir: str | None = None
    #: Directory of the persisted Büchi construction memo
    #: (:func:`repro.modelcheck.fastpath.configure_automata_cache`); a freshly
    #: spawned worker preloads the rule book's pruned automata from its shard
    #: instead of re-translating every formula.  ``None`` leaves the worker's
    #: process-wide memo memory-only.
    automata_cache_dir: str | None = None

    @classmethod
    def from_feedback(
        cls,
        specifications: Mapping,
        feedback,
        *,
        seed: int = 0,
        trace_shard_dir: str | None = None,
        automata_cache_dir: str | None = None,
    ) -> "WorkerPayload":
        return cls(
            specifications=tuple(sorted(specifications.items())),
            wait_action=feedback.wait_action,
            restart_on_termination=feedback.restart_on_termination,
            use_empirical=feedback.use_empirical,
            empirical_traces=feedback.empirical_traces,
            empirical_threshold=feedback.empirical_threshold,
            seed=seed,
            trace_shard_dir=trace_shard_dir,
            automata_cache_dir=automata_cache_dir,
        )

    def build_scorer(self) -> ResponseScorer:
        return ResponseScorer(
            dict(self.specifications),
            wait_action=self.wait_action,
            restart_on_termination=self.restart_on_termination,
            use_empirical=self.use_empirical,
            empirical_traces=self.empirical_traces,
            empirical_threshold=self.empirical_threshold,
            seed=self.seed,
        )


#: Per-process scorer, created by :func:`_initialize_worker` and reused for
#: every chunk the worker receives over its lifetime.
_WORKER_SCORER: ResponseScorer | None = None


def _initialize_worker(payload: WorkerPayload) -> None:
    global _WORKER_SCORER
    # Forked workers inherit the parent's installed tracer, whose in-memory
    # spans would be lost on worker exit.  Replace it: either a shard writer
    # flushing every span to a per-PID JSONL file the parent merges at export,
    # or (tracing off) the no-op tracer.
    if payload.trace_shard_dir is not None:
        shard_dir = Path(payload.trace_shard_dir)
        shard_dir.mkdir(parents=True, exist_ok=True)
        obs.install_tracer(obs.Tracer(jsonl_path=shard_dir / f"pid-{os.getpid()}.jsonl"))
    else:
        obs.uninstall_tracer()
    if payload.automata_cache_dir is not None:
        from repro.modelcheck.fastpath import configure_automata_cache  # deferred: keep import light

        configure_automata_cache(payload.automata_cache_dir)
    _WORKER_SCORER = payload.build_scorer()


def _score_chunk(chunk: Sequence[tuple]) -> list:
    """Score one chunk of ``(task, scenario, response)`` triples in order."""
    assert _WORKER_SCORER is not None, "worker used before its initializer ran"
    return [_WORKER_SCORER.score(task, scenario, response) for task, scenario, response in chunk]


# ---------------------------------------------------------------------- #
# Dispatch
# ---------------------------------------------------------------------- #
def run_serial(scorer: ResponseScorer, jobs: Sequence) -> list:
    """Score ``jobs`` inline, in order."""
    return [scorer.score(job.task, job.scenario, job.response) for job in jobs]


def run_thread(scorer: ResponseScorer, jobs: Sequence, *, max_workers: int) -> list:
    """Score ``jobs`` on a thread pool; results in submission order."""
    if len(jobs) <= 1:
        return run_serial(scorer, jobs)
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(lambda job: scorer.score(job.task, job.scenario, job.response), jobs))


class WorkerPool:
    """A lazily started, *persistent* process pool for scoring cache misses.

    The pre-refactor process backend forked a fresh ``ProcessPoolExecutor``
    per cold batch, re-running the per-worker initializer (verifier /
    world-model / evaluator construction) dozens of times per pipeline run.
    A ``WorkerPool`` instead starts its executor on the first large-enough
    batch and reuses it for every batch thereafter — ``starts`` records how
    many times the executor was actually launched over the pool's lifetime
    (1 for a healthy run), which the tests and benchmarks assert on.

    Degradation is always toward the serial reference, never toward wrong
    scores: batches below ``min_batch`` are scored inline, and a closed pool
    keeps answering via the fallback scorer.  A pool whose construction fails
    or whose workers die (``OSError`` / ``BrokenExecutor``) is *retried*
    first — the broken executor is discarded and a fresh one forked under the
    shared backoff policy (``retry``, a
    :class:`~repro.utils.retry.RetryPolicy`; ``restarts`` counts the
    rebuilds) — and only after the policy's attempts are spent does the pool
    mark itself broken and degrade to the serial loop for good.
    """

    def __init__(
        self,
        payload: WorkerPayload,
        *,
        max_workers: int,
        min_batch: int = PROCESS_MIN_BATCH,
        retry: RetryPolicy | None = None,
        sleep=time.sleep,
    ):
        self.payload = payload
        self.max_workers = max_workers
        self.min_batch = min_batch
        #: Backoff policy for rebuilding a broken executor; ``None`` keeps
        #: the historical behavior (one failure degrades straight to serial).
        self.retry = retry
        self._sleep = sleep
        self._executor: ProcessPoolExecutor | None = None
        #: Executor launches over this pool's lifetime (fork/initializer cost
        #: is paid ``starts × max_workers`` times, so reuse keeps this at 1).
        self.starts = 0
        #: Executor *rebuilds* after worker failure (0 for a healthy run).
        self.restarts = 0
        self.closed = False
        self._broken = False
        # Guards the closed/broken flags and executor creation/teardown, so a
        # run() racing close() can never fork a fresh executor that nothing
        # would ever shut down.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _acquire_executor(self) -> ProcessPoolExecutor | None:
        """The live executor (forking it on first use), or None when the pool
        is closed/broken and the caller must take the serial path."""
        with self._lock:
            if self.closed or self._broken:
                return None
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_initialize_worker,
                    initargs=(self.payload,),
                )
                self.starts += 1
            return self._executor

    def _discard_executor(self, *, permanent: bool = True) -> None:
        """Tear down the current executor; ``permanent`` marks the pool broken
        (every later batch takes the serial path) while ``False`` leaves it
        eligible for a retry rebuild."""
        with self._lock:
            executor, self._executor = self._executor, None
            if permanent:
                self._broken = True
        if executor is not None:
            try:
                executor.shutdown(wait=False)
            # Best-effort teardown of an already-broken pool: the caller is
            # about to rebuild or fall back, and a shutdown error here would
            # mask the original worker failure.
            # repro: allow[swallowed-exception] — best-effort teardown of a broken pool
            except Exception:
                pass

    # ------------------------------------------------------------------ #
    def run(self, jobs: Sequence, *, fallback: ResponseScorer) -> list:
        """Score ``jobs`` on the (reused) pool; results in submission order.

        Jobs are split into at most ``4 × max_workers`` contiguous chunks
        (enough slack for work-stealing across uneven verification times
        without paying per-job IPC); ``pool.map`` preserves chunk order, so
        concatenating the per-chunk score lists reproduces submission order
        exactly.  Batches smaller than ``min_batch`` are scored inline with
        ``fallback`` — identical scores, none of the dispatch cost.
        """
        jobs = list(jobs)
        if len(jobs) < max(self.min_batch, 2):
            return run_serial(fallback, jobs)
        triples = [(job.task, job.scenario, job.response) for job in jobs]
        chunk_size = max(1, -(-len(triples) // (self.max_workers * 4)))
        chunks = [triples[i : i + chunk_size] for i in range(0, len(triples), chunk_size)]
        # A worker failure (OSError / BrokenExecutor) is retried by rebuilding
        # the executor under the backoff policy — a transiently dead worker
        # (OOM kill, restricted sandbox hiccup) should cost one re-fork, not
        # the rest of the run's parallelism.  Only after the policy's attempts
        # are spent (or with no policy at all) does the pool mark itself
        # broken and degrade to the serial loop — still never to wrong scores.
        attempts = self.retry.max_attempts if self.retry is not None else 1
        for failures in range(1, attempts + 1):
            try:
                pool = self._acquire_executor()
            except OSError:
                pool = None
            if pool is None and not (self.closed or self._broken):
                pass  # construction failed: fall through to retry/give-up below
            elif pool is None:  # closed or broken: correctness over parallelism
                return run_serial(fallback, jobs)
            else:
                try:
                    scores: list = []
                    for chunk_scores in pool.map(_score_chunk, chunks):
                        scores.extend(chunk_scores)
                    return scores
                except (OSError, BrokenExecutor):
                    pass  # fall through to retry/give-up below
            if failures >= attempts:
                self._discard_executor(permanent=True)
                return run_serial(fallback, jobs)
            self._discard_executor(permanent=False)
            with self._lock:
                self.restarts += 1
            delay = self.retry.delay(failures)
            obs.counter("worker_pool.restarts", self.restarts)
            self._sleep(delay)
        return run_serial(fallback, jobs)  # unreachable; defensive

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the worker processes down.  Idempotent.

        Scoring through a closed pool still works — it degrades to the serial
        fallback — so a late ``score_batch`` cannot crash, only slow down.
        """
        with self._lock:
            self.closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_process(
    payload: WorkerPayload,
    jobs: Sequence,
    *,
    max_workers: int,
    fallback: ResponseScorer,
    min_batch: int = PROCESS_MIN_BATCH,
) -> list:
    """Score ``jobs`` on a *one-shot* process pool; results in submission order.

    Convenience wrapper over :class:`WorkerPool` for callers without a batch
    stream: the pool is forked, used for this batch and torn down.  Anything
    scoring more than one batch should hold a ``WorkerPool`` (as
    :class:`~repro.serving.scheduler.FeedbackService` does) and pay the
    fork/initializer cost once.
    """
    with WorkerPool(payload, max_workers=max_workers, min_batch=min_batch) as pool:
        return pool.run(jobs, fallback=fallback)
