"""Content-addressed result cache for verification feedback.

Feedback is a pure function of ``(scenario, canonical response text, feedback
mode, feedback configuration, specification set)`` — the controller built from
a response and the world model it is checked against are both deterministic.
The cache therefore keys entries by a SHA-256 digest of exactly those inputs,
evicts least-recently-used entries past a size bound, and can persist its
contents as JSON (via :mod:`repro.utils.serialization`) so a warm cache
survives across runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.utils.retry import RetryPolicy, call_with_retry
from repro.utils.serialization import dump_json_atomic, load_json

#: Bump when the key layout changes so stale persisted caches are ignored.
CACHE_SCHEMA_VERSION = 1

#: Backoff between compaction-lock acquisition attempts: a takeover that wins
#: the rename-aside claim still has to win the fresh ``O_EXCL`` create, and a
#: holder observed releasing between ``open`` and ``stat`` deserves one more
#: look — both retry once, after a short fixed pause (no jitter: the rename
#: already arbitrates races, so determinism wins over spread).
COMPACTION_LOCK_RETRY = RetryPolicy(
    max_attempts=2, base_delay=0.01, multiplier=1.0, max_delay=0.01, jitter=0.0
)


class _LockContended(Exception):
    """Internal: the compaction lock is worth one more acquisition attempt."""


def feedback_fingerprint(feedback, specifications: Mapping, *, seed: int = 0) -> str:
    """Canonical string identifying one feedback configuration.

    Covers everything besides the response/scenario that can change a score:
    the feedback mode and its parameters, the empirical seed, the full
    specification set (names *and* formulas — two rule books sharing a name
    must not share cache entries), and the package version, so persisted
    caches are invalidated when the scoring machinery itself (parser,
    lexicon, checker) changes across releases.
    """
    from repro import __version__

    specs = sorted(f"{name}={formula}" for name, formula in specifications.items())
    parts = {
        "version": __version__,
        "mode": "empirical" if feedback.use_empirical else "formal",
        "wait_action": feedback.wait_action,
        "restart_on_termination": feedback.restart_on_termination,
        "empirical_traces": feedback.empirical_traces if feedback.use_empirical else None,
        "empirical_threshold": feedback.empirical_threshold if feedback.use_empirical else None,
        "seed": seed if feedback.use_empirical else None,
        "specifications": specs,
    }
    return json.dumps(parts, sort_keys=True)


def model_digest(model) -> str:
    """Digest of a world model's structure (states, labels, transitions).

    Part of the cache key so that editing a scenario model — or supplying a
    custom ``model_builder`` — cannot make a persisted cache serve scores
    computed against the old model.
    """
    payload = json.dumps(
        {
            "name": model.name,
            "states": sorted(model.states),
            "labels": {state: sorted(model.label(state)) for state in model.states},
            "transitions": sorted(model.transitions()),
            "initial": sorted(model.initial_states),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(scenario: str, canonical_response: str, fingerprint: str, scenario_digest: str = "") -> str:
    """Content address of one feedback result."""
    payload = json.dumps(
        {
            "v": CACHE_SCHEMA_VERSION,
            "scenario": scenario,
            "model": scenario_digest,
            "response": canonical_response,
            "config": fingerprint,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of a :class:`FeedbackCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_entries: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class FeedbackCache:
    """LRU-bounded mapping from cache key to feedback score."""

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str):
        """The cached score for ``key`` (refreshing recency), or None."""
        if key not in self._entries:
            self._misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: str, score) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = score
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            max_entries=self.max_entries,
        )

    def clear(self) -> None:
        self._entries.clear()

    def entries(self) -> list:
        """``[key, score]`` pairs in recency order (least recent first)."""
        return [[key, score] for key, score in self._entries.items()]

    def merge(self, entries) -> int:
        """Fold ``[key, score]`` pairs in without touching hit/miss counters.

        Existing keys keep their current score (the in-memory entry is at
        least as fresh as a persisted one).  Returns the number of new keys
        actually *retained* — a shard larger than ``max_entries`` adopts keys
        that ``put`` immediately evicts again, and those must not inflate the
        warm-start count.
        """
        adopted = []
        for key, score in entries:
            if key not in self._entries:
                self.put(key, score)
                adopted.append(key)
        return sum(1 for key in adopted if key in self._entries)

    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the entries (recency order preserved) as JSON.

        Written atomically (tmp file + ``os.replace``): a crash or full disk
        mid-write must corrupt nothing — the previous persisted cache, if any,
        stays loadable.
        """
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "max_entries": self.max_entries,
            "entries": self.entries(),
        }
        return dump_json_atomic(payload, path)

    @classmethod
    def load(cls, path: str | Path, *, max_entries: int | None = None) -> "FeedbackCache":
        """Rebuild a cache from :meth:`save` output; stale schemas load empty.

        ``max_entries`` overrides the persisted bound only when explicitly
        given (``is None`` check, not truthiness: a caller's — or a payload's
        — 0 must surface as the constructor's ``ValueError``, not silently
        become the default bound).
        """
        payload = load_json(path)
        if max_entries is None:
            stored = payload.get("max_entries")
            max_entries = stored if stored is not None else 4096
        cache = cls(max_entries=max_entries)
        if payload.get("schema") == CACHE_SCHEMA_VERSION:
            for key, score in payload.get("entries", []):
                cache.put(key, score)
        return cache


class CacheDirectory:
    """A directory of per-fingerprint cache shards shared across runs.

    The pipeline, the benchmarks and the ``repro-serve`` CLI can all point at
    the same directory (``ServingConfig.shared_cache_dir``); each distinct
    :func:`feedback_fingerprint` owns one JSON shard named by a prefix of its
    SHA-256 digest, so runs with different feedback configurations never read
    each other's scores.  Shards are written atomically (tmp file +
    ``os.replace``) and merged with whatever a concurrent run already stored,
    so the directory only ever accumulates valid, complete shards:

    * a missing, corrupt or stale-schema shard loads as an *empty* cache —
      never a partial one;
    * in-flight ``*.tmp.<pid>`` files and advisory ``*.lock`` files are never
      read as shards;
    * a shard whose recorded fingerprint does not match the requester's
      (digest-prefix collision, hand-edited file) is ignored.

    Long-lived directories are bounded by :meth:`compact`: shards are trimmed
    to an entry budget (newest entries win), whole shards are evicted oldest-
    write-first past a byte budget, and the lock/tmp litter that ``store``'s
    atomic writes can leave behind is swept up.  ``FeedbackService.flush()``
    runs it automatically when ``ServingConfig.shared_cache_max_entries`` /
    ``shared_cache_max_bytes`` are set.
    """

    #: Hex digits of the fingerprint digest used as the shard file name.
    DIGEST_PREFIX = 16

    #: Directory-level compaction lock file (never a shard, never swept while fresh).
    COMPACT_LOCK_NAME = "compact.lock"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def shard_path(self, fingerprint: str) -> Path:
        """Where ``fingerprint``'s shard lives: ``<sha256-prefix>.json``."""
        digest = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()
        return self.root / f"{digest[: self.DIGEST_PREFIX]}.json"

    # ------------------------------------------------------------------ #
    def load(self, fingerprint: str, *, max_entries: int = 4096) -> FeedbackCache:
        """The shard for ``fingerprint`` as a cache; empty when unusable."""
        cache = FeedbackCache(max_entries=max_entries)
        cache.merge(self.shard_entries(fingerprint))
        return cache

    def store(self, fingerprint: str, cache: FeedbackCache) -> Path:
        """Merge ``cache`` into the shard for ``fingerprint`` and write it atomically.

        Entries already in the shard (e.g. from a concurrent run with the same
        fingerprint) are kept; ``cache``'s entries win on conflict, though a
        conflict can only disagree if the fingerprint failed to cover some
        scoring input — the invariant the fingerprint exists to maintain.
        The read-merge-write is serialised against concurrent ``store`` calls
        with an advisory lock file (POSIX ``flock``), so two runs flushing the
        same fingerprint both land their entries; without ``fcntl`` (non-POSIX)
        the merge is best-effort and a simultaneous flush may drop the other
        run's new entries — never corrupting the shard, only re-verifying.
        """
        shard = self.shard_path(fingerprint)
        with self._store_lock(shard):
            merged = {key: score for key, score in self.shard_entries(fingerprint)}
            merged.update(dict(cache.entries()))
            payload = {
                "schema": CACHE_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "entries": [[key, score] for key, score in merged.items()],
            }
            return dump_json_atomic(payload, shard)

    @contextmanager
    def _store_lock(self, shard: Path):
        """Advisory cross-process lock for one shard's read-merge-write."""
        try:
            import fcntl
        except ImportError:  # non-POSIX: fall back to unserialised best-effort
            yield
            return
        lock_path = shard.with_name(f"{shard.name}.lock")
        with lock_path.open("a") as lock_file:
            fcntl.flock(lock_file, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_file, fcntl.LOCK_UN)

    # ------------------------------------------------------------------ #
    def shard_entries(self, fingerprint: str) -> list:
        """Raw ``[key, score]`` pairs of the shard for ``fingerprint``.

        Empty when the shard is missing, corrupt, stale-schema, or records a
        different fingerprint — never a partial result.  Unlike :meth:`load`,
        no LRU bound is applied, so callers merging into an arbitrarily sized
        cache see every entry.
        """
        path = self.shard_path(fingerprint)
        try:
            payload = load_json(path)
            if (
                payload.get("schema") == CACHE_SCHEMA_VERSION
                and payload.get("fingerprint") == fingerprint
            ):
                return [entry for entry in payload.get("entries", []) if len(entry) == 2]
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            pass
        return []

    # ------------------------------------------------------------------ #
    # Compaction
    # ------------------------------------------------------------------ #
    def shard_files(self) -> list:
        """Every shard file in the directory, oldest write first.

        Only ``*.json`` shards count: the sibling ``*.json.lock`` advisory
        lock files and in-flight ``*.json.tmp.<pid>`` writes are never shards,
        so they can never be loaded, trimmed or mistaken for cached scores.
        A shard deleted concurrently (another process's compaction evicting
        it) is simply dropped from the listing rather than raising.
        """
        stamped = []
        for path in self.root.glob("*.json"):
            if ".tmp." in path.name or path.name.endswith(".lock"):
                continue
            try:
                stamped.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue  # evicted between glob and stat
        return [path for _mtime, _name, path in sorted(stamped)]

    def _directory_bytes(self) -> int:
        """Total size of the surviving shards, tolerant of concurrent eviction."""
        total = 0
        for shard in self.shard_files():
            try:
                total += shard.stat().st_size
            except OSError:
                continue
        return total

    # ------------------------------------------------------------------ #
    def _try_acquire_compaction_lock(self, stale_after: float, *, sleep=time.sleep) -> bool:
        """Atomically claim the directory-wide compaction lock, or report busy.

        The lock is a file created with ``O_CREAT | O_EXCL`` (atomic on every
        platform), holding the owner's pid and start time for debuggability.
        If the file already exists, the holder is presumed live and this
        process *skips* compaction — unless the lock's mtime is older than
        ``stale_after`` seconds, in which case the holder is presumed dead
        (crashed mid-compaction) and the lock is taken over via
        :meth:`_takeover_stale_lock`: an atomic rename-aside claim that
        exactly one of several racing takeover attempts can win, followed by
        one fresh ``O_EXCL`` attempt.  Retry timing (one extra attempt, after
        a short pause) is :data:`COMPACTION_LOCK_RETRY` driven through the
        shared :func:`repro.utils.retry.call_with_retry`; ``sleep`` is
        injectable so tests assert the backoff without waiting it out.
        """
        try:
            return call_with_retry(
                lambda: self._attempt_compaction_lock(stale_after),
                policy=COMPACTION_LOCK_RETRY,
                retry_on=(_LockContended,),
                sleep=sleep,
            )
        except _LockContended:
            return False  # still contended after the policy's attempts: busy

    def _attempt_compaction_lock(self, stale_after: float) -> bool:
        """One acquisition attempt: True (held), False (live holder — give
        up), or :class:`_LockContended` (a retry may succeed)."""
        lock = self.root / self.COMPACT_LOCK_NAME
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                raise _LockContended("holder released between open and stat") from None
            if age <= stale_after:
                return False  # a live process is compacting; skip this round
            if not self._takeover_stale_lock(lock, stale_after):
                return False
            raise _LockContended("stale lock taken over; re-attempt the create")
        try:
            os.write(fd, self._lock_owner_tag())
        finally:
            os.close(fd)
        return True

    def _lock_owner_tag(self) -> bytes:
        """This process's identity, written into the lock it holds."""
        return f"pid={os.getpid()}\n".encode()

    def _touch_compaction_lock(self) -> None:
        """Refresh the held lock's mtime — a lease renewal.

        Called between compaction passes (and per shard inside the trim
        loop), so a legitimately long-running compaction keeps its lock
        fresh and cannot be mistaken for a crashed holder by another
        process's staleness check.
        """
        try:
            os.utime(self.root / self.COMPACT_LOCK_NAME)
        except OSError:
            pass

    def _takeover_stale_lock(self, lock: Path, stale_after: float) -> bool:
        """Claim a stale lock without ever deleting a live one.

        The stale file is *renamed* to a private name — an atomic claim only
        one of several racing takeover attempts can win — and then re-checked:
        if the renamed file turns out to be fresh (the stale lock was replaced
        by a new holder between our staleness check and the rename), the live
        holder's file is restored via ``os.link`` (same inode, so its own
        release still works; the link fails harmlessly if a third process
        already re-created the lock) and the takeover backs off.
        """
        claimed = lock.with_name(f"{lock.name}.stale.{os.getpid()}")
        try:
            os.rename(lock, claimed)
        except OSError:
            return False  # a concurrent takeover won the rename
        try:
            stole_live_lock = time.time() - claimed.stat().st_mtime <= stale_after
        except OSError:
            stole_live_lock = False
        if stole_live_lock:
            try:
                os.link(claimed, lock)
            except OSError:
                pass
            claimed.unlink(missing_ok=True)
            return False
        claimed.unlink(missing_ok=True)
        return True

    def _release_compaction_lock(self) -> None:
        """Drop the directory-wide compaction lock (best-effort).

        Only a lock this process still owns is unlinked: if the lock went
        stale anyway and another process took it over, the file now carries
        the new owner's pid and must not be deleted out from under it.
        """
        lock = self.root / self.COMPACT_LOCK_NAME
        try:
            if lock.read_bytes() == self._lock_owner_tag():
                lock.unlink(missing_ok=True)
        except OSError:
            pass

    def compact(
        self,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        tmp_grace_seconds: float = 3600.0,
        stale_lock_seconds: float = 600.0,
    ) -> "CompactionReport":
        """Bound the directory's size and sweep up ``store``'s litter.

        Compaction is coordinated *across processes* by a directory-level
        lock (``compact.lock``, created atomically with ``O_EXCL``): two
        services flushing the same ``shared_cache_dir`` can never evict or
        rewrite shards concurrently.  A process that finds the lock held
        skips compaction for this round — the holder is already doing the
        work — and returns a report with ``skipped=True``; a lock older than
        ``stale_lock_seconds`` is presumed to belong to a crashed process and
        is taken over.

        Three passes then run, each independently best-effort (a shard
        another process is rewriting concurrently is simply skipped this
        round):

        1. *Trim*: every shard with more than ``max_entries`` entries is
           rewritten (atomically, under the same advisory lock ``store``
           takes) keeping only its **newest** ``max_entries`` entries — shard
           entries are persisted oldest-first, so the front of the list is
           the eviction end, mirroring the in-memory LRU.
        2. *Evict*: while the shards' total size exceeds ``max_bytes``, whole
           shards are deleted oldest-write-first.  Their lock files are left
           for the sweep: unlinking a lock another process currently holds
           would let a third process acquire a fresh inode and break the
           shard's mutual exclusion.
        3. *Sweep*: ``*.tmp.<pid>`` files (crashed writers) and orphaned
           ``*.lock`` files (no surviving shard — ``store`` creates locks it
           never deletes) are removed, both only once older than
           ``tmp_grace_seconds``.  The grace window keeps the sweep from
           racing a live ``store``: a brand-new fingerprint's lock exists
           before its shard does, but it was also created (fresh mtime)
           moments ago.

        Either bound may be ``None`` (unbounded); the sweep always runs.
        Returns a :class:`CompactionReport` of what was done.
        """
        if not self._try_acquire_compaction_lock(stale_lock_seconds):
            return CompactionReport(skipped=True, total_bytes=self._directory_bytes())
        try:
            return self._compact_locked(
                max_entries=max_entries,
                max_bytes=max_bytes,
                tmp_grace_seconds=tmp_grace_seconds,
            )
        finally:
            self._release_compaction_lock()

    def _compact_locked(
        self,
        *,
        max_entries: int | None,
        max_bytes: int | None,
        tmp_grace_seconds: float,
    ) -> "CompactionReport":
        """The trim/evict/sweep passes, run under the directory lock."""
        trimmed = evicted = removed_locks = removed_tmp = 0

        if max_entries is not None:
            for shard in self.shard_files():
                self._touch_compaction_lock()  # lease renewal per shard
                try:
                    with self._store_lock(shard):
                        payload = load_json(shard)
                        entries = payload.get("entries", [])
                        if (
                            payload.get("schema") == CACHE_SCHEMA_VERSION
                            and isinstance(entries, list)
                            and len(entries) > max_entries
                        ):
                            payload["entries"] = entries[len(entries) - max_entries :]
                            dump_json_atomic(payload, shard)
                            trimmed += 1
                except (OSError, ValueError, KeyError, TypeError, AttributeError):
                    continue

        if max_bytes is not None:
            self._touch_compaction_lock()
            shards = self.shard_files()
            sizes = {shard: shard.stat().st_size for shard in shards}
            total = sum(sizes.values())
            for shard in shards:  # oldest write first
                if total <= max_bytes:
                    break
                try:
                    shard.unlink(missing_ok=True)
                except OSError:
                    continue
                total -= sizes[shard]
                evicted += 1

        self._touch_compaction_lock()
        now = time.time()
        surviving = {shard.name for shard in self.shard_files()}
        for lock in self.root.glob("*.lock"):
            if lock.name == self.COMPACT_LOCK_NAME:
                continue  # the directory lock this very pass is holding
            try:
                if (
                    lock.name[: -len(".lock")] not in surviving
                    and now - lock.stat().st_mtime > tmp_grace_seconds
                ):
                    lock.unlink(missing_ok=True)
                    removed_locks += 1
            except OSError:
                continue
        for tmp in self.root.glob("*.tmp.*"):
            try:
                if now - tmp.stat().st_mtime > tmp_grace_seconds:
                    tmp.unlink(missing_ok=True)
                    removed_tmp += 1
            except OSError:
                continue
        # Rename-aside claims from crashed takeover attempts are litter too.
        for stale_claim in self.root.glob(f"{self.COMPACT_LOCK_NAME}.stale.*"):
            try:
                if now - stale_claim.stat().st_mtime > tmp_grace_seconds:
                    stale_claim.unlink(missing_ok=True)
                    removed_locks += 1
            except OSError:
                continue

        return CompactionReport(
            trimmed_shards=trimmed,
            evicted_shards=evicted,
            removed_lock_files=removed_locks,
            removed_tmp_files=removed_tmp,
            total_bytes=self._directory_bytes(),
        )


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`CacheDirectory.compact` pass did.

    ``skipped`` is True when another live process held the directory's
    compaction lock, so this call did nothing but measure the current size.
    """

    trimmed_shards: int = 0
    evicted_shards: int = 0
    removed_lock_files: int = 0
    removed_tmp_files: int = 0
    total_bytes: int = 0
    skipped: bool = False
