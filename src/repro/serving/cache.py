"""Content-addressed result cache for verification feedback.

Feedback is a pure function of ``(scenario, canonical response text, feedback
mode, feedback configuration, specification set)`` — the controller built from
a response and the world model it is checked against are both deterministic.
The cache therefore keys entries by a SHA-256 digest of exactly those inputs,
evicts least-recently-used entries past a size bound, and can persist its
contents as JSON (via :mod:`repro.utils.serialization`) so a warm cache
survives across runs.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.utils.serialization import dump_json, load_json

#: Bump when the key layout changes so stale persisted caches are ignored.
CACHE_SCHEMA_VERSION = 1


def feedback_fingerprint(feedback, specifications: Mapping, *, seed: int = 0) -> str:
    """Canonical string identifying one feedback configuration.

    Covers everything besides the response/scenario that can change a score:
    the feedback mode and its parameters, the empirical seed, the full
    specification set (names *and* formulas — two rule books sharing a name
    must not share cache entries), and the package version, so persisted
    caches are invalidated when the scoring machinery itself (parser,
    lexicon, checker) changes across releases.
    """
    from repro import __version__

    specs = sorted(f"{name}={formula}" for name, formula in specifications.items())
    parts = {
        "version": __version__,
        "mode": "empirical" if feedback.use_empirical else "formal",
        "wait_action": feedback.wait_action,
        "restart_on_termination": feedback.restart_on_termination,
        "empirical_traces": feedback.empirical_traces if feedback.use_empirical else None,
        "empirical_threshold": feedback.empirical_threshold if feedback.use_empirical else None,
        "seed": seed if feedback.use_empirical else None,
        "specifications": specs,
    }
    return json.dumps(parts, sort_keys=True)


def model_digest(model) -> str:
    """Digest of a world model's structure (states, labels, transitions).

    Part of the cache key so that editing a scenario model — or supplying a
    custom ``model_builder`` — cannot make a persisted cache serve scores
    computed against the old model.
    """
    payload = json.dumps(
        {
            "name": model.name,
            "states": sorted(model.states),
            "labels": {state: sorted(model.label(state)) for state in model.states},
            "transitions": sorted(model.transitions()),
            "initial": sorted(model.initial_states),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(scenario: str, canonical_response: str, fingerprint: str, scenario_digest: str = "") -> str:
    """Content address of one feedback result."""
    payload = json.dumps(
        {
            "v": CACHE_SCHEMA_VERSION,
            "scenario": scenario,
            "model": scenario_digest,
            "response": canonical_response,
            "config": fingerprint,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of a :class:`FeedbackCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_entries: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class FeedbackCache:
    """LRU-bounded mapping from cache key to feedback score."""

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str):
        """The cached score for ``key`` (refreshing recency), or None."""
        if key not in self._entries:
            self._misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: str, score) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = score
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._entries),
            max_entries=self.max_entries,
        )

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Persist the entries (recency order preserved) as JSON."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "max_entries": self.max_entries,
            "entries": [[key, score] for key, score in self._entries.items()],
        }
        return dump_json(payload, path)

    @classmethod
    def load(cls, path: str | Path, *, max_entries: int | None = None) -> "FeedbackCache":
        """Rebuild a cache from :meth:`save` output; stale schemas load empty."""
        payload = load_json(path)
        cache = cls(max_entries=max_entries or payload.get("max_entries", 4096))
        if payload.get("schema") == CACHE_SCHEMA_VERSION:
            for key, score in payload.get("entries", []):
                cache.put(key, score)
        return cache
