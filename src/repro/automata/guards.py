"""Propositional guards on automaton transitions.

Controller and world-model transitions in the paper (Figures 1, 5, 6, 7, 15-18)
are guarded by Boolean expressions over atomic propositions, e.g.
``green TL ∧ ¬car from left``.  A :class:`Guard` is such an expression; it
evaluates against a *symbol* (the set of propositions that currently hold).

Guards are purely propositional.  Temporal-logic specifications live in
:mod:`repro.logic`; the two layers intentionally do not share an AST so the
automata package stays import-independent from the logic package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.automata.alphabet import Symbol, canonical
from repro.errors import AutomatonError


class Guard:
    """Base class for propositional guard expressions."""

    def evaluate(self, symbol: Symbol) -> bool:
        """Return True if the guard holds for the given symbol."""
        raise NotImplementedError

    def atoms(self) -> frozenset:
        """The set of atomic propositions mentioned by the guard."""
        raise NotImplementedError

    # Operator sugar so guards compose readably: g1 & g2, g1 | g2, ~g1.
    def __and__(self, other: "Guard") -> "Guard":
        return GuardAnd((self, other))

    def __or__(self, other: "Guard") -> "Guard":
        return GuardOr((self, other))

    def __invert__(self) -> "Guard":
        return GuardNot(self)


@dataclass(frozen=True)
class GuardTrue(Guard):
    """The guard that always holds (written ``True`` on figures)."""

    def evaluate(self, symbol: Symbol) -> bool:
        return True

    def atoms(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class GuardFalse(Guard):
    """The guard that never holds."""

    def evaluate(self, symbol: Symbol) -> bool:
        return False

    def atoms(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class GuardAtom(Guard):
    """An atomic proposition used as a guard."""

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", canonical(self.name))

    def evaluate(self, symbol: Symbol) -> bool:
        return self.name in symbol

    def atoms(self) -> frozenset:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class GuardNot(Guard):
    """Negation of a guard."""

    operand: Guard

    def evaluate(self, symbol: Symbol) -> bool:
        return not self.operand.evaluate(symbol)

    def atoms(self) -> frozenset:
        return self.operand.atoms()

    def __str__(self) -> str:
        return f"!{_parenthesise(self.operand)}"


@dataclass(frozen=True)
class GuardAnd(Guard):
    """Conjunction of guards."""

    operands: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def evaluate(self, symbol: Symbol) -> bool:
        return all(op.evaluate(symbol) for op in self.operands)

    def atoms(self) -> frozenset:
        return frozenset().union(*(op.atoms() for op in self.operands)) if self.operands else frozenset()

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return " & ".join(_parenthesise(op) for op in self.operands)


@dataclass(frozen=True)
class GuardOr(Guard):
    """Disjunction of guards."""

    operands: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def evaluate(self, symbol: Symbol) -> bool:
        return any(op.evaluate(symbol) for op in self.operands)

    def atoms(self) -> frozenset:
        return frozenset().union(*(op.atoms() for op in self.operands)) if self.operands else frozenset()

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return " | ".join(_parenthesise(op) for op in self.operands)


def _parenthesise(guard: Guard) -> str:
    text = str(guard)
    if isinstance(guard, (GuardAnd, GuardOr)) and len(guard.operands) > 1:
        return f"({text})"
    return text


TRUE = GuardTrue()
FALSE = GuardFalse()


def atom(name: str) -> GuardAtom:
    """Shorthand constructor for an atomic guard."""
    return GuardAtom(name)


def conj(*guards: Guard) -> Guard:
    """Conjunction helper that flattens trivial cases."""
    guards = tuple(g for g in guards if not isinstance(g, GuardTrue))
    if any(isinstance(g, GuardFalse) for g in guards):
        return FALSE
    if not guards:
        return TRUE
    if len(guards) == 1:
        return guards[0]
    return GuardAnd(guards)


def disj(*guards: Guard) -> Guard:
    """Disjunction helper that flattens trivial cases."""
    guards = tuple(g for g in guards if not isinstance(g, GuardFalse))
    if any(isinstance(g, GuardTrue) for g in guards):
        return TRUE
    if not guards:
        return FALSE
    if len(guards) == 1:
        return guards[0]
    return GuardOr(guards)


def symbol_guard(positive: Iterable[str], negative: Iterable[str] = ()) -> Guard:
    """Guard requiring every ``positive`` atom and forbidding every ``negative`` atom."""
    pos = [atom(p) for p in positive]
    neg = [GuardNot(atom(p)) for p in negative]
    return conj(*pos, *neg)


# --------------------------------------------------------------------------- #
# A tiny recursive-descent parser for guard expressions.
#
# Grammar (standard precedence !  >  &  >  |):
#   expr   := term ('|' term)*
#   term   := factor ('&' factor)*
#   factor := '!' factor | '(' expr ')' | 'true' | 'false' | ATOM
# Unicode connectives ∧ ∨ ¬ are accepted as synonyms.
# --------------------------------------------------------------------------- #

_SYNONYMS = {"∧": "&", "∨": "|", "¬": "!", "&&": "&", "||": "|"}


def _tokenize(text: str) -> list[str]:
    for src, dst in _SYNONYMS.items():
        text = text.replace(src, f" {dst} ")
    for ch in "()&|!":
        text = text.replace(ch, f" {ch} ")
    return text.split()


def parse_guard(text: str) -> Guard:
    """Parse a guard expression such as ``"green_tl & !(car_from_left | ped)"``."""
    tokens = _tokenize(text)
    if not tokens:
        raise AutomatonError(f"empty guard expression: {text!r}")
    guard, pos = _parse_or(tokens, 0)
    if pos != len(tokens):
        raise AutomatonError(f"trailing tokens in guard {text!r}: {tokens[pos:]}")
    return guard


def _parse_or(tokens: list[str], pos: int) -> tuple[Guard, int]:
    left, pos = _parse_and(tokens, pos)
    operands = [left]
    while pos < len(tokens) and tokens[pos] == "|":
        right, pos = _parse_and(tokens, pos + 1)
        operands.append(right)
    return (operands[0] if len(operands) == 1 else GuardOr(tuple(operands))), pos


def _parse_and(tokens: list[str], pos: int) -> tuple[Guard, int]:
    left, pos = _parse_factor(tokens, pos)
    operands = [left]
    while pos < len(tokens) and tokens[pos] == "&":
        right, pos = _parse_factor(tokens, pos + 1)
        operands.append(right)
    return (operands[0] if len(operands) == 1 else GuardAnd(tuple(operands))), pos


def _parse_factor(tokens: list[str], pos: int) -> tuple[Guard, int]:
    if pos >= len(tokens):
        raise AutomatonError("unexpected end of guard expression")
    tok = tokens[pos]
    if tok == "!":
        inner, pos = _parse_factor(tokens, pos + 1)
        return GuardNot(inner), pos
    if tok == "(":
        inner, pos = _parse_or(tokens, pos + 1)
        if pos >= len(tokens) or tokens[pos] != ")":
            raise AutomatonError("unbalanced parentheses in guard expression")
        return inner, pos + 1
    if tok == ")":
        raise AutomatonError("unexpected ')' in guard expression")
    if tok.lower() == "true":
        return TRUE, pos + 1
    if tok.lower() == "false":
        return FALSE, pos + 1
    return GuardAtom(tok), pos + 1
