"""Automaton-based world models (transition systems).

Implements the model ``M = ⟨Γ_M, Q_M, δ_M, λ_M⟩`` of Section 3 together with
Algorithm 1 from the paper (system modeling): enumerate ``2^P`` candidate
states, keep the transitions the system supports and prune isolated states
(or keep everything under the conservative construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import networkx as nx

from repro.automata.alphabet import Symbol, Vocabulary, format_symbol, make_symbol, powerset_symbols
from repro.errors import AutomatonError


@dataclass
class TransitionSystem:
    """A state-labeled transition system used as an autonomous-system model.

    States carry *labels* ``λ_M(q) ∈ 2^P`` (the environment propositions true
    in that state); transitions are unlabeled pairs of states.

    Parameters
    ----------
    name:
        Human-readable model name (e.g. ``"traffic_light_intersection"``).
    vocabulary:
        The proposition/action vocabulary the model is expressed over.
    """

    name: str = "model"
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    _labels: dict = field(default_factory=dict)      # state -> Symbol
    _successors: dict = field(default_factory=dict)  # state -> set[state]
    initial_states: set = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_state(self, state: str, label: Iterable[str], *, initial: bool = False) -> str:
        """Add a state with label ``label`` (a set of proposition names)."""
        symbol = self.vocabulary.validate_symbol(label, allow_actions=False) if self.vocabulary.propositions else make_symbol(label)
        if state in self._labels and self._labels[state] != symbol:
            raise AutomatonError(f"state {state!r} already exists with a different label")
        self._labels[state] = symbol
        self._successors.setdefault(state, set())
        if initial:
            self.initial_states.add(state)
        return state

    def add_transition(self, src: str, dst: str) -> None:
        """Add the transition ``src → dst``; both states must already exist."""
        for s in (src, dst):
            if s not in self._labels:
                raise AutomatonError(f"unknown state {s!r} in transition ({src!r}, {dst!r})")
        self._successors[src].add(dst)

    def mark_initial(self, *states: str) -> None:
        """Mark states as possible initial states."""
        for s in states:
            if s not in self._labels:
                raise AutomatonError(f"unknown initial state {s!r}")
            self.initial_states.add(s)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def states(self) -> list:
        """All state names, in insertion order."""
        return list(self._labels)

    @property
    def num_states(self) -> int:
        return len(self._labels)

    @property
    def num_transitions(self) -> int:
        return sum(len(v) for v in self._successors.values())

    def label(self, state: str) -> Symbol:
        """``λ_M(state)``: the propositions true in ``state``."""
        try:
            return self._labels[state]
        except KeyError as exc:
            raise AutomatonError(f"unknown state {state!r}") from exc

    def successors(self, state: str) -> frozenset:
        """States reachable from ``state`` in one transition."""
        if state not in self._labels:
            raise AutomatonError(f"unknown state {state!r}")
        return frozenset(self._successors.get(state, ()))

    def predecessors(self, state: str) -> frozenset:
        """States with a transition into ``state``."""
        if state not in self._labels:
            raise AutomatonError(f"unknown state {state!r}")
        return frozenset(s for s, succ in self._successors.items() if state in succ)

    def has_transition(self, src: str, dst: str) -> bool:
        """``δ_M(src, dst) = 1``?"""
        return dst in self._successors.get(src, ())

    def transitions(self) -> list:
        """All transitions as ``(src, dst)`` pairs."""
        return [(s, d) for s, dsts in self._successors.items() for d in sorted(dsts)]

    def states_with_label(self, label: Iterable[str]) -> list:
        """All states whose label equals ``label``."""
        symbol = make_symbol(label)
        return [s for s, lab in self._labels.items() if lab == symbol]

    def symbols(self) -> set:
        """The set of labels Γ_M actually used."""
        return set(self._labels.values())

    # ------------------------------------------------------------------ #
    # Algorithm-1 post-processing
    # ------------------------------------------------------------------ #
    def isolated_states(self) -> set:
        """States with neither incoming nor outgoing transitions (Algorithm 1)."""
        has_out = {s for s, succ in self._successors.items() if succ}
        has_in = {d for succ in self._successors.values() for d in succ}
        return {s for s in self._labels if s not in has_out and s not in has_in}

    def prune_isolated_states(self) -> int:
        """Remove isolated states in place; return how many were removed."""
        isolated = self.isolated_states()
        for s in isolated:
            del self._labels[s]
            self._successors.pop(s, None)
            self.initial_states.discard(s)
        for succ in self._successors.values():
            succ.difference_update(isolated)
        return len(isolated)

    def validate(self) -> None:
        """Raise :class:`AutomatonError` if the model is structurally inconsistent."""
        for src, dsts in self._successors.items():
            if src not in self._labels:
                raise AutomatonError(f"transition source {src!r} is not a state")
            for dst in dsts:
                if dst not in self._labels:
                    raise AutomatonError(f"transition target {dst!r} is not a state")
        for s in self.initial_states:
            if s not in self._labels:
                raise AutomatonError(f"initial state {s!r} is not a state")

    # ------------------------------------------------------------------ #
    # Composition & export
    # ------------------------------------------------------------------ #
    def union(self, other: "TransitionSystem", name: str | None = None) -> "TransitionSystem":
        """Disjoint union of two models (used to form the universal model).

        States are prefixed with their model of origin so scenario models with
        overlapping state names (``p0``, ``p1``, ...) stay distinguishable.
        """
        merged = TransitionSystem(
            name=name or f"{self.name}+{other.name}",
            vocabulary=self.vocabulary.merged_with(other.vocabulary),
        )
        for model, prefix in ((self, self.name), (other, other.name)):
            for state in model.states:
                merged.add_state(
                    f"{prefix}::{state}",
                    model.label(state),
                    initial=state in model.initial_states,
                )
            for src, dst in model.transitions():
                merged.add_transition(f"{prefix}::{src}", f"{prefix}::{dst}")
        return merged

    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` with ``label`` node attributes."""
        graph = nx.DiGraph(name=self.name)
        for state in self.states:
            graph.add_node(state, label=sorted(self.label(state)), initial=state in self.initial_states)
        graph.add_edges_from(self.transitions())
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransitionSystem(name={self.name!r}, states={self.num_states}, "
            f"transitions={self.num_transitions}, initial={sorted(self.initial_states)})"
        )


def build_model_from_system(
    propositions: Iterable[str],
    transition_allowed: Callable[[Symbol, Symbol], bool],
    *,
    name: str = "model",
    vocabulary: Vocabulary | None = None,
    conservative: bool = False,
    initial_labels: Iterable[Iterable[str]] | None = None,
) -> TransitionSystem:
    """Algorithm 1: build a model from propositions and a transition oracle.

    Creates one state per symbol ``σ ∈ 2^P``, adds the transition ``p_i → p_j``
    whenever the system allows moving from ``λ(p_i)`` to ``λ(p_j)``, and prunes
    isolated states.  With ``conservative=True`` every transition is added and
    no state is removed (the conservative construction discussed in Section
    4.1, which avoids missing transitions at higher verification cost).

    Parameters
    ----------
    propositions:
        The atomic proposition set ``P``.
    transition_allowed:
        Oracle ``(σ_i, σ_j) → bool`` answering "does the system S support the
        transition from behaviour σ_i to behaviour σ_j?".  Ignored when
        ``conservative`` is True.
    initial_labels:
        Optional collection of labels whose states become initial; defaults to
        every surviving state.
    """
    props = sorted({p for p in propositions})
    vocab = vocabulary or Vocabulary(propositions=frozenset(props))
    model = TransitionSystem(name=name, vocabulary=vocab)

    symbols = list(powerset_symbols(props))
    state_of: dict[Symbol, str] = {}
    for idx, symbol in enumerate(symbols):
        state = f"p{idx}"
        model.add_state(state, symbol)
        state_of[symbol] = state

    for sym_i in symbols:
        for sym_j in symbols:
            if conservative or transition_allowed(sym_i, sym_j):
                model.add_transition(state_of[sym_i], state_of[sym_j])

    if not conservative:
        model.prune_isolated_states()

    if initial_labels is not None:
        for label in initial_labels:
            for state in model.states_with_label(label):
                model.mark_initial(state)
    else:
        model.mark_initial(*model.states)

    model.validate()
    return model


def build_model_from_labels(
    name: str,
    vocabulary: Vocabulary,
    labels: Mapping[str, Iterable[str]],
    transitions: Iterable[tuple],
    initial_states: Iterable[str] | None = None,
) -> TransitionSystem:
    """Convenience constructor for hand-specified scenario models (Figs. 5-17)."""
    model = TransitionSystem(name=name, vocabulary=vocabulary)
    for state, label in labels.items():
        model.add_state(state, label)
    for src, dst in transitions:
        model.add_transition(src, dst)
    model.mark_initial(*(initial_states if initial_states is not None else labels.keys()))
    model.validate()
    return model


def describe_model(model: TransitionSystem) -> str:
    """Multi-line human-readable description of a model (used by examples)."""
    lines = [f"Model {model.name}: {model.num_states} states, {model.num_transitions} transitions"]
    for state in model.states:
        mark = "*" if state in model.initial_states else " "
        succ = ", ".join(sorted(model.successors(state))) or "-"
        lines.append(f"  {mark}{state}: {format_symbol(model.label(state))} -> {succ}")
    return "\n".join(lines)
