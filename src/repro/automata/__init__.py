"""Automata substrate: alphabets, world models, controllers, products, Büchi.

This package implements Section 3 and Appendix A of the paper:

* :mod:`repro.automata.alphabet` — atomic propositions, actions, symbols.
* :mod:`repro.automata.guards` — propositional transition guards.
* :mod:`repro.automata.transition_system` — world models M and Algorithm 1.
* :mod:`repro.automata.fsa` — FSA controllers C.
* :mod:`repro.automata.product` — the product automaton M ⊗ C.
* :mod:`repro.automata.kripke` — state-labeled structures for model checking.
* :mod:`repro.automata.buchi` — (generalized) Büchi automata.
"""

from repro.automata.alphabet import EPSILON, Symbol, Vocabulary, canonical, format_symbol, make_symbol, powerset_symbols
from repro.automata.buchi import BuchiAutomaton, GeneralizedBuchiAutomaton, LabelConstraint
from repro.automata.fsa import ControllerTransition, FSAController, always_controller
from repro.automata.guards import (
    FALSE,
    TRUE,
    Guard,
    GuardAnd,
    GuardAtom,
    GuardNot,
    GuardOr,
    atom,
    conj,
    disj,
    parse_guard,
    symbol_guard,
)
from repro.automata.kripke import KripkeStructure
from repro.automata.product import ProductState, build_product, product_statistics
from repro.automata.transition_system import (
    TransitionSystem,
    build_model_from_labels,
    build_model_from_system,
    describe_model,
)

__all__ = [
    "EPSILON",
    "Symbol",
    "Vocabulary",
    "canonical",
    "format_symbol",
    "make_symbol",
    "powerset_symbols",
    "BuchiAutomaton",
    "GeneralizedBuchiAutomaton",
    "LabelConstraint",
    "ControllerTransition",
    "FSAController",
    "always_controller",
    "FALSE",
    "TRUE",
    "Guard",
    "GuardAnd",
    "GuardAtom",
    "GuardNot",
    "GuardOr",
    "atom",
    "conj",
    "disj",
    "parse_guard",
    "symbol_guard",
    "KripkeStructure",
    "ProductState",
    "build_product",
    "product_statistics",
    "TransitionSystem",
    "build_model_from_labels",
    "build_model_from_system",
    "describe_model",
]
