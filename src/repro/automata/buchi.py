"""Büchi automata over propositional transition labels.

Used by the LTL→automaton translation (:mod:`repro.logic.ltl2buchi`) and the
model checker.  Transition labels are *literal constraints*: a pair of sets
``(positive, negative)`` meaning every positive atom must hold and no negative
atom may hold in the symbol being read; this is the natural output format of
the tableau construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.automata.alphabet import Symbol
from repro.errors import AutomatonError


@dataclass(frozen=True)
class LabelConstraint:
    """A conjunction of literals constraining which symbols a transition reads."""

    positive: frozenset = frozenset()
    negative: frozenset = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "positive", frozenset(self.positive))
        object.__setattr__(self, "negative", frozenset(self.negative))

    def is_consistent(self) -> bool:
        """False if the constraint requires an atom to be both true and false."""
        return not (self.positive & self.negative)

    def satisfied_by(self, symbol: Symbol) -> bool:
        """True if ``symbol`` satisfies every literal."""
        return self.positive <= symbol and not (self.negative & symbol)

    def merge(self, other: "LabelConstraint") -> "LabelConstraint":
        """Conjunction of two constraints."""
        return LabelConstraint(self.positive | other.positive, self.negative | other.negative)

    def __str__(self) -> str:
        parts = sorted(self.positive) + [f"!{a}" for a in sorted(self.negative)]
        return " & ".join(parts) if parts else "true"


TRUE_CONSTRAINT = LabelConstraint()


@dataclass(frozen=True)
class BuchiTransition:
    """A transition ``source --constraint--> target`` of a Büchi automaton."""

    source: Hashable
    constraint: LabelConstraint
    target: Hashable


@dataclass
class BuchiAutomaton:
    """A (non-deterministic) Büchi automaton with a single acceptance set."""

    name: str = "buchi"
    states: set = field(default_factory=set)
    initial_states: set = field(default_factory=set)
    accepting_states: set = field(default_factory=set)
    transitions: list = field(default_factory=list)

    def add_state(self, state: Hashable, *, initial: bool = False, accepting: bool = False) -> Hashable:
        self.states.add(state)
        if initial:
            self.initial_states.add(state)
        if accepting:
            self.accepting_states.add(state)
        return state

    def add_transition(self, source: Hashable, constraint: LabelConstraint, target: Hashable) -> None:
        if source not in self.states or target not in self.states:
            raise AutomatonError(f"Büchi transition references unknown states: {source!r} -> {target!r}")
        if not constraint.is_consistent():
            return  # an inconsistent constraint can never fire; drop it silently
        self.transitions.append(BuchiTransition(source, constraint, target))

    def transitions_from(self, state: Hashable) -> list:
        return [t for t in self.transitions if t.source == state]

    def successors_on(self, state: Hashable, symbol: Symbol) -> list:
        """States reachable from ``state`` by reading ``symbol``."""
        return [t.target for t in self.transitions_from(state) if t.constraint.satisfied_by(symbol)]

    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    def validate(self) -> None:
        if not self.initial_states:
            raise AutomatonError(f"Büchi automaton {self.name!r} has no initial state")
        unknown = (self.initial_states | self.accepting_states) - self.states
        if unknown:
            raise AutomatonError(f"Büchi automaton references unknown states {unknown!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BuchiAutomaton(name={self.name!r}, states={self.num_states}, "
            f"transitions={self.num_transitions}, accepting={len(self.accepting_states)})"
        )


@dataclass
class GeneralizedBuchiAutomaton:
    """A Büchi automaton with several acceptance sets (the tableau output)."""

    name: str = "gba"
    states: set = field(default_factory=set)
    initial_states: set = field(default_factory=set)
    acceptance_sets: list = field(default_factory=list)  # list[set[state]]
    transitions: list = field(default_factory=list)

    def add_state(self, state: Hashable, *, initial: bool = False) -> Hashable:
        self.states.add(state)
        if initial:
            self.initial_states.add(state)
        return state

    def add_transition(self, source: Hashable, constraint: LabelConstraint, target: Hashable) -> None:
        if source not in self.states or target not in self.states:
            raise AutomatonError(f"GBA transition references unknown states: {source!r} -> {target!r}")
        if not constraint.is_consistent():
            return
        self.transitions.append(BuchiTransition(source, constraint, target))

    def transitions_from(self, state: Hashable) -> list:
        return [t for t in self.transitions if t.source == state]

    def degeneralize(self) -> BuchiAutomaton:
        """Standard counter construction: GBA with k acceptance sets → NBA.

        States become ``(state, i)`` where ``i`` counts which acceptance set we
        are waiting to visit next; the NBA accepting set is ``{(s, 0) | s ∈ F_0}``
        reached after cycling through every ``F_i``.
        """
        k = len(self.acceptance_sets)
        nba = BuchiAutomaton(name=f"{self.name}_degeneralized")
        if k == 0:
            # No acceptance obligations: every state is accepting.
            for s in self.states:
                nba.add_state((s, 0), initial=s in self.initial_states, accepting=True)
            for t in self.transitions:
                nba.add_transition((t.source, 0), t.constraint, (t.target, 0))
            nba.validate()
            return nba

        for s in self.states:
            for i in range(k):
                nba.add_state(
                    (s, i),
                    initial=(s in self.initial_states and i == 0),
                    accepting=(i == 0 and s in self.acceptance_sets[0]),
                )
        for t in self.transitions:
            for i in range(k):
                # Advance the counter when the source lies in the i-th set.
                j = (i + 1) % k if t.source in self.acceptance_sets[i] else i
                nba.add_transition((t.source, i), t.constraint, (t.target, j))
        nba.validate()
        return nba

    @property
    def num_states(self) -> int:
        return len(self.states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GeneralizedBuchiAutomaton(name={self.name!r}, states={self.num_states}, "
            f"acceptance_sets={len(self.acceptance_sets)})"
        )


def constraint_from_literals(literals: Iterable[tuple]) -> LabelConstraint:
    """Build a constraint from ``(atom, polarity)`` pairs."""
    pos, neg = set(), set()
    for atom_name, polarity in literals:
        (pos if polarity else neg).add(atom_name)
    return LabelConstraint(frozenset(pos), frozenset(neg))
