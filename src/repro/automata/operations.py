"""Graph-level operations shared by automata: reachability, SCCs, lassos."""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

import networkx as nx

from repro.automata.kripke import KripkeStructure


def reachable_from(start: Iterable[Hashable], successors: Callable[[Hashable], Iterable[Hashable]]) -> set:
    """Generic forward reachability over a successor function."""
    seen: set = set()
    stack = list(start)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(successors(node))
    return seen


def strongly_connected_components(kripke: KripkeStructure) -> list:
    """SCCs of a Kripke structure (each returned as a set of states)."""
    return [set(c) for c in nx.strongly_connected_components(kripke.to_networkx())]


def nontrivial_sccs(kripke: KripkeStructure) -> list:
    """SCCs that contain at least one internal edge (can sustain an infinite run)."""
    graph = kripke.to_networkx()
    out = []
    for comp in nx.strongly_connected_components(graph):
        comp = set(comp)
        if len(comp) > 1:
            out.append(comp)
        else:
            (state,) = comp
            if graph.has_edge(state, state):
                out.append(comp)
    return out


def shortest_path(
    kripke: KripkeStructure, sources: Iterable[Hashable], target_predicate: Callable[[Hashable], bool]
) -> list:
    """BFS shortest path from any source to a state satisfying the predicate.

    Returns the path as a list of states (empty if unreachable).
    """
    from collections import deque

    parents: dict = {}
    queue = deque()
    for s in sources:
        if s not in parents:
            parents[s] = None
            queue.append(s)
    while queue:
        state = queue.popleft()
        if target_predicate(state):
            path = [state]
            while parents[path[-1]] is not None:
                path.append(parents[path[-1]])
            return list(reversed(path))
        for succ in kripke.successors(state):
            if succ not in parents:
                parents[succ] = state
                queue.append(succ)
    return []


def find_cycle_through(kripke: KripkeStructure, state: Hashable) -> list:
    """A cycle starting and ending at ``state`` (empty list if none exists)."""
    path = shortest_path(
        kripke,
        kripke.successors(state),
        lambda s: s == state,
    )
    if not path:
        return []
    return [state] + path
