"""Graph-level operations shared by automata: reachability, SCCs, lassos."""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

import networkx as nx

from repro.automata.kripke import KripkeStructure


def reachable_from(start: Iterable[Hashable], successors: Callable[[Hashable], Iterable[Hashable]]) -> set:
    """Generic forward reachability over a successor function."""
    seen: set = set()
    stack = list(start)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(successors(node))
    return seen


def strongly_connected_subgraphs(
    nodes: Iterable[Hashable], successors: Callable[[Hashable], Iterable[Hashable]]
) -> list:
    """SCCs of an arbitrary digraph given by a successor function.

    ``nodes`` fixes the vertex set *and* the iteration order (making the
    result deterministic for ordered inputs); edges leading outside ``nodes``
    are ignored.  Iterative Tarjan — no recursion limit, no networkx
    dependency — so it is usable on automata whose states are not Kripke
    states (the NBA pruning path).  Components are returned as lists in
    Tarjan completion order.
    """
    node_list = list(nodes)
    members = set(node_list)
    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list = []
    counter = 0
    for root in node_list:
        if root in index:
            continue
        work = [(root, iter(successors(root)))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            descended = False
            for child in edges:
                if child not in members:
                    continue
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(successors(child))))
                    descended = True
                    break
                if child in on_stack and index[child] < low[node]:
                    low[node] = index[child]
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def cycle_nodes(
    nodes: Iterable[Hashable], successors: Callable[[Hashable], Iterable[Hashable]]
) -> set:
    """Nodes lying on some cycle: members of a nontrivial SCC or self-looping.

    The complement is exactly the set of states an accepting run can visit
    only finitely often — what the Büchi pruning pass discards when no
    accepting state survives here.
    """
    on_cycle: set = set()
    for component in strongly_connected_subgraphs(nodes, successors):
        if len(component) > 1:
            on_cycle.update(component)
        else:
            (node,) = component
            if node in set(successors(node)):
                on_cycle.add(node)
    return on_cycle


def backward_reachable(
    nodes: Iterable[Hashable],
    successors: Callable[[Hashable], Iterable[Hashable]],
    targets: Iterable[Hashable],
) -> set:
    """Nodes from which some target is reachable (inverts the edge relation).

    Restricted to ``nodes``; targets outside it are ignored.
    """
    node_list = list(nodes)
    members = set(node_list)
    predecessors: dict = {node: [] for node in node_list}
    for node in node_list:
        for child in successors(node):
            if child in members:
                predecessors[child].append(node)
    seen = {t for t in targets if t in members}
    stack = list(seen)
    while stack:
        node = stack.pop()
        for pred in predecessors[node]:
            if pred not in seen:
                seen.add(pred)
                stack.append(pred)
    return seen


def strongly_connected_components(kripke: KripkeStructure) -> list:
    """SCCs of a Kripke structure (each returned as a set of states)."""
    return [set(c) for c in nx.strongly_connected_components(kripke.to_networkx())]


def nontrivial_sccs(kripke: KripkeStructure) -> list:
    """SCCs that contain at least one internal edge (can sustain an infinite run)."""
    graph = kripke.to_networkx()
    out = []
    for comp in nx.strongly_connected_components(graph):
        comp = set(comp)
        if len(comp) > 1:
            out.append(comp)
        else:
            (state,) = comp
            if graph.has_edge(state, state):
                out.append(comp)
    return out


def shortest_path(
    kripke: KripkeStructure, sources: Iterable[Hashable], target_predicate: Callable[[Hashable], bool]
) -> list:
    """BFS shortest path from any source to a state satisfying the predicate.

    Returns the path as a list of states (empty if unreachable).
    """
    from collections import deque

    parents: dict = {}
    queue = deque()
    for s in sources:
        if s not in parents:
            parents[s] = None
            queue.append(s)
    while queue:
        state = queue.popleft()
        if target_predicate(state):
            path = [state]
            while parents[path[-1]] is not None:
                path.append(parents[path[-1]])
            return list(reversed(path))
        for succ in kripke.successors(state):
            if succ not in parents:
                parents[succ] = state
                queue.append(succ)
    return []


def find_cycle_through(kripke: KripkeStructure, state: Hashable) -> list:
    """A cycle starting and ending at ``state`` (empty list if none exists)."""
    path = shortest_path(
        kripke,
        kripke.successors(state),
        lambda s: s == state,
    )
    if not path:
        return []
    return [state] + path
