"""Product automaton ``P = M ⊗ C`` (Appendix A of the paper).

The product describes how the controller's actions interleave with the
model's environment dynamics.  Product states are triples ``(p, q, a)``:

* ``p`` — current model state (environment configuration, labeled ``λ_M(p)``),
* ``q`` — current controller state,
* ``a`` — the output symbol the controller emits for observation ``λ_M(p)``
  while moving to its next state.

The state's label is ``λ_M(p) ∪ a``, exactly the labeled-trajectory alphabet
``2^{P ∪ PA}`` of the Appendix, so LTL specifications over propositions *and*
actions can be checked on the resulting Kripke structure.

The construction implicitly assumes every action succeeds (Section 4.2): the
environment then evolves along any δ_M-successor of ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.alphabet import Symbol, format_symbol
from repro.automata.fsa import FSAController
from repro.automata.kripke import KripkeStructure
from repro.automata.transition_system import TransitionSystem
from repro.errors import AutomatonError


@dataclass(frozen=True)
class ProductState:
    """One state ``(p, q, a)`` of the product automaton."""

    model_state: str
    controller_state: str
    action: Symbol

    def __str__(self) -> str:
        return f"({self.model_state}, {self.controller_state}, {format_symbol(self.action)})"


def _controller_moves(controller: FSAController, state: str, observation: Symbol):
    """Enabled ``(action, next_controller_state)`` pairs for an observation."""
    return [(t.action, t.target) for t in controller.enabled_transitions(state, observation)]


def build_product(
    model: TransitionSystem,
    controller: FSAController,
    *,
    stutter_on_deadlock: bool = True,
    restart_on_termination: bool = False,
) -> KripkeStructure:
    """Construct the product ``M ⊗ C`` as a state-labeled Kripke structure.

    Parameters
    ----------
    model, controller:
        The world model and the FSA controller to compose.
    stutter_on_deadlock:
        If True (default), product states from which no joint move exists get a
        self-loop so all paths are infinite — the convention NuSMV enforces via
        a total transition relation.  If False, deadlocks are left in place and
        the caller may inspect them.
    restart_on_termination:
        If True, a product state whose controller component has no outgoing
        move (the controller finished its step list) restarts the controller
        from ``q0`` while the environment keeps evolving, modelling a vehicle
        that repeatedly re-encounters the scenario.  This mirrors the default
        ``TRUE : next(action) = ...`` case of the paper's Appendix-D SMV
        modules, which keeps the transition relation total after the listed
        steps are exhausted.  If False, such states stutter (when
        ``stutter_on_deadlock``) or are left deadlocked.

    Raises
    ------
    AutomatonError
        If the controller blocks on every initial model state (empty product).
    """
    model.validate()
    controller.validate()

    kripke = KripkeStructure(name=f"{model.name}(x){controller.name}")

    # Initial product states: (p, q0, a) for every initial/known model state p
    # and every controller move enabled on λ_M(p).  The paper verifies "for all
    # the possible initial states", so if the model designates no initial
    # states we fall back to all of them.
    initial_model_states = sorted(model.initial_states) or model.states
    frontier: list[ProductState] = []
    seen: set[ProductState] = set()

    def ensure_state(product_state: ProductState, *, initial: bool = False) -> ProductState:
        label = model.label(product_state.model_state) | product_state.action
        kripke.add_state(product_state, label, initial=initial)
        if product_state not in seen:
            seen.add(product_state)
            frontier.append(product_state)
        return product_state

    for p in initial_model_states:
        observation = model.label(p)
        for action, _q_next in _controller_moves(controller, controller.initial_state, observation):
            ensure_state(ProductState(p, controller.initial_state, action), initial=True)

    if not kripke.initial_states:
        raise AutomatonError(
            f"controller {controller.name!r} has no enabled transition in any initial "
            f"state of model {model.name!r}; the product automaton is empty"
        )

    # Forward exploration of the reachable product.
    while frontier:
        current = frontier.pop()
        p, q, action = current.model_state, current.controller_state, current.action
        observation = model.label(p)

        # Controller successors consistent with the action recorded in `current`.
        controller_targets = [
            t.target
            for t in controller.enabled_transitions(q, observation)
            if t.action == action
        ]
        model_targets = model.successors(p)

        added_successor = False
        for q_next in controller_targets:
            for p_next in model_targets:
                next_observation = model.label(p_next)
                for next_action, _ in _controller_moves(controller, q_next, next_observation):
                    successor = ProductState(p_next, q_next, next_action)
                    ensure_state(successor)
                    kripke.add_transition(current, successor)
                    added_successor = True

        if not added_successor and restart_on_termination:
            # The controller has no continuation for this action/state: restart
            # it at q0 while the environment keeps evolving.
            for p_next in model_targets:
                next_observation = model.label(p_next)
                for next_action, _ in _controller_moves(controller, controller.initial_state, next_observation):
                    successor = ProductState(p_next, controller.initial_state, next_action)
                    ensure_state(successor)
                    kripke.add_transition(current, successor)
                    added_successor = True

        if not added_successor and stutter_on_deadlock:
            kripke.add_transition(current, current)

    if stutter_on_deadlock:
        kripke.make_total()
    kripke.validate()
    return kripke


def product_statistics(kripke: KripkeStructure) -> dict:
    """Summary statistics of a product automaton (used in reports/benchmarks)."""
    deadlocks = {s for s in kripke.states if kripke.successors(s) == frozenset({s})}
    return {
        "states": kripke.num_states,
        "transitions": kripke.num_transitions,
        "initial_states": len(kripke.initial_states),
        "stutter_states": len(deadlocks),
        "atoms": sorted(kripke.atoms()),
    }
