"""State-labeled Kripke structures — the input format of the model checker.

The product automaton ``M ⊗ C`` of the paper labels *transitions* with
``λ_M(p) ∪ a``.  For automata-theoretic LTL model checking it is convenient to
work with state labels, so :mod:`repro.automata.product` re-encodes the
edge-labeled product as a Kripke structure whose states carry the combined
proposition/action label of the step being taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

import networkx as nx

from repro.automata.alphabet import Symbol, format_symbol, make_symbol
from repro.errors import AutomatonError


@dataclass
class KripkeStructure:
    """A finite Kripke structure ``(S, S0, R, L)`` over atomic propositions."""

    name: str = "kripke"
    _labels: dict = field(default_factory=dict)      # state -> Symbol
    _successors: dict = field(default_factory=dict)  # state -> set[state]
    initial_states: set = field(default_factory=set)

    def add_state(self, state: Hashable, label: Iterable[str], *, initial: bool = False) -> Hashable:
        """Add a state with its label; states may be any hashable value."""
        symbol = label if isinstance(label, frozenset) else make_symbol(label)
        existing = self._labels.get(state)
        if existing is not None and existing != symbol:
            raise AutomatonError(f"state {state!r} already exists with a different label")
        self._labels[state] = symbol
        self._successors.setdefault(state, set())
        if initial:
            self.initial_states.add(state)
        return state

    def add_transition(self, src: Hashable, dst: Hashable) -> None:
        """Add ``src → dst``; both states must exist."""
        for s in (src, dst):
            if s not in self._labels:
                raise AutomatonError(f"unknown state {s!r} in Kripke transition")
        self._successors[src].add(dst)

    @property
    def states(self) -> list:
        return list(self._labels)

    @property
    def num_states(self) -> int:
        return len(self._labels)

    @property
    def num_transitions(self) -> int:
        return sum(len(v) for v in self._successors.values())

    def label(self, state: Hashable) -> Symbol:
        try:
            return self._labels[state]
        except KeyError as exc:
            raise AutomatonError(f"unknown state {state!r}") from exc

    def successors(self, state: Hashable) -> frozenset:
        if state not in self._labels:
            raise AutomatonError(f"unknown state {state!r}")
        return frozenset(self._successors.get(state, ()))

    def transitions(self) -> Iterator[tuple]:
        for src, dsts in self._successors.items():
            for dst in dsts:
                yield (src, dst)

    def deadlock_states(self) -> set:
        """States with no successor (the transition relation is not total there)."""
        return {s for s, succ in self._successors.items() if not succ}

    def make_total(self) -> int:
        """Add self-loops on deadlock states so every path is infinite.

        Mirrors NuSMV's requirement of a total transition relation; returns the
        number of self-loops added.
        """
        deadlocks = self.deadlock_states()
        for s in deadlocks:
            self._successors[s].add(s)
        return len(deadlocks)

    def reachable_states(self) -> set:
        """States reachable from some initial state."""
        seen: set = set()
        stack = list(self.initial_states)
        while stack:
            state = stack.pop()
            if state in seen:
                continue
            seen.add(state)
            stack.extend(self._successors.get(state, ()))
        return seen

    def restrict_to_reachable(self) -> "KripkeStructure":
        """Return a copy containing only states reachable from the initial set."""
        reachable = self.reachable_states()
        restricted = KripkeStructure(name=self.name)
        for state in self.states:
            if state in reachable:
                restricted.add_state(state, self.label(state), initial=state in self.initial_states)
        for src, dst in self.transitions():
            if src in reachable and dst in reachable:
                restricted.add_transition(src, dst)
        return restricted

    def atoms(self) -> frozenset:
        """All atomic propositions appearing in any label."""
        out = frozenset()
        for label in self._labels.values():
            out |= label
        return out

    def validate(self) -> None:
        if not self.initial_states:
            raise AutomatonError(f"Kripke structure {self.name!r} has no initial state")
        for s in self.initial_states:
            if s not in self._labels:
                raise AutomatonError(f"initial state {s!r} is not a state")

    def to_networkx(self) -> nx.DiGraph:
        graph = nx.DiGraph(name=self.name)
        for state in self.states:
            graph.add_node(state, label=sorted(self.label(state)), initial=state in self.initial_states)
        graph.add_edges_from(self.transitions())
        return graph

    def describe(self, limit: int = 50) -> str:
        """Readable rendering (truncated to ``limit`` states)."""
        lines = [f"Kripke {self.name}: {self.num_states} states, {self.num_transitions} transitions"]
        for state in self.states[:limit]:
            mark = "*" if state in self.initial_states else " "
            lines.append(f"  {mark}{state}: {format_symbol(self.label(state))}")
        if self.num_states > limit:
            lines.append(f"  ... ({self.num_states - limit} more states)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KripkeStructure(name={self.name!r}, states={self.num_states}, transitions={self.num_transitions})"
