"""Graphviz DOT export for models, controllers, and Kripke structures.

The exports are text-only (no graphviz dependency): they produce ``.dot``
source a user can render offline, matching the figures in the paper.
"""

from __future__ import annotations

from repro.automata.alphabet import format_symbol
from repro.automata.fsa import FSAController
from repro.automata.kripke import KripkeStructure
from repro.automata.transition_system import TransitionSystem


def _quote(text: str) -> str:
    return '"' + str(text).replace('"', '\\"') + '"'


def transition_system_to_dot(model: TransitionSystem) -> str:
    """Render a world model as DOT (states labeled with their propositions)."""
    lines = [f"digraph {_quote(model.name)} {{", "  rankdir=LR;"]
    for state in model.states:
        shape = "doublecircle" if state in model.initial_states else "circle"
        label = f"{state}\\n{format_symbol(model.label(state))}"
        lines.append(f"  {_quote(state)} [shape={shape}, label={_quote(label)}];")
    for src, dst in model.transitions():
        lines.append(f"  {_quote(src)} -> {_quote(dst)};")
    lines.append("}")
    return "\n".join(lines)


def controller_to_dot(controller: FSAController) -> str:
    """Render an FSA controller as DOT (edges labeled ``guard / action``)."""
    lines = [f"digraph {_quote(controller.name)} {{", "  rankdir=LR;"]
    for state in controller.states:
        shape = "doublecircle" if state == controller.initial_state else "circle"
        lines.append(f"  {_quote(state)} [shape={shape}];")
    for t in controller.transitions:
        label = f"{t.guard} / {format_symbol(t.action)}"
        lines.append(f"  {_quote(t.source)} -> {_quote(t.target)} [label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines)


def kripke_to_dot(kripke: KripkeStructure, limit: int = 200) -> str:
    """Render a Kripke structure as DOT; truncated past ``limit`` states."""
    lines = [f"digraph {_quote(kripke.name)} {{", "  rankdir=LR;"]
    states = kripke.states[:limit]
    state_set = set(states)
    for state in states:
        shape = "doublecircle" if state in kripke.initial_states else "circle"
        label = f"{state}\\n{format_symbol(kripke.label(state))}"
        lines.append(f"  {_quote(state)} [shape={shape}, label={_quote(label)}];")
    for src, dst in kripke.transitions():
        if src in state_set and dst in state_set:
            lines.append(f"  {_quote(src)} -> {_quote(dst)};")
    lines.append("}")
    return "\n".join(lines)
