"""Finite-state-automaton controllers.

Implements the controller ``A = ⟨Σ, A, Q, q0, δ⟩`` of Section 3: input symbols
are subsets of the environment propositions ``P`` (represented here by a
propositional :class:`~repro.automata.guards.Guard` on each transition),
output symbols are subsets of the action propositions ``PA`` (including the
empty symbol ε), and ``δ`` is a non-deterministic transition relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.automata.alphabet import EPSILON, Symbol, Vocabulary, format_symbol, make_symbol
from repro.automata.guards import TRUE, Guard, parse_guard
from repro.errors import AutomatonError


@dataclass(frozen=True)
class ControllerTransition:
    """One guarded transition ``(q, σ-guard, a, q')`` of a controller."""

    source: str
    guard: Guard
    action: Symbol
    target: str

    def __str__(self) -> str:
        return f"{self.source} --({self.guard}, {format_symbol(self.action)})--> {self.target}"


@dataclass
class FSAController:
    """An automaton-based controller for a sequential decision-making task.

    Parameters
    ----------
    name:
        Controller name, typically derived from the task prompt.
    vocabulary:
        Propositions (inputs) and actions (outputs) the controller ranges over.
    initial_state:
        ``q0``; set explicitly or defaults to the first state added.
    """

    name: str = "controller"
    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    initial_state: str | None = None
    _states: list = field(default_factory=list)
    _transitions: list = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_state(self, state: str, *, initial: bool = False) -> str:
        """Add a controller state; the first state added becomes q0 by default."""
        if state not in self._states:
            self._states.append(state)
        if initial or self.initial_state is None:
            self.initial_state = state if initial else (self.initial_state or state)
        return state

    def add_transition(
        self,
        source: str,
        guard: Guard | str,
        action: Iterable[str] | str | None,
        target: str,
    ) -> ControllerTransition:
        """Add transition ``(source, guard, action, target)``.

        ``guard`` may be a :class:`Guard` or a guard expression string;
        ``action`` may be an action name, an iterable of names, or ``None``/
        empty for the ε (no-operation) output symbol.
        """
        for s in (source, target):
            if s not in self._states:
                raise AutomatonError(f"unknown controller state {s!r}")
        if isinstance(guard, str):
            guard = parse_guard(guard)
        if action is None:
            action_symbol = EPSILON
        elif isinstance(action, str):
            action_symbol = make_symbol([action]) if action else EPSILON
        else:
            action_symbol = make_symbol(action)
        if self.vocabulary.actions:
            unknown = action_symbol - self.vocabulary.actions
            if unknown:
                raise AutomatonError(f"unknown actions {sorted(unknown)} in transition from {source!r}")
        transition = ControllerTransition(source, guard, action_symbol, target)
        self._transitions.append(transition)
        return transition

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def states(self) -> list:
        return list(self._states)

    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def transitions(self) -> list:
        return list(self._transitions)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    def transitions_from(self, state: str) -> list:
        """All transitions leaving ``state``."""
        return [t for t in self._transitions if t.source == state]

    def enabled_transitions(self, state: str, observation: Symbol) -> list:
        """Transitions from ``state`` whose guard holds for ``observation``."""
        return [t for t in self.transitions_from(state) if t.guard.evaluate(observation)]

    def step(self, state: str, observation: Symbol) -> list:
        """Non-deterministic step: list of ``(action, next_state)`` pairs."""
        return [(t.action, t.target) for t in self.enabled_transitions(state, observation)]

    def actions_used(self) -> frozenset:
        """All action propositions appearing on any transition."""
        atoms = frozenset()
        for t in self._transitions:
            atoms |= t.action
        return atoms

    def input_atoms(self) -> frozenset:
        """All propositions mentioned in any guard."""
        atoms = frozenset()
        for t in self._transitions:
            atoms |= t.guard.atoms()
        return atoms

    # ------------------------------------------------------------------ #
    # Structural checks
    # ------------------------------------------------------------------ #
    def is_deterministic(self, symbols: Iterable[Symbol]) -> bool:
        """True if at most one transition is enabled in every (state, symbol)."""
        for state in self._states:
            for symbol in symbols:
                if len(self.enabled_transitions(state, symbol)) > 1:
                    return False
        return True

    def is_complete(self, symbols: Iterable[Symbol]) -> bool:
        """True if at least one transition is enabled in every (state, symbol)."""
        symbols = list(symbols)
        for state in self._states:
            for symbol in symbols:
                if not self.enabled_transitions(state, symbol):
                    return False
        return True

    def blocking_pairs(self, symbols: Iterable[Symbol]) -> list:
        """(state, symbol) pairs with no enabled transition — potential deadlocks."""
        out = []
        for state in self._states:
            for symbol in symbols:
                if not self.enabled_transitions(state, symbol):
                    out.append((state, symbol))
        return out

    def validate(self) -> None:
        """Raise :class:`AutomatonError` on structural problems."""
        if not self._states:
            raise AutomatonError("controller has no states")
        if self.initial_state not in self._states:
            raise AutomatonError(f"initial state {self.initial_state!r} is not a controller state")
        for t in self._transitions:
            if t.source not in self._states or t.target not in self._states:
                raise AutomatonError(f"transition {t} references unknown states")

    def describe(self) -> str:
        """Readable multi-line rendering used by the examples."""
        lines = [f"Controller {self.name}: {self.num_states} states, {self.num_transitions} transitions"]
        for state in self._states:
            mark = ">" if state == self.initial_state else " "
            lines.append(f" {mark}{state}")
            for t in self.transitions_from(state):
                lines.append(f"     --({t.guard}, {format_symbol(t.action)})--> {t.target}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FSAController(name={self.name!r}, states={self.num_states}, "
            f"transitions={self.num_transitions}, initial={self.initial_state!r})"
        )


def always_controller(name: str, action: str, vocabulary: Vocabulary | None = None) -> FSAController:
    """A single-state controller that always outputs ``action`` (testing helper)."""
    controller = FSAController(name=name, vocabulary=vocabulary or Vocabulary(actions=frozenset({action})))
    controller.add_state("q0", initial=True)
    controller.add_transition("q0", TRUE, action, "q0")
    controller.validate()
    return controller
