"""Atomic propositions, actions, symbols, and vocabularies.

The paper (Section 3) works with a set of atomic propositions ``P`` describing
the environment/system behaviour and a set of atomic propositions ``PA``
describing controller actions.  A *symbol* is an element of ``2^P`` (or
``2^(P ∪ PA)``): the set of propositions that evaluate to True at an instant.

We canonicalise proposition names (lower case, spaces become underscores) so
the same proposition written as ``"green traffic light"`` in prose and
``green_traffic_light`` in a formula or an SMV module refers to one entity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain, combinations
from typing import Iterable, Iterator

from repro.errors import AutomatonError

Symbol = frozenset  # frozenset[str]: the propositions that are True

#: The empty output symbol ε ("no operation") from Section 3.
EPSILON: Symbol = frozenset()


def canonical(name: str) -> str:
    """Canonicalise a proposition/action name.

    ``"Green Traffic Light"`` → ``"green_traffic_light"``.  Logical-negation
    prefixes are rejected; negation belongs in guards and formulas, not names.
    """
    if not isinstance(name, str) or not name.strip():
        raise AutomatonError(f"proposition name must be a non-empty string, got {name!r}")
    text = "_".join(name.strip().lower().split())
    if text.startswith(("!", "¬", "not_")):
        raise AutomatonError(f"proposition name may not embed a negation: {name!r}")
    return text


def make_symbol(props: Iterable[str]) -> Symbol:
    """Build a canonical symbol (frozenset of canonical proposition names)."""
    return frozenset(canonical(p) for p in props)


def powerset_symbols(props: Iterable[str]) -> Iterator[Symbol]:
    """Iterate over ``2^P`` as canonical symbols, smallest sets first."""
    names = sorted({canonical(p) for p in props})
    for r in range(len(names) + 1):
        for combo in combinations(names, r):
            yield frozenset(combo)


def format_symbol(symbol: Symbol) -> str:
    """Human-readable rendering of a symbol, ``{}`` shown as ``ε``."""
    if not symbol:
        return "ε"
    return "{" + ", ".join(sorted(symbol)) + "}"


@dataclass(frozen=True)
class Vocabulary:
    """The pair (P, PA) of environment propositions and controller actions.

    Attributes
    ----------
    propositions:
        Canonical names of the atomic propositions ``P`` describing the
        environment / system behaviour (e.g. ``green_traffic_light``).
    actions:
        Canonical names of the action propositions ``PA`` (e.g. ``turn_right``).
    """

    propositions: frozenset = field(default_factory=frozenset)
    actions: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "propositions", frozenset(canonical(p) for p in self.propositions))
        object.__setattr__(self, "actions", frozenset(canonical(a) for a in self.actions))
        overlap = self.propositions & self.actions
        if overlap:
            raise AutomatonError(
                f"propositions and actions must be disjoint; both contain {sorted(overlap)}"
            )

    @property
    def all_atoms(self) -> frozenset:
        """``P ∪ PA`` — the atoms temporal-logic specifications range over."""
        return self.propositions | self.actions

    def is_proposition(self, name: str) -> bool:
        """True if ``name`` canonicalises to a member of ``P``."""
        return canonical(name) in self.propositions

    def is_action(self, name: str) -> bool:
        """True if ``name`` canonicalises to a member of ``PA``."""
        return canonical(name) in self.actions

    def validate_symbol(self, symbol: Iterable[str], *, allow_actions: bool = True) -> Symbol:
        """Canonicalise ``symbol`` and check every atom is known to the vocabulary."""
        sym = make_symbol(symbol)
        allowed = self.all_atoms if allow_actions else self.propositions
        unknown = sym - allowed
        if unknown:
            raise AutomatonError(f"unknown atoms in symbol: {sorted(unknown)}")
        return sym

    def merged_with(self, other: "Vocabulary") -> "Vocabulary":
        """Union of two vocabularies (used when integrating scenario models)."""
        return Vocabulary(
            propositions=self.propositions | other.propositions,
            actions=self.actions | other.actions,
        )

    def environment_part(self, symbol: Symbol) -> Symbol:
        """Restrict a mixed symbol to the environment propositions ``P``."""
        return frozenset(symbol) & self.propositions

    def action_part(self, symbol: Symbol) -> Symbol:
        """Restrict a mixed symbol to the action propositions ``PA``."""
        return frozenset(symbol) & self.actions


def iter_symbol_pairs(symbols: Iterable[Symbol]) -> Iterator[tuple[Symbol, Symbol]]:
    """All ordered pairs of symbols (used by conservative model construction)."""
    symbols = list(symbols)
    return ((a, b) for a in symbols for b in symbols)


def flatten_symbols(symbols: Iterable[Symbol]) -> frozenset:
    """Union of a collection of symbols."""
    return frozenset(chain.from_iterable(symbols))
