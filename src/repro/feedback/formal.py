"""Formal-verification feedback (Section 4.2, "Formal Verification").

Given a controller induced by a language-model response, a world model and a
set of specifications, the feedback is the number (and set) of specifications
the product automaton satisfies.  This is the quantity DPO-AF uses to rank
responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.automata.fsa import FSAController
from repro.automata.transition_system import TransitionSystem
from repro.errors import AlignmentError
from repro.glm2fsa.builder import build_controller_from_text
from repro.modelcheck.checker import ModelChecker, VerificationReport


@dataclass(frozen=True)
class FormalFeedback:
    """Verification feedback for one response/controller."""

    task: str
    num_satisfied: int
    num_specifications: int
    satisfied: tuple = ()
    violated: tuple = ()
    controller_states: int = 0
    parse_failed: bool = False

    @property
    def satisfaction_ratio(self) -> float:
        """Fraction of specifications satisfied; 1.0 when there are none.

        Vacuous truth, matching
        :attr:`~repro.modelcheck.checker.VerificationReport.satisfaction_ratio`:
        with an empty rule book nothing can be violated, so a controller is
        (trivially) fully compliant rather than maximally non-compliant.
        ``parse_failed`` feedback always carries the full rule book as
        ``violated``, so an unparseable response still scores 0.0.
        """
        if self.num_specifications == 0:
            return 1.0
        return self.num_satisfied / self.num_specifications

    def describe(self) -> str:
        status = "unparseable response" if self.parse_failed else f"{self.num_satisfied}/{self.num_specifications}"
        return f"[{self.task}] {status} specifications satisfied"


class FormalVerifier:
    """Computes :class:`FormalFeedback` for responses or controllers.

    Parameters
    ----------
    specifications:
        Mapping ``{name: Formula}`` (e.g. the paper's Φ1 ... Φ15).
    checker:
        Optional shared :class:`ModelChecker` instance.
    wait_action:
        Output emitted while a constructed controller waits/observes; see
        :func:`repro.glm2fsa.builder.build_controller`.
    restart_on_termination:
        Passed to the product construction; see
        :func:`repro.automata.product.build_product`.
    """

    def __init__(
        self,
        specifications: Mapping,
        *,
        checker: ModelChecker | None = None,
        wait_action: str | None = "stop",
        restart_on_termination: bool = True,
    ):
        self.specifications = dict(specifications)
        self.checker = checker or ModelChecker()
        self.wait_action = wait_action
        self.restart_on_termination = restart_on_termination

    # ------------------------------------------------------------------ #
    def verify_controller(self, model: TransitionSystem, controller: FSAController, *, task: str = "") -> FormalFeedback:
        """Feedback for an already-constructed controller."""
        names = list(self.specifications)
        report: VerificationReport = self.checker.verify_controller(
            model,
            controller,
            self.specifications.values(),
            restart_on_termination=self.restart_on_termination,
            spec_names=names,
        )
        satisfied = tuple(name for name, result in zip(names, report.results) if result.holds)
        violated = tuple(name for name, result in zip(names, report.results) if not result.holds)
        return FormalFeedback(
            task=task or controller.name,
            num_satisfied=report.num_satisfied,
            num_specifications=report.num_specifications,
            satisfied=satisfied,
            violated=violated,
            controller_states=controller.num_states,
        )

    def satisfies_at_least(
        self, model: TransitionSystem, controller: FSAController, threshold: int
    ) -> bool:
        """Does the controller satisfy at least ``threshold`` specifications?

        The ordering-only fast query: rankers comparing candidate responses
        need "is this one's score ≥ k", not the exact satisfied set, and
        :meth:`ModelChecker.verify_controller_at_least
        <repro.modelcheck.checker.ModelChecker.verify_controller_at_least>`
        stops checking as soon as the answer is decided.
        """
        return self.checker.verify_controller_at_least(
            model,
            controller,
            self.specifications.values(),
            threshold,
            restart_on_termination=self.restart_on_termination,
            spec_names=list(self.specifications),
        )

    def verify_response(self, model: TransitionSystem, response_text: str, *, task: str = "") -> FormalFeedback:
        """Feedback for a raw language-model response (parse → build → verify).

        An unparseable response (no alignable steps) satisfies zero
        specifications: it cannot be compiled into a controller at all, which
        is exactly the behaviour DPO-AF penalises.
        """
        try:
            controller = build_controller_from_text(
                response_text,
                task=task,
                name=task or "response_controller",
                wait_action=self.wait_action,
            )
        except AlignmentError:
            return FormalFeedback(
                task=task,
                num_satisfied=0,
                num_specifications=len(self.specifications),
                violated=tuple(self.specifications),
                parse_failed=True,
            )
        return self.verify_controller(model, controller, task=task)

    def rank_responses(self, model: TransitionSystem, responses: Iterable[str], *, task: str = "") -> list:
        """Feedback for several responses, sorted best-first (stable order)."""
        feedback = [self.verify_response(model, response, task=task) for response in responses]
        order = sorted(range(len(feedback)), key=lambda i: feedback[i].num_satisfied, reverse=True)
        return [(i, feedback[i]) for i in order]
