"""Automated feedback: formal verification, empirical evaluation, ranking."""

from repro.feedback.empirical import EmpiricalEvaluator, EmpiricalFeedback, trace_satisfaction
from repro.feedback.formal import FormalFeedback, FormalVerifier
from repro.feedback.ranker import FeedbackRanker, PreferencePair, max_pairs, rank_to_pairs

__all__ = [
    "EmpiricalEvaluator",
    "EmpiricalFeedback",
    "trace_satisfaction",
    "FormalFeedback",
    "FormalVerifier",
    "FeedbackRanker",
    "PreferencePair",
    "max_pairs",
    "rank_to_pairs",
]
