"""Automated feedback: formal verification, empirical evaluation, ranking."""

from repro.feedback.empirical import EmpiricalEvaluator, EmpiricalFeedback, trace_satisfaction
from repro.feedback.formal import FormalFeedback, FormalVerifier
from repro.feedback.ranker import (
    FeedbackRanker,
    PreferencePair,
    canonical_ranking,
    iter_ranked_pairs,
    max_pairs,
    rank_to_pairs,
    response_fingerprint,
)

__all__ = [
    "EmpiricalEvaluator",
    "EmpiricalFeedback",
    "trace_satisfaction",
    "FormalFeedback",
    "FormalVerifier",
    "FeedbackRanker",
    "PreferencePair",
    "canonical_ranking",
    "iter_ranked_pairs",
    "max_pairs",
    "rank_to_pairs",
    "response_fingerprint",
]
