"""Pairwise preference construction from automated feedback (Section 4.3).

For every task prompt with ``m`` sampled responses, any two responses whose
feedback differs produce one preference data point ``(x, y_w, y_l)`` — up to
``N · C(m, 2)`` points for ``N`` tasks, as the paper notes.

Order independence
------------------
:func:`rank_to_pairs` is *canonical*: its output — the pair list itself, not
just the pair set — depends only on the multiset of ``(response, score)``
items, never on the order they arrive in.  Responses are ranked by score
(descending) with ties broken by :func:`response_fingerprint`, a SHA-256
digest of the response text, and pairs are enumerated over that canonical
ranking.  Two items that compare equal under the sort key are literally the
same ``(response, score)`` pair, so their relative order cannot matter.

This property is what lets the pipeline build preference pairs from
*streaming* verification results
(:meth:`~repro.serving.scheduler.FeedbackService.submit_batch` /
:func:`~repro.serving.scheduler.as_completed`): no matter which batch
finishes verification first, the pairs constructed from its scores are
identical to the ones the blocking ``score_batch`` path would have built.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable, Sequence


@dataclass(frozen=True)
class PreferencePair:
    """One DPO data point: prompt, preferred response, rejected response."""

    prompt: str
    chosen: str
    rejected: str
    chosen_score: float = 0.0
    rejected_score: float = 0.0
    task: str = ""

    @property
    def margin(self) -> float:
        """Feedback margin between the two responses."""
        return self.chosen_score - self.rejected_score


def response_fingerprint(response: str) -> str:
    """Stable content digest of one response, used as the canonical tie-break.

    Ranking by score alone leaves the order of equally scored responses up to
    the caller's input order; breaking ties on this SHA-256 hex digest of the
    raw response text instead makes the ranking — and therefore
    :func:`rank_to_pairs` output — a pure function of the response *contents*.
    """
    return hashlib.sha256(response.encode("utf-8")).hexdigest()


def canonical_ranking(responses: Sequence[str], scores: Sequence) -> list:
    """Indices of ``responses`` ranked best-first, independent of input order.

    Sorted by score descending, then :func:`response_fingerprint` ascending.
    Duplicated ``(response, score)`` items compare equal and are
    interchangeable, so any permutation of the inputs yields the same ranked
    sequence of items.
    """
    return sorted(
        range(len(responses)),
        key=lambda i: (-float(scores[i]), response_fingerprint(responses[i])),
    )


def iter_ranked_pairs(
    prompt: str,
    responses: Sequence[str],
    scores: Sequence[float],
    *,
    task: str = "",
):
    """Lazily yield one task's preference pairs in canonical order.

    The generator core of :func:`rank_to_pairs`: pairs are enumerated over
    the :func:`canonical_ranking` of the inputs, so the yielded *sequence*
    (content and order) is invariant under any permutation of ``(responses,
    scores)``.  Streaming consumers — the pipeline's pair producer feeding a
    :class:`~repro.dpo.stream.PairStream` — can forward each pair downstream
    the moment it is built instead of waiting for the task's full list.
    """
    if len(responses) != len(scores):
        raise ValueError(f"got {len(responses)} responses but {len(scores)} scores")
    ranking = canonical_ranking(responses, scores)
    for a, b in combinations(ranking, 2):
        # ``a`` precedes ``b`` in the canonical ranking, so scores[a] >=
        # scores[b]; only a strict difference carries a preference.
        if scores[a] == scores[b]:
            continue
        yield PreferencePair(
            prompt=prompt,
            chosen=responses[a],
            rejected=responses[b],
            chosen_score=float(scores[a]),
            rejected_score=float(scores[b]),
            task=task,
        )


def rank_to_pairs(
    prompt: str,
    responses: Sequence[str],
    scores: Sequence[float],
    *,
    task: str = "",
    require_strict: bool = True,
) -> list:
    """Turn scored responses into preference pairs, canonically ordered.

    Every two responses whose scores differ produce one
    :class:`PreferencePair` oriented toward the higher score.  Pairs are
    enumerated over the :func:`canonical_ranking` of the inputs (see
    :func:`iter_ranked_pairs`, the lazy core), so the returned *list*
    (content and order) is invariant under any permutation of ``(responses,
    scores)`` — the property that makes streaming pair construction safe
    (see the module docstring), and one the test suite property-tests over
    random permutations.

    Parameters
    ----------
    prompt:
        The task prompt ``x`` shared by every pair.
    responses, scores:
        Parallel sequences of sampled responses and their feedback scores
        (typically the number of satisfied specifications).
    task:
        Optional task name stamped on each pair for provenance.
    require_strict:
        Kept for API stability.  Ties carry no preference information for DPO
        and never produce a pair regardless of this flag; a strict score
        difference is what orients a pair in the first place.
    """
    return list(iter_ranked_pairs(prompt, responses, scores, task=task))


def max_pairs(num_tasks: int, responses_per_task: int) -> int:
    """The paper's bound ``N · C2(m)`` on the number of preference points."""
    m = responses_per_task
    return num_tasks * (m * (m - 1)) // 2


class FeedbackRanker:
    """Builds preference pairs from a scoring function over responses.

    ``score_fn(task, response) -> float`` is typically the number of
    specifications satisfied, supplied by :class:`~repro.feedback.formal.
    FormalVerifier` or :class:`~repro.feedback.empirical.EmpiricalEvaluator`.
    """

    def __init__(self, score_fn: Callable):
        self.score_fn = score_fn

    def pairs_for_task(self, task, prompt: str, responses: Sequence[str]) -> list:
        """Score ``responses`` for one task and build its canonical pair list."""
        scores = [self.score_fn(task, response) for response in responses]
        return rank_to_pairs(prompt, list(responses), scores, task=getattr(task, "name", str(task)))

    def pairs_for_dataset(self, items: Iterable) -> list:
        """``items`` yields ``(task, prompt, responses)`` triples."""
        all_pairs = []
        for task, prompt, responses in items:
            all_pairs.extend(self.pairs_for_task(task, prompt, responses))
        return all_pairs
