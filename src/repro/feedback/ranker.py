"""Pairwise preference construction from automated feedback (Section 4.3).

For every task prompt with ``m`` sampled responses, any two responses whose
feedback differs produce one preference data point ``(x, y_w, y_l)`` — up to
``N · C(m, 2)`` points for ``N`` tasks, as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable, Sequence


@dataclass(frozen=True)
class PreferencePair:
    """One DPO data point: prompt, preferred response, rejected response."""

    prompt: str
    chosen: str
    rejected: str
    chosen_score: float = 0.0
    rejected_score: float = 0.0
    task: str = ""

    @property
    def margin(self) -> float:
        """Feedback margin between the two responses."""
        return self.chosen_score - self.rejected_score


def rank_to_pairs(
    prompt: str,
    responses: Sequence[str],
    scores: Sequence[float],
    *,
    task: str = "",
    require_strict: bool = True,
) -> list:
    """Turn scored responses into preference pairs.

    Parameters
    ----------
    require_strict:
        If True (default) only pairs whose scores differ produce a data point;
        ties carry no preference information for DPO.
    """
    if len(responses) != len(scores):
        raise ValueError(f"got {len(responses)} responses but {len(scores)} scores")
    pairs = []
    for i, j in combinations(range(len(responses)), 2):
        if scores[i] == scores[j]:
            if require_strict:
                continue
            continue
        winner, loser = (i, j) if scores[i] > scores[j] else (j, i)
        pairs.append(
            PreferencePair(
                prompt=prompt,
                chosen=responses[winner],
                rejected=responses[loser],
                chosen_score=float(scores[winner]),
                rejected_score=float(scores[loser]),
                task=task,
            )
        )
    return pairs


def max_pairs(num_tasks: int, responses_per_task: int) -> int:
    """The paper's bound ``N · C2(m)`` on the number of preference points."""
    m = responses_per_task
    return num_tasks * (m * (m - 1)) // 2


class FeedbackRanker:
    """Builds preference pairs from a scoring function over responses.

    ``score_fn(task, response) -> float`` is typically the number of
    specifications satisfied, supplied by :class:`~repro.feedback.formal.
    FormalVerifier` or :class:`~repro.feedback.empirical.EmpiricalEvaluator`.
    """

    def __init__(self, score_fn: Callable):
        self.score_fn = score_fn

    def pairs_for_task(self, task, prompt: str, responses: Sequence[str]) -> list:
        scores = [self.score_fn(task, response) for response in responses]
        return rank_to_pairs(prompt, list(responses), scores, task=getattr(task, "name", str(task)))

    def pairs_for_dataset(self, items: Iterable) -> list:
        """``items`` yields ``(task, prompt, responses)`` triples."""
        all_pairs = []
        for task, prompt, responses in items:
            all_pairs.extend(self.pairs_for_task(task, prompt, responses))
        return all_pairs
