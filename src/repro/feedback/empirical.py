"""Empirical-evaluation feedback (Section 4.2, "Empirical Evaluation").

When no world model is available, DPO-AF runs the controller in the system
(for us: the simulator in :mod:`repro.sim`), collects finite traces in
``(2^P × 2^PA)^N`` and computes, per specification Φ, the fraction ``P_Φ`` of
traces that satisfy Φ.  The total number of specifications with ``P_Φ`` above
a threshold plays the same ranking role as the formal-verification count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.logic.finite_trace import evaluate_trace


@dataclass(frozen=True)
class EmpiricalFeedback:
    """Trace-based feedback for one controller."""

    task: str
    satisfaction: dict          # spec name -> P_Φ in [0, 1]
    num_traces: int
    threshold: float = 1.0

    @property
    def num_specifications(self) -> int:
        return len(self.satisfaction)

    @property
    def num_satisfied(self) -> int:
        """Specifications whose ``P_Φ`` meets the threshold."""
        return sum(1 for value in self.satisfaction.values() if value >= self.threshold)

    @property
    def mean_satisfaction(self) -> float:
        if not self.satisfaction:
            return 0.0
        return sum(self.satisfaction.values()) / len(self.satisfaction)

    def describe(self) -> str:
        parts = ", ".join(f"{name}={value:.2f}" for name, value in self.satisfaction.items())
        return f"[{self.task}] P_Φ over {self.num_traces} traces: {parts}"


def trace_satisfaction(specifications: Mapping, traces: Sequence) -> dict:
    """``P_Φ`` for every specification over a collection of finite traces."""
    traces = list(traces)
    if not traces:
        raise ValueError("empirical evaluation requires at least one trace")
    out = {}
    for name, formula in specifications.items():
        satisfied = sum(1 for trace in traces if evaluate_trace(formula, trace))
        out[name] = satisfied / len(traces)
    return out


class EmpiricalEvaluator:
    """Evaluates controllers by executing them and checking the traces.

    Parameters
    ----------
    specifications:
        Mapping ``{name: Formula}``.
    grounding:
        The grounding method ``G``: a callable ``(controller, num_traces,
        seed) -> list[trace]`` where each trace is a sequence of symbols
        (sets of propositions ∪ actions).  :class:`repro.sim.executor.
        SimulationGrounding` provides the Carla-substitute implementation.
    threshold:
        ``P_Φ`` at or above which a specification counts as satisfied when
        collapsing the feedback to a single number for ranking.
    """

    def __init__(self, specifications: Mapping, grounding: Callable, *, threshold: float = 1.0):
        self.specifications = dict(specifications)
        self.grounding = grounding
        self.threshold = threshold

    def evaluate_traces(self, traces: Sequence, *, task: str = "") -> EmpiricalFeedback:
        """Feedback from pre-collected traces."""
        satisfaction = trace_satisfaction(self.specifications, traces)
        return EmpiricalFeedback(task=task, satisfaction=satisfaction, num_traces=len(list(traces)), threshold=self.threshold)

    def evaluate_controller(self, controller, *, num_traces: int = 20, seed: int | None = None, task: str = "") -> EmpiricalFeedback:
        """Run the controller through the grounding method and evaluate its traces."""
        traces = self.grounding(controller, num_traces, seed)
        return self.evaluate_traces(traces, task=task or getattr(controller, "name", ""))

    def rank_controllers(self, controllers: Iterable, *, num_traces: int = 20, seed: int | None = None) -> list:
        """Feedback for several controllers, best first (by satisfied count, then mean)."""
        feedback = [
            self.evaluate_controller(c, num_traces=num_traces, seed=seed, task=getattr(c, "name", str(i)))
            for i, c in enumerate(controllers)
        ]
        order = sorted(
            range(len(feedback)),
            key=lambda i: (feedback[i].num_satisfied, feedback[i].mean_satisfaction),
            reverse=True,
        )
        return [(i, feedback[i]) for i in order]
