"""Capped, jittered exponential backoff — the one retry policy in the tree.

Transient failures show up in three places that used to each improvise their
own timing: a worker process pool whose workers died mid-batch, the
cache-directory compaction lock contended by a concurrent (or crashed)
process, and now the job daemon re-running a verification attempt that
raised.  All three share the same shape — try, wait a growing bounded delay,
try again, give up after a fixed number of attempts — so the policy lives
here once, with every time source injectable:

* ``sleep`` is a parameter, so tests retry instantly;
* jitter comes from a caller-supplied ``random.Random`` (``None`` disables
  it), so retried runs stay deterministic unless the caller opts into
  spreading contending processes apart.

:class:`RetryPolicy` is pure arithmetic (attempt number → delay);
:func:`call_with_retry` is the driver loop around a callable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try and how long to wait between attempts.

    Parameters
    ----------
    max_attempts:
        Total attempts, including the first (``1`` means "no retries").
    base_delay:
        Delay in seconds after the first failed attempt.
    multiplier:
        Exponential growth factor applied per subsequent failure.
    max_delay:
        Cap on any single delay, applied before jitter.
    jitter:
        Fraction of the delay drawn uniformly from ``[-jitter, +jitter]``
        and applied multiplicatively — ``0.1`` spreads delays ±10 % so
        contending processes do not retry in lockstep.  Only applied when
        the caller passes an ``rng``; without one delays are exact.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be non-negative, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must be >= base_delay ({self.base_delay})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    # ------------------------------------------------------------------ #
    def delay(self, failures: int, rng=None) -> float:
        """The wait after ``failures`` failed attempts (1-based), in seconds.

        ``base_delay * multiplier**(failures-1)``, capped at ``max_delay``,
        then jittered ±``jitter`` when an ``rng`` (a ``random.Random``) is
        supplied.
        """
        if failures <= 0:
            raise ValueError(f"failures must be positive, got {failures}")
        raw = min(self.base_delay * self.multiplier ** (failures - 1), self.max_delay)
        if rng is not None and self.jitter:
            raw *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return raw

    def delays(self, rng=None) -> list:
        """Every inter-attempt delay the policy would produce, in order.

        ``max_attempts - 1`` entries: attempt *k*'s failure is followed by
        ``delays()[k-1]`` seconds of backoff.  Useful for logging a policy's
        worst-case wait up front.
        """
        return [self.delay(failure, rng) for failure in range(1, self.max_attempts)]


def call_with_retry(
    fn,
    *,
    policy: RetryPolicy,
    retry_on: tuple = (Exception,),
    sleep=time.sleep,
    rng=None,
    on_retry=None,
):
    """Call ``fn()`` under ``policy``, backing off between failed attempts.

    Exceptions matching ``retry_on`` trigger a retry until the policy's
    ``max_attempts`` are spent, at which point the last exception propagates
    unchanged; any other exception propagates immediately.  ``sleep`` and
    ``rng`` are injectable for tests and for deterministic daemons;
    ``on_retry(failures, exc, delay)`` — when supplied — is invoked *before*
    each backoff sleep, which is where the job daemon journals its
    ``RETRYING`` transition and the caller can count retries.
    """
    failures = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            failures += 1
            if failures >= policy.max_attempts:
                raise
            wait = policy.delay(failures, rng)
            if on_retry is not None:
                on_retry(failures, exc, wait)
            sleep(wait)
