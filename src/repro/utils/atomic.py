"""The one place persistent files are (over)written: tmp file + ``os.replace``.

Every durable artifact this codebase writes — persisted caches, cache-
directory shards, exported traces, scored-record output, spilled encoded
pairs, model checkpoints — must appear *atomically*: a crash, a full disk or
a concurrent reader mid-write must observe either the previous complete file
or the new complete file, never a truncated hybrid.  The idiom is always the
same (write a sibling ``<name>.tmp.<pid>``, then ``os.replace`` it into
place), and it lives here so every writer inherits one audited
implementation.

This module is the **whitelist** of the ``atomic-write`` lint rule
(:class:`repro.analysis.rules.AtomicWriteRule`): direct ``open(..., "w")`` /
``Path.write_text`` calls anywhere else in ``src/repro`` are findings.

Three shapes cover every writer in the tree:

* :func:`write_text_atomic` — whole-file text, one call;
* :func:`write_bytes_atomic` — whole-file binary, one call;
* :class:`AtomicTextWriter` — *incremental* writes (e.g. a JSONL record per
  encoded pair) that only become visible at :meth:`~AtomicTextWriter.commit`.
"""

from __future__ import annotations

import os
from pathlib import Path


def _tmp_sibling(path: Path) -> Path:
    """The in-flight tmp name: ``<name>.tmp.<pid>`` next to the target.

    Per-PID so concurrent writers never clobber each other's tmp file; the
    ``.tmp.`` infix is what shard listings and compaction sweeps key on to
    ignore (and eventually clean up) crashed writers' litter.
    """
    return path.with_name(f"{path.name}.tmp.{os.getpid()}")


def write_text_atomic(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via a sibling tmp file + :func:`os.replace`.

    Atomic on POSIX: a crash or full disk mid-write leaves the previous
    contents of ``path`` untouched; at worst a stray ``.tmp.<pid>`` file
    remains, which readers never look at.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_sibling(path)
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def write_bytes_atomic(path: str | Path, data: bytes) -> Path:
    """Binary counterpart of :func:`write_text_atomic`."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_sibling(path)
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


class AtomicTextWriter:
    """Incrementally write a text file that appears atomically at commit.

    Writes land in the ``<name>.tmp.<pid>`` sibling as they happen (each
    record can hit the disk immediately — the streaming spill path flushes a
    JSONL line per encoded pair), but the target path only comes into
    existence at :meth:`commit`, via ``os.replace``.  :meth:`discard` drops
    the partial file instead.  As a context manager, a clean exit commits and
    an exception discards::

        with AtomicTextWriter(path) as writer:
            for record in records:
                writer.write(json.dumps(record) + "\\n")
        # path now exists, complete — or not at all if the loop raised
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.tmp_path = _tmp_sibling(self.path)
        self._file = self.tmp_path.open("w")
        self._finished = False

    def write(self, text: str) -> None:
        """Append ``text`` to the in-flight tmp file."""
        self._file.write(text)

    def flush(self) -> None:
        """Flush buffered writes to the tmp file (it is still invisible)."""
        self._file.flush()

    def commit(self) -> Path:
        """Close the tmp file and move it into place; returns the final path.

        Idempotent once finished.  If the replace fails (target directory
        vanished, permission revoked) the tmp file is still removed, so no
        litter survives a failed commit — and the target keeps whatever
        complete contents it had before.
        """
        if self._finished:
            return self.path
        self._finished = True
        self._file.close()
        try:
            os.replace(self.tmp_path, self.path)
        finally:
            self.tmp_path.unlink(missing_ok=True)
        return self.path

    def discard(self) -> None:
        """Drop the partial file: close and delete the tmp, write nothing.

        Idempotent; safe after a failed :meth:`commit`.  The tmp file is
        unlinked even when closing raises (e.g. ``ENOSPC`` flushing buffers).
        """
        if self._finished:
            return
        self._finished = True
        try:
            self._file.close()
        finally:
            self.tmp_path.unlink(missing_ok=True)

    def __enter__(self) -> "AtomicTextWriter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.discard()
        return False
