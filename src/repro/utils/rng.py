"""Deterministic random-number-generator helpers.

Every stochastic component in the library (language-model sampling, simulator
dynamics, synthetic perception) takes either an integer seed or a
``numpy.random.Generator``.  These helpers normalise both forms and derive
independent child generators for multi-seed experiments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def seeded_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an ``int`` for a reproducible stream,
        or an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Used for multi-seed experiments (e.g. the five seeds of Figure 8) so each
    seed's stream is independent yet the whole experiment is reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def spawn_lane_rngs(
    seed: int | np.random.Generator | None, count: int
) -> list[np.random.Generator]:
    """Derive ``count`` per-lane child generators from a seed or live generator.

    Lane ``i`` always receives the ``i``-th child stream, independent of how
    many other lanes exist or in what order they are stepped — the property
    that makes batched LM decoding token-identical to the serial path.  Unlike
    :func:`spawn_rngs` this accepts a live ``Generator``: spawning advances its
    internal spawn counter, so successive calls on the same generator yield
    fresh, non-overlapping families (one per sampling task).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(seeded_rng(seed).spawn(count))


def choice_without_replacement(
    rng: np.random.Generator, items: Sequence, size: int
) -> list:
    """Sample ``size`` distinct items; returns all items if ``size`` exceeds them."""
    items = list(items)
    if size >= len(items):
        return items
    idx = rng.choice(len(items), size=size, replace=False)
    return [items[i] for i in idx]
