"""JSON-friendly serialization helpers for experiment artifacts.

File writes go through :mod:`repro.utils.atomic` — every JSON artifact this
module produces appears atomically (:func:`dump_json` and
:func:`dump_json_atomic` are now the same operation; both names stay so
callers can say which guarantee they rely on).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.utils.atomic import write_text_atomic

__all__ = [
    "to_jsonable",
    "dump_json",
    "dump_json_atomic",
    "write_text_atomic",
    "load_json",
]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses, numpy scalars/arrays, sets to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(x) for x in obj)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(x) for x in obj]
    return obj


def dump_json(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialize ``obj`` (via :func:`to_jsonable`) to ``path`` and return the path.

    The payload is serialized *before* any file is opened, so a ``TypeError``
    from an unserializable object cannot truncate an existing file, and the
    write itself is atomic (:func:`repro.utils.atomic.write_text_atomic`).
    """
    return write_text_atomic(path, json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))


#: Kept as a distinct name so call sites can state that they *depend* on the
#: atomicity (concurrent readers), not merely benefit from it.
dump_json_atomic = dump_json


def load_json(path: str | Path) -> Any:
    """Load JSON content from ``path``."""
    return json.loads(Path(path).read_text())
