"""JSON-friendly serialization helpers for experiment artifacts."""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses, numpy scalars/arrays, sets to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(x) for x in obj)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(x) for x in obj]
    return obj


def dump_json(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialize ``obj`` (via :func:`to_jsonable`) to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))
    return path


def write_text_atomic(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via a sibling tmp file + :func:`os.replace`.

    Atomic on POSIX: a crash or full disk mid-write leaves the previous
    contents of ``path`` untouched; at worst a stray ``.tmp.<pid>`` file
    remains, which readers never look at.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def dump_json_atomic(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Like :func:`dump_json`, but crash-safe via :func:`write_text_atomic`.

    The payload is serialized *before* any file is opened, so a ``TypeError``
    from an unserializable object cannot truncate an existing file.
    """
    return write_text_atomic(path, json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))


def load_json(path: str | Path) -> Any:
    """Load JSON content from ``path``."""
    return json.loads(Path(path).read_text())
