"""Shared utilities: seeded randomness, validation, atomic writes, retries."""

from repro.utils.atomic import AtomicTextWriter, write_bytes_atomic, write_text_atomic
from repro.utils.retry import RetryPolicy, call_with_retry
from repro.utils.rng import seeded_rng, spawn_lane_rngs, spawn_rngs
from repro.utils.validation import check_positive, check_probability, check_in_options

__all__ = [
    "seeded_rng",
    "spawn_lane_rngs",
    "spawn_rngs",
    "check_positive",
    "check_probability",
    "check_in_options",
    "AtomicTextWriter",
    "write_bytes_atomic",
    "write_text_atomic",
    "RetryPolicy",
    "call_with_retry",
]
