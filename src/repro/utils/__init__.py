"""Shared utilities: seeded randomness, validation helpers, serialization."""

from repro.utils.rng import seeded_rng, spawn_rngs
from repro.utils.validation import check_positive, check_probability, check_in_options

__all__ = [
    "seeded_rng",
    "spawn_rngs",
    "check_positive",
    "check_probability",
    "check_in_options",
]
