"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from typing import Iterable


def check_positive(name: str, value: float, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


def check_in_options(name: str, value, options: Iterable) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``options``."""
    options = list(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")


def check_identifier(name: str, value: str) -> None:
    """Raise ``ValueError`` unless ``value`` is a non-empty identifier-like string."""
    if not isinstance(value, str) or not value:
        raise ValueError(f"{name} must be a non-empty string, got {value!r}")
    if any(ch.isspace() for ch in value.strip()) and " " not in value:
        raise ValueError(f"{name} may not contain non-space whitespace: {value!r}")
