"""System-modeling helpers (Algorithm 1 applied to the driving domain)."""

from __future__ import annotations

from typing import Iterable

from repro.automata.transition_system import TransitionSystem, build_model_from_system
from repro.driving.propositions import DRIVING_VOCABULARY


def conservative_driving_model(propositions: Iterable[str], *, name: str = "conservative_model") -> TransitionSystem:
    """Algorithm 1's conservative construction over a subset of the driving propositions.

    Builds one state per subset of ``propositions`` and connects every pair of
    states — the variant the paper notes "can avoid potential missing
    transitions but will significantly increase the computation cost".  Used
    by the model-granularity ablation benchmark.
    """
    return build_model_from_system(
        propositions,
        lambda _a, _b: True,
        name=name,
        conservative=True,
        vocabulary=DRIVING_VOCABULARY,
    )


def pruned_driving_model(
    propositions: Iterable[str],
    transition_allowed,
    *,
    name: str = "pruned_model",
    initial_labels=None,
) -> TransitionSystem:
    """Algorithm 1 with pruning of isolated states (the default construction)."""
    return build_model_from_system(
        propositions,
        transition_allowed,
        name=name,
        conservative=False,
        vocabulary=DRIVING_VOCABULARY,
        initial_labels=initial_labels,
    )
