"""Prompt templates (Section 4.1 and Appendix E).

The numpy language model consumes the plain ``Steps for "<task>" :`` prompt
produced by :func:`repro.lm.corpus.format_prompt`; the functions here also
provide the exact prompt texts the paper uses with Llama-2 — the two-stage
query (steps, then alignment) and the Llama-2 chat wrapper with its special
tokens — so a user with a real Llama-2 checkpoint can reuse the pipeline
unchanged.
"""

from __future__ import annotations

from typing import Iterable

#: The default system message of Appendix E.
LLAMA2_SYSTEM_MESSAGE = (
    "You are a helpful assistant. Always answer as helpfully as possible, "
    "while being safe. Your answers should be detailed."
)


def steps_prompt(task_description: str) -> str:
    """The first-stage query: ask for numbered steps (Section 4.1)."""
    return f'Steps for "{task_description}":\n1.'


def alignment_prompt(steps: Iterable[str], propositions: Iterable[str], actions: Iterable[str]) -> str:
    """The second-stage query: align steps to the defined propositions/actions."""
    proposition_list = ", ".join(sorted(propositions))
    action_list = ", ".join(sorted(actions))
    numbered = "\n".join(f"{i + 1}. {step}" for i, step in enumerate(steps))
    return (
        "Rephrase the following steps to align the defined Boolean Propositions "
        f"{{{proposition_list}}} and Actions {{{action_list}}}:\n{numbered}\n"
    )


def llama2_chat_prompt(user_message: str, system_message: str = LLAMA2_SYSTEM_MESSAGE) -> str:
    """Wrap a user message in Llama-2's chat format (Appendix E special tokens)."""
    return f"<s>[INST] <<SYS>>\n{system_message}\n<</SYS>>\n\n{user_message} [/INST]"
