"""Saving and loading pipeline artifacts (model weights, tokenizer, metrics)."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TrainingError
from repro.lm.tokenizer import Tokenizer
from repro.lm.transformer import ModelConfig, TransformerLM
from repro.utils.atomic import write_text_atomic


def save_model(model: TransformerLM, tokenizer: Tokenizer, directory: str | Path) -> Path:
    """Persist weights (``.npz``), model config and tokenizer (``.json``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    np.savez_compressed(directory / "weights.npz", **state)
    config = {
        "vocab_size": model.config.vocab_size,
        "max_seq_len": model.config.max_seq_len,
        "dim": model.config.dim,
        "num_heads": model.config.num_heads,
        "num_layers": model.config.num_layers,
        "hidden_dim": model.config.hidden_dim,
    }
    # Atomic: re-saving over an existing checkpoint must never leave a
    # truncated config/tokenizer next to already-replaced weights.
    write_text_atomic(directory / "config.json", json.dumps(config, indent=2))
    write_text_atomic(directory / "tokenizer.json", json.dumps(tokenizer.to_dict(), indent=2))
    return directory


def load_model(directory: str | Path) -> tuple:
    """Load ``(model, tokenizer)`` previously written by :func:`save_model`.

    Note: LoRA adapters are merged or absent in saved checkpoints; a freshly
    loaded model has plain linear layers.
    """
    directory = Path(directory)
    config_path = directory / "config.json"
    weights_path = directory / "weights.npz"
    tokenizer_path = directory / "tokenizer.json"
    for path in (config_path, weights_path, tokenizer_path):
        if not path.exists():
            raise TrainingError(f"checkpoint file missing: {path}")
    config = ModelConfig(**json.loads(config_path.read_text()))
    model = TransformerLM(config, seed=0)
    with np.load(weights_path) as payload:
        state = {key: payload[key] for key in payload.files}
    # Saved checkpoints may include LoRA parameters; attach adapters on demand.
    if any(".lora_a" in key for key in state):
        rank = next(value.shape[1] for key, value in state.items() if key.endswith(".lora_a"))
        model.add_lora_adapters(int(rank))
    model.load_state_dict(state)
    tokenizer = Tokenizer.from_dict(json.loads(tokenizer_path.read_text()))
    return model, tokenizer
