"""Configuration objects for the end-to-end DPO-AF pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dpo.trainer import DPOConfig
from repro.lm.pretrain import PretrainConfig
from repro.serving.config import ServingConfig


@dataclass(frozen=True)
class SamplingConfig:
    """How responses are sampled from the language model."""

    responses_per_prompt: int = 4      # the paper's m (responses sampled per task)
    temperature: float = 0.9
    top_k: int | None = 20
    max_new_tokens: int = 72


@dataclass(frozen=True)
class FeedbackConfig:
    """How automated feedback is computed."""

    wait_action: str | None = "stop"
    restart_on_termination: bool = True
    use_empirical: bool = False        # rank with simulator traces instead of model checking
    empirical_traces: int = 10
    empirical_threshold: float = 0.9


@dataclass(frozen=True)
class PipelineConfig:
    """Everything needed to run the full DPO-AF loop.

    ``stream_training`` switches :meth:`~repro.core.pipeline.DPOAFPipeline.run`
    from the phase-sequential path (collect every pair, then encode, then
    train — the default, bitwise-reference behaviour) to the staged
    producer/consumer path: verification, pair construction, encoding and
    training overlap, with epoch-1 mini-batching starting once
    ``stream_warmup_fraction`` of the training tasks have verified.
    ``stream_pairs_path`` optionally writes every encoded pair to a JSONL
    shard as it lands (a durable encoding later runs can reload without
    re-ranking or re-tokenising); ``stream_buffer_pairs`` bounds
    the pair channel between verification and encoding (back-pressure on the
    producer; 0 means unbounded).

    ``trace_path`` enables run tracing: spans from every stage (sampling,
    verification — worker processes included — pair construction, training)
    are exported to this path as a Chrome/Perfetto trace-event file at the
    end of :meth:`~repro.core.pipeline.DPOAFPipeline.run`, summarisable with
    ``repro-trace report``.  ``None`` (the default) keeps tracing off, with
    results bitwise-identical to a traced run.

    ``batched_sampling`` (default on) decodes each sampling frontier — the
    m responses × N tasks of pair collection, and every task of a model
    evaluation — as one KV-cached batched wave
    (:func:`repro.lm.decode.sample_response_frontier`) instead of one serial
    ``sample_responses`` call per task.  Both paths spawn identical per-lane
    RNG streams, so sampled text — and therefore every downstream artifact —
    is bitwise-identical either way, on every serving backend.
    """

    pretrain: PretrainConfig = field(default_factory=PretrainConfig)
    dpo: DPOConfig = field(default_factory=DPOConfig)
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    feedback: FeedbackConfig = field(default_factory=FeedbackConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    corpus_samples_per_task: int = 32
    seed: int = 0
    stream_training: bool = False
    stream_warmup_fraction: float = 0.25
    stream_pairs_path: str | None = None
    stream_buffer_pairs: int = 4096
    trace_path: str | None = None
    batched_sampling: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.stream_warmup_fraction <= 1.0:
            raise ValueError(
                f"stream_warmup_fraction must be in [0, 1], got {self.stream_warmup_fraction}"
            )
        if self.stream_buffer_pairs < 0:
            raise ValueError(
                f"stream_buffer_pairs must be >= 0, got {self.stream_buffer_pairs}"
            )


def quick_pipeline_config(seed: int = 0, *, shared_cache_dir: str | None = None) -> PipelineConfig:
    """A scaled-down configuration for tests and smoke runs (seconds, not minutes).

    ``shared_cache_dir`` points the feedback service at a cross-run cache
    directory (see :class:`~repro.serving.config.ServingConfig`), so repeated
    smoke runs — and the benchmarks and CLI sharing the directory — skip
    verification already done by an earlier run with the same fingerprint.
    """
    return PipelineConfig(
        pretrain=PretrainConfig(num_steps=60, batch_size=8, dim=32, num_heads=2, num_layers=1, hidden_dim=64, seed=seed),
        dpo=DPOConfig(num_epochs=2, batch_size=4, checkpoint_every=1, lora_rank=2, seed=seed),
        sampling=SamplingConfig(responses_per_prompt=2, max_new_tokens=48),
        serving=ServingConfig(shared_cache_dir=shared_cache_dir),
        corpus_samples_per_task=8,
        seed=seed,
    )


def paper_scale_config(seed: int = 0, *, shared_cache_dir: str | None = None) -> PipelineConfig:
    """The configuration the benchmarks use to regenerate the paper's figures.

    Scaled to minutes of CPU time rather than GPU-days: the corpus, epoch count
    and response counts are smaller than the paper's (~3000 preference points,
    200 epochs on Llama2-7B) but large enough for every qualitative trend —
    loss → 0, accuracy → 1, rising specification satisfaction — to reproduce.
    """
    return PipelineConfig(
        pretrain=PretrainConfig(num_steps=300, batch_size=16, seed=seed),
        dpo=DPOConfig(
            num_epochs=30,
            batch_size=12,
            learning_rate=3e-3,
            beta=1.0,
            lora_rank=8,
            checkpoint_every=5,
            seed=seed,
        ),
        sampling=SamplingConfig(responses_per_prompt=4),
        serving=ServingConfig(shared_cache_dir=shared_cache_dir),
        corpus_samples_per_task=28,
        seed=seed,
    )
