"""The DPO-AF pipeline: configuration, prompting, orchestration, persistence."""

from repro.core.checkpoints import load_model, save_model
from repro.core.config import (
    FeedbackConfig,
    PipelineConfig,
    SamplingConfig,
    ServingConfig,
    paper_scale_config,
    quick_pipeline_config,
)
from repro.core.pipeline import DPOAFPipeline, ModelEvaluation, PipelineResult, TaskEvaluation
from repro.core.prompting import LLAMA2_SYSTEM_MESSAGE, alignment_prompt, llama2_chat_prompt, steps_prompt
from repro.core.system_model import conservative_driving_model, pruned_driving_model

__all__ = [
    "load_model",
    "save_model",
    "FeedbackConfig",
    "PipelineConfig",
    "SamplingConfig",
    "ServingConfig",
    "paper_scale_config",
    "quick_pipeline_config",
    "DPOAFPipeline",
    "ModelEvaluation",
    "PipelineResult",
    "TaskEvaluation",
    "LLAMA2_SYSTEM_MESSAGE",
    "alignment_prompt",
    "llama2_chat_prompt",
    "steps_prompt",
    "conservative_driving_model",
    "pruned_driving_model",
]
