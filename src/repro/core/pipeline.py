"""The end-to-end DPO-AF pipeline (Figure 2).

The pipeline wires every substrate together:

1. build the synthetic corpus and *pre-train* the numpy language model
   (standing in for the already-trained Llama2-7B);
2. for each training task, *sample* ``m`` responses from the model — by
   default the whole m×N frontier decodes as one KV-cached batched wave
   (:func:`repro.lm.decode.sample_response_frontier`;
   ``PipelineConfig.batched_sampling`` falls back to the serial per-task
   loop, with bitwise-identical text either way);
3. construct a controller from every response (GLM2FSA) and compute
   *automated feedback* — formal verification against the task's world model,
   or empirical evaluation in the simulator; all scoring routes through the
   batched, cached :class:`~repro.serving.scheduler.FeedbackService`
   (``serving.backend`` selects serial/thread/process execution of cache
   misses, and ``serving.shared_cache_dir`` warm-starts runs from a cache
   directory shared with the benchmarks and the ``repro-serve`` CLI).
   Sampling and verification are *overlapped*: each task's responses are
   submitted asynchronously (``FeedbackService.submit_batch``) as soon as
   they are sampled, so task *k+1* samples on the main thread while task
   *k* verifies on the pipeline's dispatcher — batches execute in submission
   order, keeping every score bitwise-identical to the serial loop.  If the
   serving config bounds in-flight work (``max_inflight_batches`` /
   ``max_inflight_jobs``), the sampling loop blocks under back-pressure
   instead of queueing unbounded batches;
4. turn the feedback ranking into preference pairs — *streamed*: each task's
   pairs are built the moment its scores complete
   (:func:`repro.serving.scheduler.as_completed`), overlapping pair
   construction with the verification of later batches, while the final
   pair list is assembled in task order so it is bitwise-identical to the
   blocking path (``rank_to_pairs`` itself is order-independent) — then run
   *DPO with LoRA*.  With ``PipelineConfig.stream_training=True`` this whole
   step becomes a staged producer/consumer pipeline (``collect → augment →
   encode → train``, see :meth:`DPOAFPipeline._run_streaming` and
   ``docs/pipeline.md``): pairs cross a
   :class:`~repro.dpo.stream.PairStream` into an incremental
   :class:`~repro.dpo.stream.DPODatasetWriter`, and epoch-1 mini-batching
   starts once ``stream_warmup_fraction`` of the tasks have verified —
   before the slowest task's verification has finished;
5. *evaluate* checkpoints by re-sampling responses and counting satisfied
   specifications on the training and validation task splits (Figure 9) and
   in the simulator (Figure 11).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs import tracer as obs
from repro.obs.metrics import MetricsRegistry
from repro.core.config import FeedbackConfig, PipelineConfig, SamplingConfig
from repro.dpo.stream import DPODatasetWriter, PairStream
from repro.dpo.trainer import DPOResult, DPOTrainer, run_dpo
from repro.driving.specifications import all_specifications
from repro.driving.tasks import DrivingTask, training_tasks, validation_tasks
from repro.errors import TrainingError
from repro.feedback.formal import FormalVerifier
from repro.feedback.ranker import rank_to_pairs
from repro.lm.corpus import build_corpus, format_prompt
from repro.lm.decode import sample_response_frontier
from repro.lm.pretrain import PretrainResult, pretrain
from repro.lm.sampling import sample_responses
from repro.lm.tokenizer import Tokenizer
from repro.lm.transformer import TransformerLM
from repro.serving.scheduler import Dispatcher, FeedbackService, as_completed
from repro.utils.rng import seeded_rng


def _stream_completed(pending):
    """Yield ``(index, metadata, scores)`` from ``pending`` in completion order.

    ``pending`` is a list of tuples whose last element is a
    :class:`~repro.serving.scheduler.PendingBatch`; ``index`` is the tuple's
    position, so a consumer can process results as verification finishes yet
    still assemble its output in submission order for determinism.
    """
    by_handle = {entry[-1]: (index, entry[:-1]) for index, entry in enumerate(pending)}
    for handle in as_completed(by_handle):
        index, metadata = by_handle[handle]
        yield index, metadata, handle.result()


def _stream_in_order(pending, build):
    """Yield one ``build(metadata, scores)`` result per entry, in submission order.

    ``build`` runs in verification-*completion* order, but results are
    released as each contiguous *prefix* of the submission order completes —
    the producer discipline of the streaming training path: a downstream
    consumer (the pair stream feeding the dataset writer) receives task
    *k*'s pairs as soon as tasks ``0..k`` have all verified, preserving the
    canonical task order while still overlapping everything behind the
    slowest outstanding batch.
    """
    results: dict = {}
    next_index = 0
    for index, metadata, scores in _stream_completed(pending):
        results[index] = build(metadata, scores)
        while next_index in results:
            yield results.pop(next_index)
            next_index += 1


def _drain_in_order(pending, build) -> list:
    """One ``build(metadata, scores)`` result per ``pending`` entry, in order.

    ``build`` runs in verification-*completion* order — downstream work (pair
    construction, evaluation assembly) overlaps the batches still in flight —
    while the returned list follows submission order, keeping streamed
    results bitwise-identical to the blocking path.
    """
    return list(_stream_in_order(pending, build))


@dataclass
class TaskEvaluation:
    """Specification satisfaction of sampled responses for one task."""

    task: str
    split: str
    num_specifications: int
    satisfied_counts: list = field(default_factory=list)

    @property
    def mean_satisfied(self) -> float:
        return float(np.mean(self.satisfied_counts)) if self.satisfied_counts else 0.0

    @property
    def satisfaction_ratio(self) -> float:
        if self.num_specifications == 0:
            return 0.0
        return self.mean_satisfied / self.num_specifications


@dataclass
class ModelEvaluation:
    """Aggregate evaluation of one model checkpoint over a task set."""

    per_task: list = field(default_factory=list)

    def mean_satisfied(self, split: str | None = None) -> float:
        selected = [t for t in self.per_task if split is None or t.split == split]
        if not selected:
            return 0.0
        return float(np.mean([t.mean_satisfied for t in selected]))

    def satisfaction_ratio(self, split: str | None = None) -> float:
        selected = [t for t in self.per_task if split is None or t.split == split]
        if not selected:
            return 0.0
        return float(np.mean([t.satisfaction_ratio for t in selected]))


@dataclass
class PipelineResult:
    """Everything the pipeline produces."""

    pretrain_result: PretrainResult
    dpo_result: DPOResult
    preference_pairs: list
    before_evaluation: ModelEvaluation
    after_evaluation: ModelEvaluation
    checkpoint_evaluations: dict = field(default_factory=dict)   # epoch -> ModelEvaluation
    serving_metrics: dict = field(default_factory=dict)          # FeedbackService telemetry
    stream_telemetry: dict = field(default_factory=dict)         # staged-run timings (stream_training=True)

    @property
    def improvement(self) -> float:
        """Headline number: satisfaction ratio after minus before fine-tuning."""
        return self.after_evaluation.satisfaction_ratio() - self.before_evaluation.satisfaction_ratio()


#: Default cap on template-augmentation pairs per task — shared by the
#: blocking `augment_with_templates` and the streaming producer, so the two
#: paths can never silently diverge on it.
TEMPLATE_PAIRS_PER_TASK = 6


class DPOAFPipeline:
    """Direct preference optimization via automated feedback (DPO-AF)."""

    def __init__(self, config: PipelineConfig | None = None, *, specifications=None, tasks=None, validation=None):
        self.config = config or PipelineConfig()
        self.specifications = dict(specifications) if specifications is not None else all_specifications()
        self.tasks = tuple(tasks) if tasks is not None else training_tasks()
        self.validation = tuple(validation) if validation is not None else validation_tasks()
        self.verifier = FormalVerifier(
            self.specifications,
            wait_action=self.config.feedback.wait_action,
            restart_on_termination=self.config.feedback.restart_on_termination,
        )
        # Tracing must be live before the serving layer is built: the
        # FeedbackService captures the tracer's shard directory into its
        # worker payload at construction, which is how worker processes know
        # where to write their span shards.
        self._tracer: obs.Tracer | None = None
        if self.config.trace_path is not None:
            self._tracer = obs.Tracer.for_trace_file(self.config.trace_path)
            obs.install_tracer(self._tracer)
        # The pipeline owns one Dispatcher and shares it with its service;
        # callers that build extra FeedbackServices (e.g. an empirical channel
        # next to the formal one) can pass the same `pipeline.dispatcher` and
        # serve several task streams over this single submission thread.
        self.dispatcher = Dispatcher(name="pipeline-dispatch")
        self.serving = FeedbackService(
            self.specifications,
            feedback=self.config.feedback,
            config=self.config.serving,
            seed=self.config.seed,
            verifier=self.verifier,
            dispatcher=self.dispatcher,
        )
        # One registry federates every subsystem's telemetry; run() takes a
        # single snapshot at the end and embeds it in the exported trace.
        self.metrics_registry = MetricsRegistry()
        self.metrics_registry.register_provider("serving", self.serving.metrics.snapshot)
        self._last_stream_telemetry: dict = {}
        self.metrics_registry.register_provider(
            "stream", lambda: dict(self._last_stream_telemetry)
        )
        self.metrics_registry.register_provider(
            "dispatcher", lambda: {"queued_batches": self.dispatcher.queued_batches}
        )

    # ------------------------------------------------------------------ #
    # Stage 1: the pre-trained model
    # ------------------------------------------------------------------ #
    def pretrain_model(self) -> PretrainResult:
        """Build the corpus and pre-train the base language model."""
        corpus = build_corpus(
            samples_per_task=self.config.corpus_samples_per_task,
            seed=self.config.seed,
            tasks=self.tasks,
        )
        return pretrain(corpus, self.config.pretrain)

    # ------------------------------------------------------------------ #
    # Stage 2/3: sampling and automated feedback
    # ------------------------------------------------------------------ #
    def task_model(self, task: DrivingTask):
        """The (cached) world model a task is verified against."""
        return self.serving.scenario_model(task.scenario)

    def score_response(self, task: DrivingTask, response: str) -> int:
        """Number of specifications the response's controller satisfies."""
        return self.serving.score_response(task, response)

    def _submit_sampled_batches(
        self,
        model: TransformerLM,
        tokenizer: Tokenizer,
        *,
        sampling: SamplingConfig,
        rng,
    ) -> list:
        """Sample every training task and submit its batch for verification.

        Returns ``(task, prompt, responses, PendingBatch)`` tuples in task
        order.  Submission is asynchronous: verification runs on the
        pipeline's dispatcher while sampling continues here, and a configured
        in-flight bound blocks the sampling loop (back-pressure) rather than
        queueing unbounded batches.

        With ``batched_sampling`` (the default) the whole m×N frontier decodes
        as one KV-cached wave before the batches are submitted in task order;
        the serial fallback samples task by task, overlapping task *k*'s
        verification with task *k+1*'s sampling.  Both arms consume the same
        per-lane RNG spawn sequence from ``rng``, so the sampled text — and
        every downstream score and pair — is bitwise-identical.
        """
        pending = []
        prompts = [format_prompt(task) for task in self.tasks]
        if self.config.batched_sampling:
            frontier = sample_response_frontier(
                model,
                tokenizer,
                prompts,
                [sampling.responses_per_prompt] * len(prompts),
                temperature=sampling.temperature,
                top_k=sampling.top_k,
                max_new_tokens=sampling.max_new_tokens,
                rng=rng,
            )
            for task, prompt, responses in zip(self.tasks, prompts, frontier):
                pending.append((task, prompt, responses, self.serving.submit_responses(task, responses)))
            return pending
        for task, prompt in zip(self.tasks, prompts):
            responses = sample_responses(
                model,
                tokenizer,
                prompt,
                sampling.responses_per_prompt,
                temperature=sampling.temperature,
                top_k=sampling.top_k,
                max_new_tokens=sampling.max_new_tokens,
                seed=rng,
            )
            pending.append((task, prompt, responses, self.serving.submit_responses(task, responses)))
        return pending

    def _submit_template_batches(self) -> list:
        """Submit every task's template-library candidates for verification."""
        from repro.driving.responses import VAGUE_RESPONSES, response_templates

        pending = []
        for task in self.tasks:
            prompt = format_prompt(task)
            compliant = response_templates(task.name, "compliant")
            flawed = response_templates(task.name, "flawed")
            candidates = list(compliant) + list(flawed[:2]) + [VAGUE_RESPONSES[0]]
            pending.append((task, prompt, candidates, self.serving.submit_responses(task, candidates)))
        return pending

    @staticmethod
    def _build_task_pairs(metadata, scores) -> list:
        """One sampled task's preference pairs from its landed scores."""
        task, prompt, responses = metadata
        return rank_to_pairs(prompt, responses, scores, task=task.name)

    @staticmethod
    def _build_template_pairs(per_task: int):
        """A ``build`` callback ranking one task's templates, capped per task."""

        def build(metadata, scores):
            task, prompt, candidates = metadata
            return rank_to_pairs(prompt, candidates, scores, task=task.name)[:per_task]

        return build

    def collect_preference_pairs(
        self,
        model: TransformerLM,
        tokenizer: Tokenizer,
        *,
        sampling: SamplingConfig | None = None,
        seed: int | None = None,
    ) -> list:
        """Sample responses per training task, score them, and build pairs."""
        sampling = sampling if sampling is not None else self.config.sampling
        rng = seeded_rng(self.config.seed if seed is None else seed)
        pending = self._submit_sampled_batches(model, tokenizer, sampling=sampling, rng=rng)
        # Build each task's pairs the moment its scores arrive instead of
        # draining batches in task order — pair construction overlaps the
        # verification still in flight.  rank_to_pairs is order-independent
        # and the final list is assembled in task order, so the result is
        # bitwise-identical to the blocking score_batch path.
        pairs = []
        for task_pairs in _drain_in_order(pending, self._build_task_pairs):
            pairs.extend(task_pairs)
        return pairs

    def augment_with_templates(self, pairs: list, *, per_task: int = TEMPLATE_PAIRS_PER_TASK) -> list:
        """Add template-based preference pairs when sampling yields too few.

        The paper collects ~3000 pairs by sampling Llama2 at scale; at our
        scale a freshly pre-trained small model sometimes produces nearly
        identical responses whose feedback ties.  Pairs built from the
        response library (scored by the same verifier) keep the DPO dataset
        informative without changing the feedback mechanism.
        """
        pending = self._submit_template_batches()
        # Streamed like collect_preference_pairs: rank each task's templates
        # as its scores land, then append in task order for determinism.
        augmented = list(pairs)
        for task_pairs in _drain_in_order(pending, self._build_template_pairs(per_task)):
            augmented.extend(task_pairs)
        return augmented

    # ------------------------------------------------------------------ #
    # Stage 4: DPO fine-tuning
    # ------------------------------------------------------------------ #
    def finetune(self, model: TransformerLM, tokenizer: Tokenizer, pairs: list) -> DPOResult:
        """Run DPO with LoRA on the collected preference pairs."""
        if not pairs:
            raise TrainingError("no preference pairs were collected; cannot fine-tune")
        return run_dpo(model, tokenizer, pairs, self.config.dpo)

    # ------------------------------------------------------------------ #
    # Stage 5: evaluation
    # ------------------------------------------------------------------ #
    def evaluate_model(
        self,
        model: TransformerLM,
        tokenizer: Tokenizer,
        *,
        tasks=None,
        num_samples: int | None = None,
        seed: int = 1234,
    ) -> ModelEvaluation:
        """Sample responses on a task set and verify them (Figure 9's metric).

        ``num_samples`` falls back to the sampling config only when omitted —
        an explicit 0 means "sample nothing" (``is None`` check, not
        truthiness), which evaluates every task to an empty count list.

        Like pair collection, the evaluation frontier decodes as one batched
        wave under ``batched_sampling`` and task-by-task otherwise, with
        bitwise-identical responses either way.
        """
        tasks = list(tasks) if tasks is not None else list(self.tasks) + list(self.validation)
        if num_samples is None:
            num_samples = self.config.sampling.responses_per_prompt
        rng = seeded_rng(seed)
        pending = []
        prompts = [format_prompt(task) for task in tasks]
        if self.config.batched_sampling:
            frontier = sample_response_frontier(
                model,
                tokenizer,
                prompts,
                [num_samples] * len(prompts),
                temperature=self.config.sampling.temperature,
                top_k=self.config.sampling.top_k,
                max_new_tokens=self.config.sampling.max_new_tokens,
                rng=rng,
            )
            for task, responses in zip(tasks, frontier):
                pending.append((task, self.serving.submit_responses(task, responses)))
        else:
            for task, prompt in zip(tasks, prompts):
                responses = sample_responses(
                    model,
                    tokenizer,
                    prompt,
                    num_samples,
                    temperature=self.config.sampling.temperature,
                    top_k=self.config.sampling.top_k,
                    max_new_tokens=self.config.sampling.max_new_tokens,
                    seed=rng,
                )
                pending.append((task, self.serving.submit_responses(task, responses)))
        # Consume in completion order, report in task order — same streaming
        # discipline as pair construction.
        def build(metadata, counts):
            (task,) = metadata
            return TaskEvaluation(
                task=task.name,
                split=task.split,
                num_specifications=len(self.specifications),
                satisfied_counts=counts,
            )

        evaluation = ModelEvaluation()
        evaluation.per_task.extend(_drain_in_order(pending, build))
        return evaluation

    def evaluate_checkpoints(self, dpo_result: DPOResult, tokenizer: Tokenizer, *, num_samples: int = 2, seed: int = 99) -> dict:
        """Figure 9: specification satisfaction at every stored DPO checkpoint."""
        evaluations = {}
        for epoch in dpo_result.checkpoint_epochs():
            model = dpo_result.model_at_epoch(epoch)
            evaluations[epoch] = self.evaluate_model(model, tokenizer, num_samples=num_samples, seed=seed)
        return evaluations

    # ------------------------------------------------------------------ #
    # Orchestration
    # ------------------------------------------------------------------ #
    def run(self, *, evaluate_checkpoints: bool = False, augment_pairs: bool = True) -> PipelineResult:
        """Run the full DPO-AF loop and return every artifact.

        With the default ``PipelineConfig.stream_training=False`` the stages
        run phase-sequentially (collect every pair, encode, train) and the
        result is the bitwise reference.  With ``stream_training=True`` the
        ``collect → augment → encode → train`` stages overlap as a
        producer/consumer pipeline (see :meth:`_run_streaming`); the sealed
        training dataset is identical to the blocking one, and stage timings
        land on ``PipelineResult.stream_telemetry``.
        """
        with obs.span("pipeline.pretrain", category="pipeline"):
            pretrain_result = self.pretrain_model()
        model, tokenizer = pretrain_result.model, pretrain_result.tokenizer

        with obs.span("pipeline.evaluate", category="pipeline", phase="before"):
            before = self.evaluate_model(model, tokenizer)

        stream_telemetry: dict = {}
        if self.config.stream_training:
            with obs.span("pipeline.stream_train", category="pipeline"):
                pairs, dpo_result, stream_telemetry = self._run_streaming(
                    model, tokenizer, augment_pairs=augment_pairs
                )
            self._last_stream_telemetry = stream_telemetry
        else:
            with obs.span("pipeline.collect_pairs", category="pipeline"):
                pairs = self.collect_preference_pairs(model, tokenizer)
            if augment_pairs:
                with obs.span("pipeline.augment_pairs", category="pipeline"):
                    pairs = self.augment_with_templates(pairs)
            with obs.span("pipeline.train", category="pipeline"):
                dpo_result = self.finetune(model, tokenizer, pairs)

        with obs.span("pipeline.evaluate", category="pipeline", phase="after"):
            after = self.evaluate_model(dpo_result.policy, tokenizer)
        checkpoint_evaluations = (
            self.evaluate_checkpoints(dpo_result, tokenizer) if evaluate_checkpoints else {}
        )
        self.serving.flush()
        serving_metrics = self.serving.metrics.snapshot()
        serving_metrics["cache"] = dataclasses.asdict(self.serving.cache.stats())
        self._export_trace()
        return PipelineResult(
            pretrain_result=pretrain_result,
            dpo_result=dpo_result,
            preference_pairs=pairs,
            before_evaluation=before,
            after_evaluation=after,
            checkpoint_evaluations=checkpoint_evaluations,
            serving_metrics=serving_metrics,
            stream_telemetry=stream_telemetry,
        )

    def _run_streaming(self, model: TransformerLM, tokenizer: Tokenizer, *, augment_pairs: bool) -> tuple:
        """The staged producer/consumer training-data path (``stream_training``).

        Three concurrent stages share the pipeline's :class:`Dispatcher`:

        * **producer** (background thread): samples each task — from a clone
          of ``model``, so the trainer below can mutate the original —
          submits its batch to the feedback service, and feeds each task's
          pairs into a bounded :class:`~repro.dpo.stream.PairStream` in
          canonical task order as contiguous prefixes of the verification
          results complete (collect first, then template augmentation);
        * **encoder** (background thread): a
          :class:`~repro.dpo.stream.DPODatasetWriter` tokenises each pair the
          moment it crosses the stream — overlapping CPU-bound encoding with
          the verification still in flight — optionally spilling encoded
          pairs to ``stream_pairs_path``, and seals the
          :class:`~repro.dpo.stream.DatasetHandle` when the stream ends;
        * **trainer** (this thread): starts epoch-1 mini-batching as soon as
          ``stream_warmup_fraction`` of the tasks have verified and their
          pairs encoded, then runs the remaining epochs on the sealed
          dataset.

        A failure in any stage aborts the stream and fails the handle, so the
        other stages raise instead of deadlocking.  Returns ``(pairs,
        dpo_result, stream_telemetry)``; the sealed dataset is equal — same
        pair order, token ids and masks — to what the blocking path would
        have built.
        """
        stage_start = time.perf_counter()
        sample_model = model.clone()  # the trainer mutates `model` concurrently
        stream = PairStream(maxsize=self.config.stream_buffer_pairs)
        writer = DPODatasetWriter(
            tokenizer,
            max_seq_len=model.config.max_seq_len,
            spill_path=self.config.stream_pairs_path,
        )
        handle = writer.handle
        pairs: list = []
        timings: dict = {}

        # Failures do not need collecting here: a producer error aborts the
        # stream, the encoder's consume() then fails the handle with it, and
        # the trainer's next wait re-raises that same exception on this
        # thread.
        def produce() -> None:
            started = time.perf_counter()
            try:
                with obs.span("pipeline.produce", category="pipeline"):
                    self._produce_pairs(pairs, stream, handle, sample_model, tokenizer, augment_pairs)
                stream.close()
            except BaseException as exc:  # propagate, never hang the consumers
                stream.abort(exc)
            finally:
                timings["producer_seconds"] = time.perf_counter() - started

        def encode() -> None:
            try:
                with obs.span("pipeline.encode", category="pipeline"):
                    writer.consume(stream)  # fails the handle itself on error
            except BaseException as exc:
                stream.abort(exc)  # unblock a producer stuck on a full stream

        producer = threading.Thread(target=produce, name="pipeline-pair-producer", daemon=True)
        encoder = threading.Thread(target=encode, name="pipeline-pair-encoder", daemon=True)
        producer.start()
        encoder.start()
        try:
            trainer = DPOTrainer(model, tokenizer, self.config.dpo)
            handle.wait_trainable(self.config.stream_warmup_fraction)
            timings["first_trainable_pair_seconds"] = time.perf_counter() - stage_start
            dpo_result = trainer.train(
                handle, stream=True, warmup_fraction=self.config.stream_warmup_fraction
            )
        finally:
            producer.join()
            encoder.join()
        if not pairs:
            raise TrainingError("no preference pairs were collected; cannot fine-tune")

        telemetry = writer.telemetry.snapshot()
        telemetry.update(timings)
        telemetry["stage_total_seconds"] = time.perf_counter() - stage_start
        telemetry["warmup_fraction"] = self.config.stream_warmup_fraction
        telemetry["spill_path"] = (
            str(self.config.stream_pairs_path) if self.config.stream_pairs_path else None
        )
        return pairs, dpo_result, telemetry

    def _produce_pairs(self, pairs, stream, handle, sample_model, tokenizer, augment_pairs) -> None:
        """The producer-thread body of :meth:`_run_streaming` (one span)."""
        rng = seeded_rng(self.config.seed)
        stages = [
            (
                self._submit_sampled_batches(
                    sample_model, tokenizer, sampling=self.config.sampling, rng=rng
                ),
                self._build_task_pairs,
            )
        ]
        if augment_pairs:
            stages.append(
                (
                    self._submit_template_batches(),
                    self._build_template_pairs(TEMPLATE_PAIRS_PER_TASK),
                )
            )
        total = sum(len(pending) for pending, _ in stages)
        done = 0
        for pending, build in stages:
            for task_pairs in _stream_in_order(pending, build):
                pairs.extend(task_pairs)
                stream.put_many(task_pairs)
                done += 1
                handle.report_progress(done, total)

    def _export_trace(self) -> None:
        """Export the run's spans (parent + worker shards) to ``trace_path``."""
        if self._tracer is None:
            return
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(
            self.config.trace_path, self._tracer, metrics=self.metrics_registry.snapshot()
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the serving layer's dispatcher thread and worker processes.

        ``run()`` leaves the pipeline reusable (its flush is part of the run);
        call this — or use the pipeline as a context manager — when done, so a
        process-backend pool does not outlive the experiment.  The service
        only *borrows* ``self.dispatcher`` (it drains and unregisters), so the
        pipeline, as the owner, shuts the dispatch thread down afterwards.
        """
        try:
            self.serving.close()
        finally:
            # Even a failed flush must not leak the dispatch thread.
            self.dispatcher.close()
            if self._tracer is not None:
                # Only uninstall the tracer this pipeline installed: a later
                # pipeline (or test) may have replaced it already.
                if obs.current_tracer() is self._tracer:
                    obs.uninstall_tracer()
                self._tracer.close()
                self._tracer = None

    def __enter__(self) -> "DPOAFPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
