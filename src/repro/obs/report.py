"""Human-readable summaries of a recorded trace.

The raw product of a traced run is a Chrome trace-event file — great in
Perfetto, useless on a terminal.  This module turns spans (live tracer
objects or an exported file) into the aggregates an engineer attacking the
verification hot path actually wants:

* **stage breakdown** — total wall clock per pipeline/serving stage span;
* **per-spec model-checker profile** — for every LTL specification, how much
  time went into LTL→Büchi construction, product exploration and the
  accepting-cycle emptiness check, and the *top-k hottest specs* ranking that
  tells you which of the 15 rules to optimise first;
* **serving summary** — the cache/dedup/back-pressure line, formatted from a
  metrics snapshot so the CLI and the pipeline report through one code path.

:func:`format_report` renders all of it; the ``repro-trace`` CLI
(:mod:`repro.obs.cli`) is a thin wrapper around these functions.
"""

from __future__ import annotations

#: Span names the model checker emits, in reporting order.  The ``_cached``
#: variants mark construction-memo and result-cache hits — near-zero-duration
#: spans whose *count* is the interesting signal (they would misattribute
#: time if folded into their uncached twins).
MODELCHECK_PHASES = (
    "mc.construct",
    "mc.construct_cached",
    "mc.product",
    "mc.check",
    "mc.check_cached",
)


def stage_breakdown(spans) -> dict:
    """Total seconds and span count per stage span name.

    Aggregates spans in the ``"pipeline"``, ``"serving"``, ``"train"``,
    ``"jobs"`` and ``"lm"`` categories — the coarse stages whose sum explains
    where the run's wall clock went.  Returns
    ``{name: {"seconds": float, "count": int}}``.
    """
    breakdown: dict = {}
    for span in spans:
        if span.category not in ("pipeline", "serving", "train", "jobs", "lm"):
            continue
        entry = breakdown.setdefault(span.name, {"seconds": 0.0, "count": 0})
        entry["seconds"] += span.duration_seconds
        entry["count"] += 1
    return breakdown


def per_spec_profile(spans) -> dict:
    """Aggregate model-checker spans by specification.

    Every ``mc.*`` phase span (:data:`MODELCHECK_PHASES`) carries a ``spec``
    attribute naming the specification it served (workers included — their
    spans arrive via shard merge).  Returns::

        {spec_name: {"construct": s, "construct_cached": s, "product": s,
                     "check": s, "check_cached": s, "total": s,
                     "checks": n, "cache_hits": n}}

    where ``checks`` counts completed emptiness checks (one per controller ×
    spec verification) and ``cache_hits`` counts checks answered from the
    construction memo or the verification-result cache
    (``mc.construct_cached`` + ``mc.check_cached`` spans).
    """
    profile: dict = {}
    for span in spans:
        if span.name not in MODELCHECK_PHASES:
            continue
        spec = span.attributes.get("spec")
        if spec is None:
            continue
        entry = profile.setdefault(
            spec,
            {
                "construct": 0.0,
                "construct_cached": 0.0,
                "product": 0.0,
                "check": 0.0,
                "check_cached": 0.0,
                "total": 0.0,
                "checks": 0,
                "cache_hits": 0,
            },
        )
        phase = span.name.split(".", 1)[1]
        entry[phase] += span.duration_seconds
        entry["total"] += span.duration_seconds
        if span.name == "mc.check":
            entry["checks"] += 1
        elif span.name in ("mc.construct_cached", "mc.check_cached"):
            entry["cache_hits"] += 1
        if span.name == "mc.check_cached":
            entry["checks"] += 1
    return profile


def hottest_specs(profile: dict, k: int = 5) -> list:
    """The ``k`` most expensive specs, ``(name, entry)`` by descending total.

    Ties break alphabetically so the ranking is deterministic run to run.
    """
    return sorted(profile.items(), key=lambda item: (-item[1]["total"], item[0]))[:k]


def format_serving_summary(snapshot: dict) -> str:
    """The end-of-run serving telemetry line from a metrics snapshot.

    ``snapshot`` is :meth:`ServingMetrics.snapshot
    <repro.serving.metrics.ServingMetrics.snapshot>` output (typically read
    out of a :meth:`MetricsRegistry.snapshot
    <repro.obs.metrics.MetricsRegistry.snapshot>` under the ``"serving"``
    key) — the single formatting path for the ``repro-serve`` CLI and any
    other consumer of run telemetry.
    """
    warm = (
        f", warm-started {snapshot['warm_start_entries']} entries"
        if snapshot.get("warm_start_entries")
        else ""
    )
    blocked = (
        f", back-pressure blocked {snapshot['backpressure_waits']}× "
        f"for {snapshot['backpressure_seconds']:.2f}s"
        if snapshot.get("backpressure_waits")
        else ""
    )
    return (
        f"scored {snapshot['jobs']} responses ({snapshot['unique_jobs']} unique) "
        f"in {snapshot['total_seconds']:.2f}s — "
        f"{snapshot['throughput']:.1f} responses/s, "
        f"hit rate {snapshot['hit_rate']:.0%}, dedup rate {snapshot['dedup_rate']:.0%}"
        f"{warm}{blocked}"
    )


def _format_table(title: str, header, rows) -> list:
    lines = [f"== {title} ==", " | ".join(f"{h:>14}" for h in header)]
    for row in rows:
        cells = [f"{cell:>14.4f}" if isinstance(cell, float) else f"{str(cell):>14}" for cell in row]
        lines.append(" | ".join(cells))
    return lines


def format_report(spans, *, metrics: dict | None = None, counter_samples=(), top: int = 5) -> str:
    """Render the full text report for a set of spans.

    Sections: stage breakdown (wall clock per stage), the top-``top`` hottest
    LTL specs with per-phase (construction / product / emptiness-check)
    timings, dispatcher queue-depth statistics from counter samples, and —
    when a metrics snapshot is supplied — the serving summary line plus any
    streaming-stage timings it carries.
    """
    spans = list(spans)
    lines: list = []

    breakdown = stage_breakdown(spans)
    if breakdown:
        rows = [
            (name, entry["count"], entry["seconds"])
            for name, entry in sorted(breakdown.items(), key=lambda item: -item[1]["seconds"])
        ]
        lines += _format_table("stage breakdown", ("stage", "spans", "seconds"), rows)

    profile = per_spec_profile(spans)
    if profile:
        rows = [
            (
                name,
                entry["checks"],
                entry["cache_hits"],
                entry["construct"],
                entry["product"],
                entry["check"],
                entry["total"],
            )
            for name, entry in hottest_specs(profile, top)
        ]
        lines.append("")
        lines += _format_table(
            f"hottest specs (top {min(top, len(profile))} of {len(profile)})",
            ("spec", "checks", "cached", "construct_s", "product_s", "check_s", "total_s"),
            rows,
        )

    queue_samples = [c.value for c in counter_samples if c.name == "dispatcher.queue_depth"]
    if queue_samples:
        lines.append("")
        lines.append(
            f"== dispatcher ==\nqueue depth: max {max(queue_samples):.0f}, "
            f"mean {sum(queue_samples) / len(queue_samples):.2f} "
            f"over {len(queue_samples)} samples"
        )

    serving = (metrics or {}).get("serving")
    if serving:
        lines.append("")
        lines.append("== serving ==")
        lines.append(format_serving_summary(serving))
        if serving.get("stage_seconds"):
            for name, seconds in sorted(serving["stage_seconds"].items()):
                lines.append(f"stage {name}: {seconds:.2f}s")
    stream = (metrics or {}).get("stream")
    if stream:
        lines.append("")
        lines.append("== streaming ==")
        for key in sorted(stream):
            lines.append(f"{key}: {stream[key]}")

    if not lines:
        return "(empty trace: no spans recorded)"
    return "\n".join(lines)


def report_from_trace(document: dict, *, top: int = 5) -> str:
    """:func:`format_report` over a loaded Chrome trace-event document."""
    from repro.obs.export import counters_from_trace, spans_from_trace

    metrics = (document.get("otherData") or {}).get("metrics") or {}
    return format_report(
        spans_from_trace(document),
        metrics=metrics,
        counter_samples=counters_from_trace(document),
        top=top,
    )
