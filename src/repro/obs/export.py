"""Chrome/Perfetto trace-event export of recorded spans.

The JSON object format understood by ``chrome://tracing``, `Perfetto
<https://ui.perfetto.dev>`_ and ``speedscope``::

    {
        "traceEvents": [
            {"name": ..., "cat": ..., "ph": "X", "ts": µs, "dur": µs,
             "pid": ..., "tid": ..., "args": {...}},
            {"name": ..., "ph": "C", "ts": µs, "pid": ...,
             "args": {"value": ...}},
            ...
        ],
        "otherData": {... metrics snapshot ...},
        "displayTimeUnit": "ms",
    }

Spans become complete (``"X"``) events and counter samples become counter
(``"C"``) events.  Timestamps are rebased to the earliest event — Perfetto
dislikes raw multi-hour ``CLOCK_MONOTONIC`` offsets — and emitted sorted, so
consumers can rely on monotonically non-decreasing ``ts``.  The span's id,
parent id and attributes travel in ``args``, which is how
:mod:`repro.obs.report` reconstructs per-spec aggregates from an exported
file.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import CounterSample, Span

#: Trace-format version stamped into ``otherData`` (bump on shape changes).
TRACE_SCHEMA = 1


def chrome_trace_events(spans, counter_samples=()) -> list:
    """Spans + counter samples as a ``ts``-sorted Chrome trace-event list.

    Timestamps are rebased so the earliest event starts at 0 µs; sub-
    microsecond durations are floored to 1 µs so no event renders as
    zero-width.
    """
    spans = list(spans)
    counter_samples = list(counter_samples)
    starts = [s.start_ns for s in spans] + [c.timestamp_ns for c in counter_samples]
    base_ns = min(starts) if starts else 0
    events = []
    for s in spans:
        events.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": (s.start_ns - base_ns) / 1000.0,
                "dur": max(s.duration_ns / 1000.0, 1.0),
                "pid": s.pid,
                "tid": s.tid,
                "args": {
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    **s.attributes,
                },
            }
        )
    for c in counter_samples:
        events.append(
            {
                "name": c.name,
                "ph": "C",
                "ts": (c.timestamp_ns - base_ns) / 1000.0,
                "pid": c.pid,
                "args": {"value": c.value},
            }
        )
    events.sort(key=lambda event: event["ts"])
    return events


def write_chrome_trace(path, tracer, *, metrics: dict | None = None) -> Path:
    """Export ``tracer``'s spans (parent + worker shards) to ``path``.

    ``metrics`` — typically a :meth:`~repro.obs.metrics.MetricsRegistry.
    snapshot` — lands in ``otherData`` so one file carries both the timeline
    and the run's aggregate telemetry.  Written atomically (tmp +
    ``os.replace``), so a crash mid-export never leaves a truncated trace.
    Returns the path written.
    """
    shard_spans, shard_counters = tracer.read_shards()
    events = chrome_trace_events(
        tracer.spans() + shard_spans, tracer.counter_samples() + shard_counters
    )
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, "metrics": metrics or {}},
    }
    from repro.utils.atomic import write_text_atomic

    path = Path(path)
    write_text_atomic(path, json.dumps(document))
    return path


def load_chrome_trace(path) -> dict:
    """Load an exported trace, validating the minimal structure.

    Raises ``ValueError`` on anything that is not a trace-event JSON object
    with a ``traceEvents`` list — the report CLI turns that into a clean
    error message instead of a stack trace.
    """
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict) or not isinstance(document.get("traceEvents"), list):
        raise ValueError(f"{path}: not a Chrome trace-event file (no traceEvents list)")
    return document


def spans_from_trace(document: dict) -> list:
    """Rebuild :class:`~repro.obs.tracer.Span` objects from a loaded trace.

    The inverse of :func:`chrome_trace_events` for ``"X"`` events (counter
    events are skipped); used by the report CLI to aggregate an exported
    file with the same code that aggregates live tracer spans.
    """
    spans = []
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        span_id = args.pop("span_id", 0)
        parent_id = args.pop("parent_id", None)
        spans.append(
            Span(
                name=event.get("name", ""),
                category=event.get("cat", ""),
                start_ns=int(event.get("ts", 0) * 1000),
                duration_ns=int(event.get("dur", 0) * 1000),
                pid=event.get("pid", 0),
                tid=event.get("tid", 0),
                span_id=span_id,
                parent_id=parent_id,
                attributes=args,
            )
        )
    return spans


def counters_from_trace(document: dict) -> list:
    """Rebuild :class:`~repro.obs.tracer.CounterSample` objects from a trace."""
    samples = []
    for event in document.get("traceEvents", []):
        if event.get("ph") != "C":
            continue
        samples.append(
            CounterSample(
                name=event.get("name", ""),
                value=float((event.get("args") or {}).get("value", 0.0)),
                timestamp_ns=int(event.get("ts", 0) * 1000),
                pid=event.get("pid", 0),
                tid=event.get("tid", 0),
            )
        )
    return samples
