"""One registry for every counter, gauge and histogram a run produces.

Before this module each subsystem kept its own telemetry island —
:class:`~repro.serving.metrics.ServingMetrics` counters on the feedback
service, an ad-hoc ``stream_telemetry`` dict on the streaming training path,
``Dispatcher.queued_batches`` polled by nobody.  A :class:`MetricsRegistry`
federates them: instruments created through :meth:`MetricsRegistry.counter` /
:meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram` live in
the registry, and existing snapshot-shaped telemetry *registers as a
provider* (:meth:`MetricsRegistry.register_provider`) — a named callable
returning a JSON-friendly dict.  One :meth:`MetricsRegistry.snapshot` then
yields the whole run's telemetry in a single dict, which is what the
pipeline attaches to its result, the ``repro-serve`` CLI prints its summary
from, and the trace exporter embeds in the Chrome trace's ``otherData``.

All instruments are thread-safe; none are process-safe (worker-process
timings travel as trace spans, not registry updates).
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing count (events, jobs, retries)."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the count."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can move both ways (queue depth, buffer fill)."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge by ``amount`` (negative to decrease)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The last recorded value."""
        with self._lock:
            return self._value


class Histogram:
    """Summary statistics of observed values (durations, sizes).

    Keeps count/total/min/max — enough for mean latency and hot-spot ranking
    without unbounded storage.  ``summary()`` is the JSON-friendly view.
    """

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 before the first)."""
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-friendly ``{count, total, mean, min, max}`` view."""
        with self._lock:
            mean = self.total / self.count if self.count else 0.0
            return {
                "count": self.count,
                "total": self.total,
                "mean": mean,
                "min": self.min,
                "max": self.max,
            }


class MetricsRegistry:
    """Names and snapshots every instrument and telemetry provider of a run.

    Instruments are created on first use (``registry.counter("x")`` twice
    returns the same object); providers are snapshot-shaped callables —
    ``ServingMetrics.snapshot``, a ``stream_telemetry`` dict getter, a
    dispatcher queue-depth reader — registered under a unique name.
    :meth:`snapshot` merges everything into one dict.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._providers: dict = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        """Get (or create) the :class:`Counter` named ``name``."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get (or create) the :class:`Gauge` named ``name``."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """Get (or create) the :class:`Histogram` named ``name``."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    def register_provider(self, name: str, provider) -> None:
        """Attach a named telemetry source: a callable returning a dict.

        Re-registering a name replaces the previous provider, so a pipeline
        can refresh a provider across runs without accumulating stale ones.
        """
        with self._lock:
            self._providers[name] = provider

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """One JSON-friendly dict covering every instrument and provider.

        Shape::

            {
                "counters":   {name: value, ...},
                "gauges":     {name: value, ...},
                "histograms": {name: {count, total, mean, min, max}, ...},
                <provider-name>: <provider dict>, ...
            }

        A provider that raises is reported as ``{"error": "..."}`` instead of
        poisoning the whole snapshot — telemetry must never take down the run
        it describes.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            providers = dict(self._providers)
        result: dict = {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": {name: g.value for name, g in gauges.items()},
            "histograms": {name: h.summary() for name, h in histograms.items()},
        }
        for name, provider in providers.items():
            try:
                result[name] = provider()
            except Exception as exc:
                result[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return result
