"""Structured spans: the tracing half of :mod:`repro.obs`.

A :class:`Span` is one timed, named unit of work — "translate Φ7 to a Büchi
automaton", "score batch 12", "apply mini-batch 3 of epoch 1" — with a
category, wall-clock start/duration, the process/thread it ran on, free-form
attributes, and a parent link so spans nest.  A :class:`Tracer` collects
spans; instrumented code never holds a tracer explicitly but opens spans
through the module-level :func:`span` helper, which delegates to the
*installed* tracer:

* by default the installed tracer is a :class:`NullTracer` whose ``span()``
  returns a shared no-op context manager — instrumentation costs one global
  read and one method call, and **no timing, allocation or I/O happens**;
* :func:`install_tracer` swaps in a real :class:`Tracer` for the current
  process.  Tracing never changes what instrumented code computes, only what
  it records, so traced and untraced runs produce identical results.

Nesting is tracked per thread: a span opened while another span is open on
the same thread records that span as its parent.  Spans opened on different
threads (the pipeline's producer/encoder/trainer stages) are roots of their
own thread's tree, distinguishable by ``tid``.

Crossing the process-pool boundary
----------------------------------
Worker processes cannot append to the parent's in-memory span list.  A
tracer constructed with ``shard_dir`` announces a directory for *per-PID
JSONL shards*: the serving layer forwards that directory to its worker
initializer (via :class:`~repro.serving.backends.WorkerPayload`), each worker
installs its own ``Tracer(jsonl_path=<shard_dir>/pid-<pid>.jsonl)``, and
every span is flushed to the shard the moment it closes.  The parent's
:meth:`Tracer.read_shards` merges the shards back when the trace is
exported, so process-backend verification work is attributed exactly like
serial or thread work.  Per-PID files mean no cross-process locking is ever
needed; ``time.perf_counter_ns`` is CLOCK_MONOTONIC-based on Linux, so
parent and worker timestamps share one timeline.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class Span:
    """One finished, timed unit of work.

    ``start_ns`` / ``duration_ns`` are ``time.perf_counter_ns`` readings
    (monotonic; on Linux comparable across processes).  ``parent_id`` is the
    ``span_id`` of the span that was open on the same thread when this one
    started, or ``None`` for a root span.  ``attributes`` carry small
    JSON-serialisable values (spec names, batch sizes, backends).
    """

    name: str
    category: str
    start_ns: int
    duration_ns: int
    pid: int
    tid: int
    span_id: int
    parent_id: int | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        """The span's wall-clock duration in seconds."""
        return self.duration_ns / 1e9

    def to_record(self) -> dict:
        """JSON-friendly dict (the JSONL shard line shape)."""
        return {
            "kind": "span",
            "name": self.name,
            "category": self.category,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "pid": self.pid,
            "tid": self.tid,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": self.attributes,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Span":
        """Rebuild a span from :meth:`to_record` output (shard merging)."""
        return cls(
            name=record["name"],
            category=record["category"],
            start_ns=int(record["start_ns"]),
            duration_ns=int(record["duration_ns"]),
            pid=int(record["pid"]),
            tid=int(record["tid"]),
            span_id=int(record["span_id"]),
            parent_id=record.get("parent_id"),
            attributes=dict(record.get("attributes") or {}),
        )


@dataclass(frozen=True)
class CounterSample:
    """One sampled value of a named counter (a queue depth, a buffer fill)."""

    name: str
    value: float
    timestamp_ns: int
    pid: int
    tid: int

    def to_record(self) -> dict:
        """JSON-friendly dict (the JSONL shard line shape)."""
        return {
            "kind": "counter",
            "name": self.name,
            "value": self.value,
            "timestamp_ns": self.timestamp_ns,
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_record(cls, record: dict) -> "CounterSample":
        """Rebuild a sample from :meth:`to_record` output (shard merging)."""
        return cls(
            name=record["name"],
            value=float(record["value"]),
            timestamp_ns=int(record["timestamp_ns"]),
            pid=int(record["pid"]),
            tid=int(record["tid"]),
        )


class _NullSpan:
    """The shared do-nothing span handle the disabled path hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attribute(self, key: str, value) -> None:
        """Discard the attribute (tracing is disabled)."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Installed by default, so instrumented code pays only a module-global read
    and a trivial call per span — the <2 % overhead bound the benchmarks
    assert.  ``enabled`` is ``False`` so callers can skip building expensive
    attribute values.
    """

    enabled = False
    shard_dir = None

    def span(self, name: str, *, category: str = "run", **attributes) -> _NullSpan:
        """Return the shared no-op span context manager."""
        return _NULL_SPAN

    def counter(self, name: str, value: float) -> None:
        """Discard the sample (tracing is disabled)."""

    def close(self) -> None:
        """Nothing to release."""


class _SpanHandle:
    """Context manager measuring one span for a live :class:`Tracer`."""

    __slots__ = ("_tracer", "_name", "_category", "_attributes", "_span_id", "_parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str, attributes: dict):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attributes = attributes

    def set_attribute(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute before the span closes."""
        self._attributes[key] = value

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        stack = tracer._thread_stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = next(tracer._ids)
        stack.append(self._span_id)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> bool:
        end = time.perf_counter_ns()
        tracer = self._tracer
        stack = tracer._thread_stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        tracer._emit_span(
            Span(
                name=self._name,
                category=self._category,
                start_ns=self._start,
                duration_ns=end - self._start,
                pid=tracer._pid,
                tid=threading.get_ident(),
                span_id=self._span_id,
                parent_id=self._parent_id,
                attributes=self._attributes,
            )
        )
        return False


class Tracer:
    """Collects spans and counter samples for one process.

    Parameters
    ----------
    jsonl_path:
        When set, every finished span / counter sample is additionally
        appended (and flushed) to this JSONL file the moment it lands — the
        per-PID shard a worker process writes so the parent can attribute its
        work.
    shard_dir:
        When set, announces the directory worker *processes* should write
        their per-PID shards into; the serving layer forwards it through
        :class:`~repro.serving.backends.WorkerPayload` and
        :meth:`read_shards` merges the shards back at export time.

    Thread-safe: spans may open and close concurrently on any number of
    threads; nesting is tracked per thread.
    """

    enabled = True

    def __init__(self, *, jsonl_path: str | Path | None = None, shard_dir: str | Path | None = None):
        self._spans: list = []
        self._counters: list = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._pid = os.getpid()
        self.shard_dir = Path(shard_dir) if shard_dir is not None else None
        if self.shard_dir is not None:
            self.shard_dir.mkdir(parents=True, exist_ok=True)
        self.jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self._jsonl_file = None
        if self.jsonl_path is not None:
            self.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
            self._jsonl_file = self.jsonl_path.open("a")

    @classmethod
    def for_trace_file(cls, trace_path: str | Path) -> "Tracer":
        """A parent-process tracer whose worker shards live next to ``trace_path``.

        The shard directory is ``<trace_path>.shards/``; exporting with
        :func:`repro.obs.export.write_chrome_trace` merges the shards into the
        final trace automatically.
        """
        trace_path = Path(trace_path)
        return cls(shard_dir=trace_path.with_name(trace_path.name + ".shards"))

    # ------------------------------------------------------------------ #
    def _thread_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit_span(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if self._jsonl_file is not None:
                self._jsonl_file.write(json.dumps(span.to_record()) + "\n")
                self._jsonl_file.flush()

    # ------------------------------------------------------------------ #
    def span(self, name: str, *, category: str = "run", **attributes) -> _SpanHandle:
        """Open a span: a context manager timing the enclosed block.

        ``category`` groups spans for reporting (``"pipeline"``,
        ``"serving"``, ``"modelcheck"``, ``"train"``); ``attributes`` are
        small JSON-serialisable values recorded on the span.
        """
        return _SpanHandle(self, name, category, attributes)

    def counter(self, name: str, value: float) -> None:
        """Record one sample of a named counter (e.g. a queue depth)."""
        sample = CounterSample(
            name=name,
            value=value,
            timestamp_ns=time.perf_counter_ns(),
            pid=self._pid,
            tid=threading.get_ident(),
        )
        with self._lock:
            self._counters.append(sample)
            if self._jsonl_file is not None:
                self._jsonl_file.write(json.dumps(sample.to_record()) + "\n")
                self._jsonl_file.flush()

    # ------------------------------------------------------------------ #
    def spans(self) -> list:
        """A snapshot copy of the spans recorded in this process so far."""
        with self._lock:
            return list(self._spans)

    def counter_samples(self) -> list:
        """A snapshot copy of the counter samples recorded so far."""
        with self._lock:
            return list(self._counters)

    def read_shards(self) -> tuple:
        """Merge worker-process shards: ``(spans, counter_samples)``.

        Reads every ``*.jsonl`` file in ``shard_dir`` (empty lists when no
        shard dir is configured or nothing was written).  Shards are left in
        place — workers may still be appending — so callers combine the
        result with :meth:`spans` fresh at each export rather than mutating
        tracer state.
        """
        if self.shard_dir is None or not self.shard_dir.is_dir():
            return [], []
        spans: list = []
        counters: list = []
        for shard in sorted(self.shard_dir.glob("*.jsonl")):
            try:
                text = shard.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if record.get("kind") == "counter":
                        counters.append(CounterSample.from_record(record))
                    else:
                        spans.append(Span.from_record(record))
                except (ValueError, KeyError, TypeError):
                    continue  # a torn final line from a dying worker
        return spans, counters

    def all_spans(self) -> list:
        """This process's spans plus every worker shard's, one flat list."""
        shard_spans, _ = self.read_shards()
        return self.spans() + shard_spans

    def close(self) -> None:
        """Flush and close the JSONL sink (if any).  Idempotent."""
        with self._lock:
            jsonl_file, self._jsonl_file = self._jsonl_file, None
        if jsonl_file is not None:
            jsonl_file.close()


#: The process-wide installed tracer instrumentation reports to.
_NULL_TRACER = NullTracer()
_CURRENT: Tracer | NullTracer = _NULL_TRACER


def current_tracer():
    """The tracer instrumented code is currently reporting to."""
    return _CURRENT


def install_tracer(tracer):
    """Make ``tracer`` the process-wide target of :func:`span` / :func:`counter`.

    Returns the tracer for chaining.  Install *before* constructing the
    components to trace — the serving layer captures the tracer's
    ``shard_dir`` into its worker payload at service construction.
    """
    global _CURRENT
    _CURRENT = tracer
    return tracer


def uninstall_tracer() -> None:
    """Restore the default :class:`NullTracer` (tracing off)."""
    global _CURRENT
    _CURRENT = _NULL_TRACER


def tracing_enabled() -> bool:
    """Whether a real tracer is installed (skip expensive attribute building)."""
    return _CURRENT.enabled


def span(name: str, *, category: str = "run", **attributes):
    """Open a span on the installed tracer (a no-op context manager when off)."""
    return _CURRENT.span(name, category=category, **attributes)


def counter(name: str, value: float) -> None:
    """Record a counter sample on the installed tracer (no-op when off)."""
    _CURRENT.counter(name, value)
