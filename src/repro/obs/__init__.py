"""repro.obs — unified tracing and profiling for the DPO-AF pipeline.

The pipeline's wall clock disappears into LTL model checking spread across
threads, a dispatcher, and (with the process backend) worker processes;
coarse counters cannot say *which* of the 15 specs, which automaton phases
or which pipeline stages dominate.  This package is the instrumentation
layer every other subsystem reports into:

``tracer``
    Structured :class:`Span`\\ s (name, category, start/duration, parent,
    attributes) opened with the :func:`span` context-manager helper.  The
    *installed* tracer is process-global: a :class:`NullTracer` by default —
    tracing off, near-zero overhead, results bitwise-identical to an
    uninstrumented run — or a real :class:`Tracer` installed with
    :func:`install_tracer`.  Worker processes write per-PID JSONL shards
    (``Tracer(jsonl_path=...)``) into the parent tracer's ``shard_dir``,
    merged back at export, so process-backend verification is attributed
    exactly like serial or thread execution.

``metrics``
    :class:`MetricsRegistry` — named :class:`Counter` / :class:`Gauge` /
    :class:`Histogram` instruments plus snapshot-shaped *providers*
    (:class:`~repro.serving.metrics.ServingMetrics`, streaming telemetry,
    dispatcher queue depth), collapsed by one ``snapshot()`` into the whole
    run's telemetry dict.

``export``
    Chrome/Perfetto trace-event JSON (:func:`write_chrome_trace` /
    :func:`load_chrome_trace`) — load the file in https://ui.perfetto.dev
    for the full timeline.

``report``
    Terminal summaries: stage breakdown, the per-spec model-checker profile
    naming the top-k hottest specs (:func:`per_spec_profile` /
    :func:`hottest_specs`), and the serving summary line
    (:func:`format_serving_summary`) shared by the CLI and the pipeline.

``cli``
    The ``repro-trace report`` console script.

Enable tracing with ``PipelineConfig(trace_path=...)`` or ``repro-serve
--trace PATH``; see ``docs/observability.md`` for the span model and how to
read a paper-scale trace.
"""

from repro.obs.export import (
    chrome_trace_events,
    counters_from_trace,
    load_chrome_trace,
    spans_from_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    format_report,
    format_serving_summary,
    hottest_specs,
    per_spec_profile,
    report_from_trace,
    stage_breakdown,
)
from repro.obs.tracer import (
    CounterSample,
    NullTracer,
    Span,
    Tracer,
    counter,
    current_tracer,
    install_tracer,
    span,
    tracing_enabled,
    uninstall_tracer,
)

__all__ = [
    "Span",
    "CounterSample",
    "Tracer",
    "NullTracer",
    "current_tracer",
    "install_tracer",
    "uninstall_tracer",
    "tracing_enabled",
    "span",
    "counter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace_events",
    "write_chrome_trace",
    "load_chrome_trace",
    "spans_from_trace",
    "counters_from_trace",
    "format_report",
    "format_serving_summary",
    "report_from_trace",
    "stage_breakdown",
    "per_spec_profile",
    "hottest_specs",
]
