"""``repro-trace`` — inspect traces exported by a traced run.

Usage::

    repro-trace report RUN.trace.json [--top N]

``report`` prints the human summary of a Chrome/Perfetto trace written by
``repro-serve --trace`` or ``PipelineConfig(trace_path=...)``: the stage
breakdown, the top-N hottest LTL specifications with per-phase
(construction / product / emptiness check) timings, dispatcher queue-depth
statistics, and the serving/streaming telemetry embedded in the file.  The
file itself remains loadable in `Perfetto <https://ui.perfetto.dev>`_ for
the full timeline view.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-trace`` argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarise Chrome/Perfetto traces exported by traced repro runs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    report = commands.add_parser(
        "report", help="print the stage breakdown and per-spec hot list of a trace"
    )
    report.add_argument("trace", type=Path, help="trace file written by a traced run")
    report.add_argument(
        "--top", type=int, default=5, help="how many hottest specs to list (default 5)"
    )
    return parser


def main(argv=None) -> int:
    """Entry point of the ``repro-trace`` console script."""
    args = build_parser().parse_args(argv)
    from repro.obs.export import load_chrome_trace
    from repro.obs.report import report_from_trace

    try:
        document = load_chrome_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2
    print(report_from_trace(document, top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
