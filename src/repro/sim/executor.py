"""Executing FSA controllers inside the driving world (the grounding method G).

``G : C × S → (2^P × 2^PA)^N`` — run the controller in the system and return
the sequence of observed propositions and chosen actions (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.automata.fsa import FSAController
from repro.errors import SimulationError
from repro.sim.traces import Trace
from repro.sim.world import DrivingWorld
from repro.utils.rng import seeded_rng


@dataclass
class ControllerExecutor:
    """Runs one controller in one scenario world and records traces.

    Parameters
    ----------
    scenario:
        Scenario name (same identifiers as the world models).
    max_steps:
        Episode length cap ``N``.
    restart_on_termination:
        When the controller exhausts its steps without completing the
        manoeuvre it restarts from ``q0`` (matching the formal-verification
        convention); otherwise it idles.
    observation_filter:
        Optional callable mapping the true observation set to the observation
        the controller actually receives — the hook used to inject the
        simulated perception stack (detection misses / false positives).
    """

    scenario: str
    max_steps: int = 30
    restart_on_termination: bool = True
    observation_filter: Callable | None = None

    def run_episode(self, controller: FSAController, seed: int | np.random.Generator | None = None) -> Trace:
        """One rollout of the controller; returns the recorded trace."""
        controller.validate()
        rng = seeded_rng(seed)
        world = DrivingWorld(self.scenario, seed=rng, max_steps=self.max_steps)
        trace = Trace(scenario=self.scenario, controller=controller.name)

        state = controller.initial_state
        while not world.done:
            true_observation = frozenset(world.observations())
            observation = (
                frozenset(self.observation_filter(true_observation, rng))
                if self.observation_filter is not None
                else true_observation
            )
            moves = controller.step(state, observation)
            if not moves:
                if self.restart_on_termination and state != controller.initial_state:
                    state = controller.initial_state
                    moves = controller.step(state, observation)
            if moves:
                action_symbol, next_state = moves[int(rng.integers(len(moves)))]
                state = next_state
            else:
                action_symbol = frozenset()
            trace.append(true_observation, action_symbol)
            ego_action = sorted(action_symbol)[0] if action_symbol else None
            world.apply_action(ego_action)

        trace.terminated = world.completed
        return trace

    def collect_traces(self, controller: FSAController, num_traces: int, seed: int | None = None) -> list:
        """Several independent rollouts (different episode seeds)."""
        if num_traces <= 0:
            raise SimulationError(f"num_traces must be positive, got {num_traces}")
        rng = seeded_rng(seed)
        return [self.run_episode(controller, seed=rng) for _ in range(num_traces)]


class SimulationGrounding:
    """Adapter exposing the executor with the grounding-callable signature.

    Matches the interface expected by
    :class:`repro.feedback.empirical.EmpiricalEvaluator`:
    ``grounding(controller, num_traces, seed) -> list[list[Symbol]]``.
    """

    def __init__(self, scenario: str, *, max_steps: int = 30, observation_filter: Callable | None = None):
        self.executor = ControllerExecutor(
            scenario,
            max_steps=max_steps,
            observation_filter=observation_filter,
        )

    def __call__(self, controller: FSAController, num_traces: int, seed: int | None = None) -> list:
        traces = self.executor.collect_traces(controller, num_traces, seed=seed)
        return [trace.symbols() for trace in traces]

    def raw_traces(self, controller: FSAController, num_traces: int, seed: int | None = None) -> list:
        """The full :class:`~repro.sim.traces.Trace` objects (with metadata)."""
        return self.executor.collect_traces(controller, num_traces, seed=seed)
