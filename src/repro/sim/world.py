"""The driving world: scenario-specific agent populations and ego dynamics.

This is the reproduction's stand-in for the Carla simulator: at every tick the
world advances its agents, produces the set of propositions the ego vehicle
can observe (Figure 10's "obtaining system information"), and tracks whether
the ego's manoeuvre has been completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.driving.propositions import DRIVING_ACTIONS
from repro.errors import SimulationError
from repro.sim.agents import AgentSet, PedestrianAgent, StopSignAgent, TrafficLightAgent, VehicleAgent
from repro.utils.rng import seeded_rng


def _agents_for_scenario(name: str) -> AgentSet:
    """The agent population of each scenario (mirrors the world models)."""
    if name == "traffic_light_intersection":
        return AgentSet([
            TrafficLightAgent(kind="traffic"),
            VehicleAgent(direction="left", spawn_probability=0.25),
            VehicleAgent(direction="opposite", spawn_probability=0.2),
            PedestrianAgent(position="right", spawn_probability=0.18),
            PedestrianAgent(position="left", spawn_probability=0.12),
        ])
    if name == "left_turn_signal_intersection":
        return AgentSet([
            TrafficLightAgent(kind="left_turn"),
            VehicleAgent(direction="opposite", spawn_probability=0.3),
            VehicleAgent(direction="right", spawn_probability=0.15),
            VehicleAgent(direction="left", spawn_probability=0.15),
            PedestrianAgent(position="left", spawn_probability=0.15),
        ])
    if name == "two_way_stop_intersection":
        return AgentSet([
            StopSignAgent(),
            VehicleAgent(direction="left", spawn_probability=0.3),
            VehicleAgent(direction="right", spawn_probability=0.3),
            VehicleAgent(direction="opposite", spawn_probability=0.15),
            PedestrianAgent(position="front", spawn_probability=0.12),
        ])
    if name == "roundabout":
        return AgentSet([
            VehicleAgent(direction="left", spawn_probability=0.35),
            PedestrianAgent(position="right", spawn_probability=0.15),
            PedestrianAgent(position="front", spawn_probability=0.1),
        ])
    if name == "wide_median_intersection":
        return AgentSet([
            VehicleAgent(direction="left", spawn_probability=0.3),
            VehicleAgent(direction="right", spawn_probability=0.3),
            PedestrianAgent(position="front", spawn_probability=0.1),
        ])
    if name == "pedestrian_crossing":
        return AgentSet([
            TrafficLightAgent(kind="traffic", green_duration=(4, 7), red_duration=(2, 4)),
            PedestrianAgent(position="front", spawn_probability=0.3),
            PedestrianAgent(position="right", spawn_probability=0.2),
        ])
    if name == "highway_merge":
        return AgentSet([
            VehicleAgent(direction="left", spawn_probability=0.4),
            VehicleAgent(direction="right", spawn_probability=0.2),
            PedestrianAgent(position="right", spawn_probability=0.08),
        ])
    raise SimulationError(f"unknown scenario {name!r}")


@dataclass
class DrivingWorld:
    """One episode's worth of environment state for a scenario."""

    scenario: str
    seed: int | np.random.Generator | None = None
    max_steps: int = 30
    agents: AgentSet = field(default=None, repr=False)
    rng: np.random.Generator = field(default=None, repr=False)
    tick: int = 0
    completed: bool = False

    def __post_init__(self) -> None:
        self.rng = seeded_rng(self.seed)
        self.agents = _agents_for_scenario(self.scenario)
        self.reset()

    # ------------------------------------------------------------------ #
    def reset(self) -> set:
        """Start a new episode; returns the initial observation."""
        self.tick = 0
        self.completed = False
        self.agents.reset(self.rng)
        return self.observations()

    def observations(self) -> set:
        """Propositions the ego vehicle currently observes."""
        return set(self.agents.propositions())

    def apply_action(self, action: str | None) -> None:
        """Advance the world one tick after the ego takes ``action``.

        A manoeuvre action (anything other than ``stop``/no-op) completes the
        episode once the ego has committed to it — the vehicle leaves the
        scenario, as in a Carla route segment.
        """
        if action is not None and action not in DRIVING_ACTIONS:
            raise SimulationError(f"unknown ego action {action!r}")
        self.tick += 1
        if action in {"turn_left", "turn_right", "go_straight"}:
            self.completed = True
        self.agents.step(self.rng)

    @property
    def done(self) -> bool:
        return self.completed or self.tick >= self.max_steps
