"""Environment agents of the driving simulator (the Carla substitute).

Each agent owns a small piece of world state (a light phase, an approaching
vehicle, a crossing pedestrian) and exposes the propositions it makes true.
The agents are deliberately richer than the abstract world models — phases
have stochastic durations, vehicles have distances and speeds — so empirical
evaluation genuinely exercises a different substrate than formal verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_probability


@dataclass
class TrafficLightAgent:
    """A traffic light cycling green → red → green with random phase lengths.

    ``kind`` selects which proposition a green phase asserts:
    ``"traffic"`` → ``green_traffic_light``; ``"left_turn"`` → ``green_left_turn_light``.
    """

    kind: str = "traffic"
    green_duration: tuple = (3, 6)
    red_duration: tuple = (2, 5)
    is_green: bool = True
    _remaining: int = 0

    def reset(self, rng: np.random.Generator) -> None:
        self.is_green = bool(rng.random() < 0.55)
        low, high = self.green_duration if self.is_green else self.red_duration
        self._remaining = int(rng.integers(low, high + 1))

    def step(self, rng: np.random.Generator) -> None:
        self._remaining -= 1
        if self._remaining <= 0:
            self.is_green = not self.is_green
            low, high = self.green_duration if self.is_green else self.red_duration
            self._remaining = int(rng.integers(low, high + 1))

    def propositions(self) -> set:
        if not self.is_green:
            return set()
        return {"green_traffic_light"} if self.kind == "traffic" else {"green_left_turn_light"}


@dataclass
class VehicleAgent:
    """A vehicle approaching from a direction; visible while within range.

    ``direction`` is one of ``left``, ``right``, ``opposite``; the asserted
    proposition is ``car_from_left``, ``car_from_right`` or ``opposite_car``.
    """

    direction: str = "left"
    spawn_probability: float = 0.25
    distance: float = -1.0           # < 0 means no vehicle present
    speed_range: tuple = (1.0, 2.5)
    detection_range: float = 6.0
    speed: float = 0.0

    def __post_init__(self) -> None:
        check_probability("spawn_probability", self.spawn_probability)

    def reset(self, rng: np.random.Generator) -> None:
        if rng.random() < self.spawn_probability:
            self.distance = float(rng.uniform(1.0, self.detection_range))
            self.speed = float(rng.uniform(*self.speed_range))
        else:
            self.distance = -1.0

    def step(self, rng: np.random.Generator) -> None:
        if self.distance >= 0:
            self.distance -= self.speed
            if self.distance < 0:
                self.distance = -1.0  # passed through the intersection
        elif rng.random() < self.spawn_probability:
            self.distance = float(rng.uniform(self.detection_range * 0.7, self.detection_range * 1.5))
            self.speed = float(rng.uniform(*self.speed_range))

    @property
    def visible(self) -> bool:
        return 0 <= self.distance <= self.detection_range

    def propositions(self) -> set:
        if not self.visible:
            return set()
        return {
            "left": {"car_from_left"},
            "right": {"car_from_right"},
            "opposite": {"opposite_car"},
        }[self.direction]


@dataclass
class PedestrianAgent:
    """A pedestrian that occasionally crosses; position selects the proposition."""

    position: str = "right"           # "left", "right" or "front"
    spawn_probability: float = 0.18
    crossing_steps: tuple = (1, 3)
    _remaining: int = 0

    def __post_init__(self) -> None:
        check_probability("spawn_probability", self.spawn_probability)

    def reset(self, rng: np.random.Generator) -> None:
        self._remaining = int(rng.integers(*self.crossing_steps)) if rng.random() < self.spawn_probability else 0

    def step(self, rng: np.random.Generator) -> None:
        if self._remaining > 0:
            self._remaining -= 1
        elif rng.random() < self.spawn_probability:
            self._remaining = int(rng.integers(self.crossing_steps[0], self.crossing_steps[1] + 1))

    @property
    def crossing(self) -> bool:
        return self._remaining > 0

    def propositions(self) -> set:
        if not self.crossing:
            return set()
        props = {f"pedestrian_at_{self.position}"} if self.position in ("left", "right") else {"pedestrian_in_front"}
        return props | {"pedestrian"}


@dataclass
class StopSignAgent:
    """A static stop sign: always asserts ``stop_sign``."""

    def reset(self, rng: np.random.Generator) -> None:  # noqa: ARG002 - uniform interface
        return None

    def step(self, rng: np.random.Generator) -> None:  # noqa: ARG002 - uniform interface
        return None

    def propositions(self) -> set:
        return {"stop_sign"}


@dataclass
class AgentSet:
    """The collection of agents populating one scenario."""

    agents: list = field(default_factory=list)

    def reset(self, rng: np.random.Generator) -> None:
        for agent in self.agents:
            agent.reset(rng)

    def step(self, rng: np.random.Generator) -> None:
        for agent in self.agents:
            agent.step(rng)

    def propositions(self) -> set:
        props: set = set()
        for agent in self.agents:
            props |= agent.propositions()
        return props
