"""The driving simulator (Carla substitute): agents, world, executor, traces."""

from repro.sim.agents import AgentSet, PedestrianAgent, StopSignAgent, TrafficLightAgent, VehicleAgent
from repro.sim.executor import ControllerExecutor, SimulationGrounding
from repro.sim.traces import Trace, TraceStep
from repro.sim.world import DrivingWorld

__all__ = [
    "AgentSet",
    "PedestrianAgent",
    "StopSignAgent",
    "TrafficLightAgent",
    "VehicleAgent",
    "ControllerExecutor",
    "SimulationGrounding",
    "Trace",
    "TraceStep",
    "DrivingWorld",
]
