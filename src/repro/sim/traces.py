"""Execution traces collected from the driving simulator.

A trace is the sequence ``(2^P × 2^PA)^N`` of Section 4.2: at every tick the
propositions observed by the ego vehicle and the action its controller chose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.alphabet import Symbol, format_symbol


@dataclass(frozen=True)
class TraceStep:
    """One tick of a rollout: observed propositions and the chosen action symbol."""

    observations: Symbol
    actions: Symbol

    @property
    def combined(self) -> Symbol:
        """``observations ∪ actions`` — the symbol LTL formulas are evaluated on."""
        return frozenset(self.observations) | frozenset(self.actions)

    def __str__(self) -> str:
        return f"({format_symbol(self.observations)}, {format_symbol(self.actions)})"


@dataclass
class Trace:
    """A finite rollout of a controller in the simulator."""

    steps: list = field(default_factory=list)
    scenario: str = ""
    controller: str = ""
    seed: int | None = None
    terminated: bool = False

    def append(self, observations, actions) -> None:
        self.steps.append(TraceStep(frozenset(observations), frozenset(actions)))

    def symbols(self) -> list:
        """The combined proposition/action symbols, one per tick (LTLf input)."""
        return [step.combined for step in self.steps]

    def actions_taken(self) -> list:
        """The action symbols in order (ε steps included as empty sets)."""
        return [step.actions for step in self.steps]

    def count_action(self, action: str) -> int:
        """How many ticks chose the given action."""
        return sum(1 for step in self.steps if action in step.actions)

    def propositions_seen(self) -> frozenset:
        """Union of all observed propositions."""
        seen = frozenset()
        for step in self.steps:
            seen |= step.observations
        return seen

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.symbols())

    def describe(self, limit: int = 20) -> str:
        lines = [f"Trace({self.controller} in {self.scenario}, {len(self)} steps)"]
        for step in self.steps[:limit]:
            lines.append(f"  {step}")
        if len(self.steps) > limit:
            lines.append(f"  ... ({len(self.steps) - limit} more steps)")
        return "\n".join(lines)
