# Convenience targets matching the ROADMAP's canonical commands.
#
#   make tier1            repro-lint + fast unit/integration suite (what CI
#                         gates on)
#   make lint             AST lint + lock-order analysis of src/repro
#                         (repro-lint; also runs as a tier-1 test)
#   make bench            paper-figure + serving benchmarks (CPU-minutes);
#                         multicore-marked speedup assertions are excluded —
#                         they also auto-skip on single-core hosts via
#                         benchmarks/conftest.py
#   make bench-multicore  only the multicore speedup assertions (needs >= 2
#                         CPU cores; they skip themselves otherwise)
#   make bench-modelcheck cold verification throughput: optimized checker vs
#                         the naive reference; asserts the >= 5x floor and
#                         verdict equality (see docs/modelcheck.md)
#   make bench-lm         LM decoding tokens/s (serial vs KV-cached vs
#                         batched; asserts the >= 3x floor on bitwise-
#                         identical sampled tokens) + DPO pairs/s, written
#                         to runs/bench_lm.json (see docs/lm.md)
#   make trace-demo       traced quick-pipeline run -> runs/quick.trace.json
#                         (load it in https://ui.perfetto.dev) plus the
#                         terminal report (hottest specs, stage breakdown)
#   make jobs-demo        durable-jobs daemon demo: submit a batch, kill -9
#                         the daemon mid-batch, restart, verify every job
#                         finished exactly once with one-shot-identical
#                         scores (see docs/jobs.md)

PYTHON ?= python
PYTEST := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) $(PYTHON) -m pytest
PYRUN := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) $(PYTHON)

.PHONY: tier1 lint bench bench-multicore bench-modelcheck bench-lm trace-demo jobs-demo

lint:
	$(PYRUN) -m repro.analysis.cli src/repro

tier1: lint
	$(PYTEST) -x -q

bench:
	$(PYTEST) benchmarks -q -s -m "not multicore"

bench-multicore:
	$(PYTEST) benchmarks -q -s -m multicore

bench-modelcheck:
	$(PYTEST) benchmarks/test_bench_modelcheck.py -q -s

bench-lm:
	$(PYTEST) benchmarks/test_bench_lm.py -q -s

trace-demo:
	$(PYRUN) examples/trace_demo.py runs/quick.trace.json

jobs-demo:
	$(PYRUN) examples/jobs_demo.py runs/jobs-demo
