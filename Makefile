# Convenience targets matching the ROADMAP's canonical commands.
#
#   make tier1            fast unit/integration suite (what CI gates on)
#   make bench            paper-figure + serving benchmarks (CPU-minutes);
#                         multicore-marked speedup assertions are excluded —
#                         they also auto-skip on single-core hosts via
#                         benchmarks/conftest.py
#   make bench-multicore  only the multicore speedup assertions (needs >= 2
#                         CPU cores; they skip themselves otherwise)

PYTHON ?= python
PYTEST := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) $(PYTHON) -m pytest

.PHONY: tier1 bench bench-multicore

tier1:
	$(PYTEST) -x -q

bench:
	$(PYTEST) benchmarks -q -s -m "not multicore"

bench-multicore:
	$(PYTEST) benchmarks -q -s -m multicore
