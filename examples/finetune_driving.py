"""End-to-end DPO-AF: fine-tune the language model with formal-methods feedback.

Runs the full Figure-2 pipeline at a small scale (a few minutes on a laptop
CPU): pre-train the numpy language model on the synthetic driving corpus,
sample responses for every training task, rank them by model checking, run DPO
with LoRA, and report specification satisfaction before vs after fine-tuning.

Run with::

    python examples/finetune_driving.py
"""

from repro.core import DPOAFPipeline, PipelineConfig
from repro.core.config import SamplingConfig
from repro.dpo import DPOConfig
from repro.lm import PretrainConfig


def main() -> None:
    config = PipelineConfig(
        pretrain=PretrainConfig(num_steps=250, batch_size=16, seed=0),
        dpo=DPOConfig(num_epochs=20, batch_size=12, learning_rate=3e-3, beta=1.0, lora_rank=8, checkpoint_every=5, seed=0),
        sampling=SamplingConfig(responses_per_prompt=3),
        corpus_samples_per_task=24,
        seed=0,
    )
    print("Running DPO-AF (pre-train → sample → verify → rank → DPO) ...")
    with DPOAFPipeline(config) as pipeline:
        result = pipeline.run(evaluate_checkpoints=True)

    history = result.dpo_result.history
    print(f"\nCollected {len(result.preference_pairs)} preference pairs "
          f"(LoRA trainable fraction: {result.dpo_result.lora_summary['trainable_fraction']:.1%})")
    print(f"DPO loss {history.losses[0]:.3f} -> {history.losses[-1]:.3f}; "
          f"accuracy -> {history.accuracies[-1]:.2f}; marginal preference -> {history.marginal_preferences[-1]:.2f}")

    before = result.before_evaluation
    after = result.after_evaluation
    print(f"\nSpecification satisfaction before fine-tuning: {before.satisfaction_ratio():.1%}")
    print(f"Specification satisfaction after fine-tuning:  {after.satisfaction_ratio():.1%}")

    print("\nSatisfied specifications (of 15) per checkpoint epoch:")
    for epoch, evaluation in sorted(result.checkpoint_evaluations.items()):
        print(f"  epoch {epoch:3d}: train {evaluation.mean_satisfied('train'):5.2f}   "
              f"validation {evaluation.mean_satisfied('validation'):5.2f}")


if __name__ == "__main__":
    main()
