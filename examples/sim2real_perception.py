"""Sim-to-real perception consistency (Section 5.3, Figures 12 and 13).

Generates the synthetic simulation-domain and real-domain scene datasets, runs
the simulated open-vocabulary detector on both, and prints the
confidence-accuracy calibration per object category — the evidence that the
verified controllers transfer from simulation to the real world.
"""

from repro.perception import (
    CATEGORIES,
    SimulatedDetector,
    WEATHER_CONDITIONS,
    compare_domains,
    detection_accuracy,
    generate_dataset,
)


def main() -> None:
    detector = SimulatedDetector()
    scenes = generate_dataset("simulation", 500, seed=0) + generate_dataset("real", 500, seed=1)
    detections = detector.detect_dataset(scenes, seed=2)
    comparison = compare_domains(detections)

    for category in ("overall", *CATEGORIES):
        sim = comparison.curve("simulation", category)
        real = comparison.curve("real", category)
        print(f"\nConfidence-accuracy mapping — {category}")
        print(f"{'confidence':>12} {'simulation':>12} {'real':>12}")
        for center, sim_value, real_value in zip(sim.bin_centers, sim.smoothed, real.smoothed):
            print(f"{center:>12.1f} {sim_value:>12.3f} {real_value:>12.3f}")
        print(f"max gap: {comparison.max_gap(category):.3f}")

    print("\nDetector consistent across domains:", comparison.is_consistent())

    print("\nAccuracy per weather condition (Figure 13):")
    for weather in WEATHER_CONDITIONS:
        sim = detector.detect_dataset(generate_dataset("simulation", 200, weather=weather, seed=3), seed=4)
        real = detector.detect_dataset(generate_dataset("real", 200, weather=weather, seed=5), seed=6)
        print(f"  {weather:>7}: simulation {detection_accuracy(sim):.3f}   real {detection_accuracy(real):.3f}")


if __name__ == "__main__":
    main()
