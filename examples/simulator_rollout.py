"""Empirical evaluation in the Carla-substitute simulator (Section 4.2 / Figure 11).

Executes a compliant and a flawed right-turn controller in the stochastic
driving world (optionally through the noisy perception stack), collects
``(2^P × 2^PA)^N`` traces, and reports the fraction of rollouts satisfying
each of the core specifications Φ1–Φ5.
"""

from repro.driving import core_specifications, response_templates, task_by_name
from repro.feedback import EmpiricalEvaluator
from repro.glm2fsa import build_controller_from_text
from repro.perception import PerceptionNoiseModel
from repro.sim import SimulationGrounding


def main() -> None:
    task = task_by_name("turn_right_traffic_light")
    specs = core_specifications()

    controllers = {
        "compliant": build_controller_from_text(response_templates(task.name, "compliant")[0], task=task.name),
        "flawed": build_controller_from_text(response_templates(task.name, "flawed")[1], task=task.name),
    }

    for perception_label, observation_filter in [("perfect perception", None), ("noisy perception", PerceptionNoiseModel())]:
        print("=" * 60)
        print(f"Grounding with {perception_label}")
        grounding = SimulationGrounding(task.scenario, max_steps=25, observation_filter=observation_filter)
        evaluator = EmpiricalEvaluator(specs, grounding, threshold=0.9)
        for label, controller in controllers.items():
            feedback = evaluator.evaluate_controller(controller, num_traces=20, seed=0, task=label)
            values = "  ".join(f"{name}={value:.2f}" for name, value in feedback.satisfaction.items())
            print(f"  {label:10s}: {values}")

        example = grounding.raw_traces(controllers["compliant"], 1, seed=4)[0]
        print("\n  Sample trace of the compliant controller:")
        print("  " + example.describe().replace("\n", "\n  "))
        print()


if __name__ == "__main__":
    main()
