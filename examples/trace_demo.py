"""Trace demo: run the quick pipeline with tracing on and report the result.

Run with::

    python examples/trace_demo.py [TRACE_PATH]

or, equivalently::

    make trace-demo

This runs ``quick_pipeline_config`` end to end with ``trace_path`` set, so
every stage — pretraining, sampling, per-spec LTL model checking, pair
construction, DPO training, evaluation — lands in one Chrome/Perfetto
trace-event file.  Open the file in https://ui.perfetto.dev (or
``chrome://tracing``) for the timeline, or summarise it in the terminal::

    repro-trace report runs/quick.trace.json
"""

import dataclasses
import sys
from pathlib import Path

from repro.core import DPOAFPipeline
from repro.core.config import quick_pipeline_config
from repro.obs import load_chrome_trace, report_from_trace


def main(argv: list | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    trace_path = Path(args[0]) if args else Path("runs") / "quick.trace.json"
    trace_path.parent.mkdir(parents=True, exist_ok=True)

    config = dataclasses.replace(quick_pipeline_config(seed=0), trace_path=str(trace_path))
    print(f"Running the quick pipeline with tracing -> {trace_path}")
    with DPOAFPipeline(config) as pipeline:
        result = pipeline.run(augment_pairs=True)
    print(
        f"Pipeline done: {len(result.preference_pairs)} preference pairs, "
        f"{result.dpo_result.history.num_steps} DPO steps.\n"
    )

    print(report_from_trace(load_chrome_trace(trace_path)))
    print(f"\nTimeline: load {trace_path} in https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
