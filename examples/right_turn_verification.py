"""Section 5.1 demonstration: right-turn controllers before/after fine-tuning.

Reproduces the paper's running example: the pre-fine-tuning controller misses
the re-check before turning and fails Φ5 — the model checker returns the
counter-example where the light turns red and a car arrives from the left
right after the pedestrian check — while the post-fine-tuning controller
passes every rule.
"""

from repro.automata import build_product
from repro.driving import all_specifications, response_templates, task_by_name
from repro.glm2fsa import build_controller_from_text
from repro.modelcheck import ModelChecker


def main() -> None:
    task = task_by_name("turn_right_traffic_light")
    model = task.model()
    specs = all_specifications()
    checker = ModelChecker()

    before_text = response_templates(task.name, "flawed")[0]       # Figure 7 left
    after_text = response_templates(task.name, "compliant")[2]     # Figure 7 right

    for label, text in [("BEFORE fine-tuning", before_text), ("AFTER fine-tuning", after_text)]:
        print("=" * 70)
        print(label)
        print(text, "\n")
        controller = build_controller_from_text(text, task=task.name, name=label)
        product = build_product(model, controller, restart_on_termination=True)
        report = checker.check_all(product, specs.values())
        print(f"{report.num_satisfied}/{report.num_specifications} specifications satisfied")
        for name, result in zip(specs, report.results):
            if not result.holds:
                print(f"  VIOLATED {name}: {result.specification}")
                if name == "phi_5" and result.counterexample is not None:
                    print("  Counter-example (the paper's edge case):")
                    print("   " + result.counterexample.describe().replace("\n", "\n   "))
        print()


if __name__ == "__main__":
    main()
