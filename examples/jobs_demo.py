"""Jobs demo: a durable feedback daemon surviving a kill -9 mid-batch.

Run with::

    python examples/jobs_demo.py [WORK_DIR]

or, equivalently::

    make jobs-demo

The demo tells the whole ``repro.jobs`` story in one terminal:

1. score a small batch of driving responses through the plain one-shot
   ``repro-serve`` path — the ground truth;
2. start a ``repro-serve daemon`` subprocess (throttled so the batch takes
   a few seconds) and submit the same records as client ``demo``;
3. while that backlog is queued, a second client (``tenant-b``) submits one
   job and gets it back — round-robin fairness, not FIFO starvation;
4. ``SIGKILL`` the daemon while some of the batch is still open;
5. restart a daemon on the same store and watch it finish the leftovers —
   completed jobs are not re-scored;
6. compare: every job terminal exactly once, scores identical to step 1.

See ``docs/jobs.md`` for the state machine and restart semantics.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.jobs import JobsClient, TERMINAL_STATES

TASK = "turn_right_traffic_light"
RESPONSES = (
    "1. Observe the traffic light.\n"
    "2. If the traffic light is not green, stop.\n"
    "3. If there is no car from the left and no pedestrian, turn right.",
    "1. Go.",
    "1. Stop.",
    "1. If the traffic light is green, turn right.",
    "1. Observe the traffic light.\n2. Turn right.",
    "1. Stop.\n2. If the traffic light is green, go.",
)


def _spawn_daemon(socket_path: Path, store: Path, throttle: float):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serving.cli", "daemon",
            "--socket", str(socket_path), "--store", str(store),
            "--throttle-seconds", str(throttle),
        ],
        env={**os.environ, "PYTHONPATH": "src"},
    )
    client = JobsClient(socket_path, client_id="demo", timeout=120)
    deadline = time.monotonic() + 60
    while True:
        try:
            client.stats()
            return proc, client
        except (ConnectionRefusedError, FileNotFoundError):
            if proc.poll() is not None:
                raise RuntimeError("daemon failed to start")
            if time.monotonic() > deadline:
                raise TimeoutError("daemon socket never came up")
            time.sleep(0.1)


def main(argv: list | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]) if args else Path(tempfile.mkdtemp(prefix="jobs-demo-", dir="/tmp"))
    root.mkdir(parents=True, exist_ok=True)
    socket_path = root / "daemon.sock"
    records = [{"task": TASK, "response": response} for response in RESPONSES]

    print("== 1. one-shot ground truth ==")
    inputs = root / "in.jsonl"
    oneshot = root / "oneshot.jsonl"
    inputs.write_text("".join(json.dumps(r) + "\n" for r in records), encoding="utf-8")
    subprocess.run(
        [sys.executable, "-m", "repro.serving.cli", str(inputs), "-o", str(oneshot)],
        env={**os.environ, "PYTHONPATH": "src"},
        check=True,
    )
    truth = {
        record["response"]: record["score"]
        for record in map(json.loads, oneshot.read_text().splitlines())
    }
    print(f"scored {len(truth)} responses one-shot\n")

    print("== 2. daemon up, batch submitted ==")
    proc, client = _spawn_daemon(socket_path, root / "store", throttle=0.5)
    batch = client.create_batch(records)["batch"]
    print(f"batch {batch['batch_id']}: {len(batch['job_ids'])} jobs")

    print("\n== 3. a second client is not starved by the backlog ==")
    tenant_b = JobsClient(socket_path, client_id="tenant-b", timeout=120)
    quick = tenant_b.create_job(TASK, "1. Observe, then stop.")
    done_b = tenant_b.wait([quick["job_id"]])[quick["job_id"]]
    backlog = client.stats()["states"].get("pending", 0)
    print(f"tenant-b scored {done_b['score']} while demo still had "
          f"{backlog} jobs pending (round-robin across clients)")

    while client.stats()["states"].get("succeeded", 0) < 3:
        time.sleep(0.05)
    done = len([j for j in client.list_jobs(state="succeeded") if j["batch_id"]])
    print(f"\n== 4. kill -9 with {done}/{len(records)} batch jobs done ==")
    proc.send_signal(signal.SIGKILL)
    proc.wait()

    print("\n== 5. restart on the same store ==")
    proc, client = _spawn_daemon(socket_path, root / "store", throttle=0.0)
    final = client.wait_batch(batch["batch_id"])
    for job_id in batch["job_ids"]:
        job = final[job_id]
        marker = "=" if truth[job["response"]] == job["score"] else "!"
        print(f"  {job_id}  {job['state']:9s} score {job['score']} "
              f"(attempts {job['attempts']}) {marker}= one-shot")

    print("\n== 6. verdict ==")
    mismatches = [j for j in final.values() if truth[j["response"]] != j["score"]]
    non_terminal = [j for j in final.values() if j["state"] not in TERMINAL_STATES]
    client.shutdown()
    proc.wait(timeout=60)
    if mismatches or non_terminal:
        raise SystemExit(f"FAILED: {len(mismatches)} score mismatches, "
                         f"{len(non_terminal)} jobs not terminal")
    print(f"all {len(final)} jobs terminal exactly once, "
          "scores identical to the one-shot path")
    print(f"(store kept at {root / 'store'}; journal + snapshot inside)")


if __name__ == "__main__":
    main()
