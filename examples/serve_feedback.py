"""Score a JSONL file of responses through the batched feedback service.

Run with::

    PYTHONPATH=src python examples/serve_feedback.py responses.jsonl

or, after ``pip install -e .``, as the ``repro-serve`` console command.  With
no argument, a two-part demonstration runs (the serving subsystem's
quickstart; see ``docs/serving.md`` for the architecture behind it):

1. *CLI cold/warm cycle* — a small workload is generated from the response
   library (including the highway-merge task) and scored twice through a
   *shared cache directory*: the second invocation warm-starts from the
   first's fingerprint shard, so its hit rate is 100% and nothing is
   re-verified.
2. *Python streaming API* — the same workload is scored through
   ``FeedbackService.submit_batch``: batches are queued on a shared
   :class:`~repro.serving.scheduler.Dispatcher`, bounded by back-pressure
   (``max_inflight_batches``), and consumed with
   :func:`~repro.serving.scheduler.as_completed` as verification finishes —
   the shape the pipeline uses to overlap sampling, verification, and
   preference-pair construction.

On a multi-core machine, add ``--backend process`` to any CLI invocation to
verify cold batches in parallel worker processes.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.driving import response_templates, task_by_name, training_tasks
from repro.serving.cli import main as serve_main


def _demo_tasks() -> list:
    return list(training_tasks()[:4]) + [task_by_name("merge_onto_highway")]


def demo_cli(workdir: Path) -> None:
    """The CLI quickstart: score a JSONL file cold, then warm, via a shared cache."""
    jsonl = workdir / "responses.jsonl"
    cache_dir = workdir / "feedback_cache"

    with jsonl.open("w") as out:
        for task in _demo_tasks():
            # Duplicates on purpose: the dedup layer should absorb them.
            templates = list(response_templates(task.name, "compliant")) * 2
            templates += list(response_templates(task.name, "flawed"))
            for index, response in enumerate(templates):
                record = {"task": task.name, "response": response, "id": f"{task.name}/{index}"}
                out.write(json.dumps(record) + "\n")

    argv = [str(jsonl), "--cache-dir", str(cache_dir), "-o", str(workdir / "scored.jsonl")]
    print("== cold run (empty shared cache directory) ==", file=sys.stderr)
    serve_main(argv)
    print(f"== warm run (fingerprint shard under {cache_dir}) ==", file=sys.stderr)
    serve_main(argv)
    print(f"scored output: {workdir / 'scored.jsonl'}", file=sys.stderr)


def demo_streaming() -> None:
    """The Python-side streaming API: submit_batch + as_completed + back-pressure."""
    from repro.core.config import FeedbackConfig
    from repro.driving import all_specifications
    from repro.serving import Dispatcher, FeedbackService, ServingConfig, as_completed

    print("\n== streaming API (submit_batch / as_completed) ==", file=sys.stderr)
    # One shared dispatcher could serve several services (e.g. a formal and an
    # empirical channel); here one service demonstrates the lifecycle.
    with Dispatcher(name="example-dispatch") as dispatcher:
        with FeedbackService(
            all_specifications(),
            feedback=FeedbackConfig(),
            # Back-pressure: at most 2 submitted batches may be unresolved.
            # A producer running ahead of verification blocks in
            # submit_batch until the dispatcher drains — bounded queueing,
            # with the blocked time telemetered.
            config=ServingConfig(max_inflight_batches=2),
            dispatcher=dispatcher,
        ) as service:
            # Submit one batch per task; each call returns a PendingBatch
            # future handle immediately (or blocks briefly under the bound).
            handles = {}
            for task in _demo_tasks():
                responses = list(response_templates(task.name, "compliant"))
                responses += list(response_templates(task.name, "flawed"))
                handles[service.submit_responses(task, responses)] = task.name

            # Consume in *completion* order: downstream work (pair
            # construction in the pipeline) starts on whichever batch
            # verifies first instead of waiting on the slowest.
            for handle in as_completed(handles):
                scores = handle.result()
                print(
                    f"  {handles[handle]:30s} {len(scores):2d} responses, "
                    f"scores {min(scores)}..{max(scores)}",
                    file=sys.stderr,
                )
            telemetry = service.metrics.snapshot()
    print(
        f"  {telemetry['jobs']} jobs, dedup rate {telemetry['dedup_rate']:.0%}, "
        f"back-pressure blocked {telemetry['backpressure_waits']}× "
        f"({telemetry['backpressure_seconds']:.2f}s)",
        file=sys.stderr,
    )


def demo() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro_serve_"))
    demo_cli(workdir)
    demo_streaming()
    return 0


if __name__ == "__main__":
    raise SystemExit(serve_main() if len(sys.argv) > 1 else demo())
