"""Score a JSONL file of responses through the batched feedback service.

Run with::

    PYTHONPATH=src python examples/serve_feedback.py responses.jsonl

or, after ``pip install -e .``, as the ``repro-serve`` console command.  With
no argument, a small demonstration file is generated from the response
library (including the highway-merge task), scored twice through a *shared
cache directory* — the second invocation warm-starts from the first's
fingerprint shard — and the telemetry printed: the serving subsystem's
quickstart.  On a multi-core machine, add ``--backend process`` to any
invocation to verify cold batches in parallel worker processes.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.driving import response_templates, task_by_name, training_tasks
from repro.serving.cli import main as serve_main


def demo() -> int:
    """Generate a demo workload and score it cold, then warm, via a shared cache."""
    workdir = Path(tempfile.mkdtemp(prefix="repro_serve_"))
    jsonl = workdir / "responses.jsonl"
    cache_dir = workdir / "feedback_cache"

    tasks = list(training_tasks()[:4]) + [task_by_name("merge_onto_highway")]
    with jsonl.open("w") as out:
        for task in tasks:
            # Duplicates on purpose: the dedup layer should absorb them.
            templates = list(response_templates(task.name, "compliant")) * 2
            templates += list(response_templates(task.name, "flawed"))
            for index, response in enumerate(templates):
                record = {"task": task.name, "response": response, "id": f"{task.name}/{index}"}
                out.write(json.dumps(record) + "\n")

    argv = [str(jsonl), "--cache-dir", str(cache_dir), "-o", str(workdir / "scored.jsonl")]
    print("== cold run (empty shared cache directory) ==", file=sys.stderr)
    serve_main(argv)
    print(f"== warm run (fingerprint shard under {cache_dir}) ==", file=sys.stderr)
    serve_main(argv)
    print(f"scored output: {workdir / 'scored.jsonl'}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(serve_main() if len(sys.argv) > 1 else demo())
