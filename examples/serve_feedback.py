"""Score a JSONL file of responses through the batched feedback service.

Run with::

    PYTHONPATH=src python examples/serve_feedback.py responses.jsonl

or, after ``pip install -e .``, as the ``repro-serve`` console command.  With
no argument, a small demonstration file is generated from the response
library, scored twice (cold, then warm via a persisted cache), and the
telemetry printed — the serving subsystem's quickstart.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.driving import response_templates, training_tasks
from repro.serving.cli import main as serve_main


def demo() -> int:
    """Generate a demo workload and score it cold, then warm."""
    workdir = Path(tempfile.mkdtemp(prefix="repro_serve_"))
    jsonl = workdir / "responses.jsonl"
    cache = workdir / "feedback_cache.json"

    with jsonl.open("w") as out:
        for task in training_tasks()[:4]:
            # Duplicates on purpose: the dedup layer should absorb them.
            templates = list(response_templates(task.name, "compliant")) * 2
            templates += list(response_templates(task.name, "flawed"))
            for response in templates:
                out.write(json.dumps({"task": task.name, "response": response}) + "\n")

    argv = [str(jsonl), "--cache-file", str(cache), "-o", str(workdir / "scored.jsonl")]
    print(f"== cold run (empty cache) ==", file=sys.stderr)
    serve_main(argv)
    print(f"== warm run (cache at {cache}) ==", file=sys.stderr)
    serve_main(argv)
    print(f"scored output: {workdir / 'scored.jsonl'}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(serve_main() if len(sys.argv) > 1 else demo())
