"""Quickstart: from a step-by-step response to a verified controller.

Run with::

    python examples/quickstart.py

This walks the core DPO-AF feedback primitive: take a natural-language
response, align it to the driving vocabulary, build the automaton-based
controller (GLM2FSA), implement it in the scenario's world model, and check it
against the paper's 15-rule traffic rule book.
"""

from repro.driving import all_specifications, task_by_name
from repro.feedback import FormalVerifier
from repro.glm2fsa import align_response, build_controller_from_text

RESPONSE = """\
1. Observe the traffic light.
2. If the traffic light is not green, stop.
3. If there is no car from the left and no pedestrian, turn right.
"""


def main() -> None:
    task = task_by_name("turn_right_traffic_light")
    print(f'Task prompt: Steps for "{task.prompt}"\n')
    print("Raw response:")
    print(RESPONSE)

    print("Aligned to the driving vocabulary (the paper's second query):")
    print(align_response(RESPONSE), "\n")

    controller = build_controller_from_text(RESPONSE, task=task.name, name="right_turn")
    print(controller.describe(), "\n")

    verifier = FormalVerifier(all_specifications())
    feedback = verifier.verify_controller(task.model(), controller, task=task.name)
    print(feedback.describe())
    print("Violated specifications:", ", ".join(feedback.violated) or "none")


if __name__ == "__main__":
    main()
