"""Packaging for the DPO-AF reproduction (no network access required)."""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Single source of truth: repro.__version__ also drives feedback-cache
# invalidation (repro.serving.cache.feedback_fingerprint).
_init = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'^__version__ = "([^"]+)"', _init.read_text(), re.MULTILINE).group(1)

setup(
    name="repro-dpoaf",
    version=VERSION,
    description=(
        "Reproduction of 'Fine-Tuning Language Models Using Formal Methods "
        "Feedback' (DPO-AF, MLSys 2024) with a batched feedback-serving subsystem"
    ),
    long_description=(
        "A from-scratch Python reproduction of the DPO-AF loop: GLM2FSA "
        "controller construction, LTL model checking, a Carla-substitute "
        "simulator, a numpy language model with LoRA/DPO training, and a "
        "batched, cached feedback-serving service (repro.serving) for "
        "high-throughput controller verification."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[
        "numpy",
        "networkx",
    ],
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serving.cli:main",
            "repro-trace=repro.obs.cli:main",
            "repro-lint=repro.analysis.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
