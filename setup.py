"""Setup shim so `pip install -e .` works without network access or the wheel package."""
from setuptools import setup

setup()
