"""Tests for the driving domain: vocabulary, rule book, scenarios, tasks, templates."""

import pytest

from repro.driving import (
    DRIVING_ACTIONS,
    DRIVING_PROPOSITIONS,
    DRIVING_VOCABULARY,
    SCENARIO_BUILDERS,
    all_specifications,
    all_tasks,
    core_specifications,
    response_templates,
    safety_specifications,
    sample_mixture_response,
    sample_response,
    scenario_model,
    task_by_name,
    task_prompt,
    training_tasks,
    universal_model,
    validation_tasks,
    with_derived_propositions,
)
from repro.driving.responses import CATEGORIES, FINETUNED_MIXTURE, PRETRAINED_MIXTURE, RESPONSE_LIBRARY


class TestVocabulary:
    def test_counts_match_paper(self):
        # 10 observable propositions (+ the derived "pedestrian") and 4 actions.
        assert len(DRIVING_ACTIONS) == 4
        assert len(DRIVING_PROPOSITIONS) == 11

    def test_derived_pedestrian(self):
        assert "pedestrian" in with_derived_propositions(["pedestrian_at_left"])
        assert "pedestrian" not in with_derived_propositions(["car_from_left"])

    def test_vocabulary_disjoint(self):
        assert not (DRIVING_VOCABULARY.propositions & DRIVING_VOCABULARY.actions)


class TestSpecifications:
    def test_fifteen_specifications(self):
        assert len(all_specifications()) == 15

    def test_core_subset(self):
        assert list(core_specifications()) == ["phi_1", "phi_2", "phi_3", "phi_4", "phi_5"]

    def test_safety_subset_is_subset(self):
        assert set(safety_specifications()) <= set(all_specifications())

    def test_spec_atoms_are_known(self):
        known = DRIVING_VOCABULARY.all_atoms
        for name, formula in all_specifications().items():
            unknown = formula.atoms() - known
            assert not unknown, f"{name} uses unknown atoms {unknown}"


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
    def test_models_are_wellformed(self, name):
        model = scenario_model(name)
        model.validate()
        assert model.num_states >= 4
        assert model.initial_states
        # Every state can evolve (the environment never deadlocks).
        assert all(model.successors(s) for s in model.states)

    @pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
    def test_pedestrian_states_are_transient(self, name):
        """No cycle keeps a pedestrian proposition true forever (fairness)."""
        import networkx as nx

        model = scenario_model(name)
        graph = model.to_networkx()
        ped_states = [s for s in model.states if "pedestrian" in model.label(s)]
        sub = graph.subgraph(ped_states)
        assert all(len(c) == 1 for c in nx.strongly_connected_components(sub)) and not any(
            sub.has_edge(s, s) for s in ped_states
        )

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            scenario_model("the_moon")

    def test_universal_model_unions_everything(self):
        merged = universal_model()
        assert merged.num_states == sum(scenario_model(n).num_states for n in SCENARIO_BUILDERS)
        assert merged.initial_states


class TestTasks:
    def test_split_covers_all(self):
        assert set(training_tasks()) | set(validation_tasks()) == set(all_tasks())
        assert set(training_tasks()) & set(validation_tasks()) == set()

    def test_every_task_has_a_buildable_model(self):
        for task in all_tasks():
            assert task.model().num_states > 0

    def test_task_lookup(self):
        task = task_by_name("turn_right_traffic_light")
        assert task.scenario == "traffic_light_intersection"
        with pytest.raises(KeyError):
            task_by_name("fly_to_the_moon")

    def test_prompt_format(self):
        assert task_prompt(task_by_name("enter_roundabout")) == 'Steps for "enter the roundabout"'


class TestResponseLibrary:
    def test_every_training_task_has_templates(self):
        for task in all_tasks():
            assert len(response_templates(task.name, "compliant")) >= 3
            assert len(response_templates(task.name, "flawed")) >= 3

    def test_vague_is_shared(self):
        assert response_templates("turn_right_traffic_light", "vague") == response_templates(
            "enter_roundabout", "vague"
        )

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            response_templates("turn_right_traffic_light", "excellent")

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            response_templates("parallel_parking", "compliant")

    def test_sample_response_is_deterministic_per_seed(self):
        a = sample_response("enter_roundabout", "flawed", seed=3)
        b = sample_response("enter_roundabout", "flawed", seed=3)
        assert a == b

    def test_mixture_sampling_respects_support(self):
        category, text = sample_mixture_response("enter_roundabout", {"compliant": 1.0, "flawed": 0.0, "vague": 0.0}, seed=0)
        assert category == "compliant"
        assert text in response_templates("enter_roundabout", "compliant")

    def test_mixture_requires_positive_mass(self):
        with pytest.raises(ValueError):
            sample_mixture_response("enter_roundabout", {"compliant": 0.0}, seed=0)

    def test_mixtures_are_distributions(self):
        for mixture in (PRETRAINED_MIXTURE, FINETUNED_MIXTURE):
            assert set(mixture) == set(CATEGORIES)
            assert abs(sum(mixture.values()) - 1.0) < 1e-9

    def test_templates_are_parseable_controllers(self):
        """Every compliant/flawed template compiles to a non-trivial controller."""
        from repro.glm2fsa import build_controller_from_text

        for task_name, per_task in RESPONSE_LIBRARY.items():
            for category in ("compliant", "flawed"):
                for template in per_task[category]:
                    controller = build_controller_from_text(template, task=task_name)
                    assert controller.num_states >= 2
