"""Tests for the LTL AST and parser."""

import pytest

from repro.errors import LTLSyntaxError
from repro.logic import (
    A,
    And,
    Atom,
    Eventually,
    F,
    G,
    Always,
    Implies,
    Next,
    Not,
    Or,
    Release,
    Until,
    conjunction,
    disjunction,
    parse_ltl,
)


class TestAST:
    def test_atom_canonicalisation(self):
        assert Atom("Car From Left").name == "car_from_left"

    def test_atoms_collects_all(self):
        formula = G(Implies(A("ped"), F(A("stop"))))
        assert formula.atoms() == frozenset({"ped", "stop"})

    def test_operator_sugar(self):
        formula = (A("a") & A("b")) | ~A("c")
        assert isinstance(formula, Or)
        assert isinstance(formula.right, Not)

    def test_implication_sugar(self):
        assert isinstance(A("a") >> A("b"), Implies)

    def test_size_and_walk(self):
        formula = G(Implies(A("a"), F(A("b"))))
        assert formula.size() == 5
        assert len(list(formula.walk())) == 5

    def test_is_propositional(self):
        assert (A("a") & ~A("b")).is_propositional()
        assert not F(A("a")).is_propositional()

    def test_conjunction_disjunction_helpers(self):
        assert str(conjunction([])) == "true"
        assert str(disjunction([])) == "false"
        assert conjunction([A("a"), A("b")]).atoms() == frozenset({"a", "b"})

    def test_str_roundtrips_through_parser(self):
        formula = G(Implies(A("a") & A("b"), Until(A("c"), A("d"))))
        assert parse_ltl(str(formula)) == formula


class TestParser:
    def test_simple_always(self):
        assert parse_ltl("G p") == Always(Atom("p"))

    def test_unicode_paper_notation(self):
        formula = parse_ltl("□(pedestrian → (♢ stop))")
        assert formula == Always(Implies(Atom("pedestrian"), Eventually(Atom("stop"))))

    def test_multi_word_atoms(self):
        formula = parse_ltl("G( car from left -> ! turn right )")
        assert formula.atoms() == frozenset({"car_from_left", "turn_right"})

    def test_next_operator(self):
        assert parse_ltl("X p") == Next(Atom("p"))

    def test_until_right_associative(self):
        formula = parse_ltl("a U b U c")
        assert isinstance(formula, Until)
        assert isinstance(formula.right, Until)

    def test_release(self):
        assert isinstance(parse_ltl("a R b"), Release)

    def test_weak_until_expansion(self):
        formula = parse_ltl("a W b")
        assert isinstance(formula, Or)

    def test_implication_right_associative(self):
        formula = parse_ltl("a -> b -> c")
        assert isinstance(formula, Implies)
        assert isinstance(formula.right, Implies)

    def test_precedence_and_tighter_than_or(self):
        formula = parse_ltl("a | b & c")
        assert isinstance(formula, Or)
        assert isinstance(formula.right, And)

    def test_iff_expands_to_two_implications(self):
        formula = parse_ltl("a <-> b")
        assert isinstance(formula, And)

    def test_constants(self):
        assert str(parse_ltl("true")) == "true"
        assert str(parse_ltl("false")) == "false"

    @pytest.mark.parametrize("text", ["", "   ", "(a", "a &", "U b", "a -> ", "G"])
    def test_syntax_errors(self, text):
        with pytest.raises(LTLSyntaxError):
            parse_ltl(text)

    @pytest.mark.parametrize("name", [f"phi_{i}" for i in range(1, 16)])
    def test_all_paper_specifications_parse(self, name):
        from repro.driving.specifications import SPECIFICATION_TEXTS

        formula = parse_ltl(SPECIFICATION_TEXTS[name])
        assert formula.atoms()
