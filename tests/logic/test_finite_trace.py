"""Tests for LTLf (finite-trace) evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.logic import evaluate_trace, normalize_trace, parse_ltl, satisfaction_fraction


class TestFiniteTraceSemantics:
    def test_atom(self):
        assert evaluate_trace(parse_ltl("a"), [{"a"}])
        assert not evaluate_trace(parse_ltl("a"), [{"b"}])

    def test_always(self):
        assert evaluate_trace(parse_ltl("G a"), [{"a"}, {"a", "b"}])
        assert not evaluate_trace(parse_ltl("G a"), [{"a"}, {"b"}])

    def test_eventually(self):
        assert evaluate_trace(parse_ltl("F b"), [{"a"}, {"b"}])
        assert not evaluate_trace(parse_ltl("F b"), [{"a"}, {"a"}])

    def test_next_is_strong(self):
        assert not evaluate_trace(parse_ltl("X a"), [{"a"}])           # no next position
        assert evaluate_trace(parse_ltl("X a"), [{"b"}, {"a"}])

    def test_until(self):
        assert evaluate_trace(parse_ltl("a U b"), [{"a"}, {"a"}, {"b"}])
        assert not evaluate_trace(parse_ltl("a U b"), [{"a"}, {}, {"b"}])
        assert not evaluate_trace(parse_ltl("a U b"), [{"a"}, {"a"}])

    def test_release(self):
        assert evaluate_trace(parse_ltl("a R b"), [{"b"}, {"b"}])
        assert evaluate_trace(parse_ltl("a R b"), [{"b"}, {"a", "b"}, {}])
        assert not evaluate_trace(parse_ltl("a R b"), [{"b"}, {}, {}])

    def test_response_pattern(self):
        spec = parse_ltl("G(ped -> F stop)")
        assert evaluate_trace(spec, [{"ped"}, {}, {"stop"}])
        assert not evaluate_trace(spec, [{"ped"}, {}, {"go"}])

    def test_empty_trace_vacuous_cases(self):
        assert evaluate_trace(parse_ltl("G a"), [])
        assert evaluate_trace(parse_ltl("true"), [])
        assert not evaluate_trace(parse_ltl("F a"), [])
        assert not evaluate_trace(parse_ltl("a"), [])

    def test_normalize_trace_canonicalises(self):
        trace = normalize_trace([["Green Light"], {"stop"}])
        assert trace[0] == frozenset({"green_light"})

    def test_implication_and_negation(self):
        spec = parse_ltl("G(!green -> !go)")
        assert evaluate_trace(spec, [{"green", "go"}, {"stop"}])
        assert not evaluate_trace(spec, [{"go"}])

    @given(st.lists(st.sets(st.sampled_from(["a", "b"]), max_size=2), min_size=1, max_size=6))
    def test_duality_g_and_f(self, trace):
        """G a  ≡  ¬ F ¬a on every finite trace (property-based)."""
        left = evaluate_trace(parse_ltl("G a"), trace)
        right = not evaluate_trace(parse_ltl("F !a"), trace)
        assert left == right

    @given(st.lists(st.sets(st.sampled_from(["a", "b"]), max_size=2), min_size=1, max_size=6))
    def test_until_release_duality(self, trace):
        """¬(a U b) ≡ ¬a R ¬b on every finite trace (property-based)."""
        left = not evaluate_trace(parse_ltl("a U b"), trace)
        right = evaluate_trace(parse_ltl("!a R !b"), trace)
        assert left == right


class TestSatisfactionFraction:
    def test_fraction(self):
        spec = parse_ltl("F stop")
        traces = [[{"stop"}], [{"go"}], [{"go"}, {"stop"}], [{"go"}]]
        assert satisfaction_fraction(spec, traces) == pytest.approx(0.5)

    def test_requires_traces(self):
        with pytest.raises(ValueError):
            satisfaction_fraction(parse_ltl("a"), [])
