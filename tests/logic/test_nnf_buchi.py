"""Tests for negation normal form and the LTL→Büchi translation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Atom, F, G, Neg, Not, Release, Until, X, is_nnf, negate, parse_ltl, to_nnf
from repro.logic.ltl2buchi import ltl_to_buchi, ltl_to_generalized_buchi
from repro.logic.nnf import eliminate_derived_operators, simplify_propositional


class TestNNF:
    def test_eliminates_implication(self):
        formula = eliminate_derived_operators(parse_ltl("a -> b"))
        assert "->" not in str(formula)

    def test_eventually_becomes_until(self):
        assert isinstance(eliminate_derived_operators(F(Atom("a"))), Until)

    def test_always_becomes_release(self):
        assert isinstance(eliminate_derived_operators(G(Atom("a"))), Release)

    def test_double_negation_removed(self):
        assert to_nnf(Not(Not(Atom("a")))) == Atom("a")

    def test_negated_until_becomes_release(self):
        formula = to_nnf(Not(Until(Atom("a"), Atom("b"))))
        assert isinstance(formula, Release)

    def test_nnf_predicate(self):
        assert is_nnf(to_nnf(parse_ltl("G(a -> F b)")))
        assert not is_nnf(parse_ltl("G(a -> F b)"))

    def test_negate_is_nnf(self):
        assert is_nnf(negate(parse_ltl("G(ped -> F stop)")))

    def test_simplify_constants(self):
        assert str(simplify_propositional(parse_ltl("a & true"))) == "a"
        assert str(simplify_propositional(parse_ltl("a & false"))) == "false"
        assert str(simplify_propositional(parse_ltl("a | true"))) == "true"

    @given(st.sampled_from(["a", "!a", "a & b", "a | !b", "X a", "F a", "G a", "a U b", "a R b", "a -> b"]))
    def test_to_nnf_always_produces_nnf(self, text):
        assert is_nnf(to_nnf(parse_ltl(text)))


class TestLTLToBuchi:
    def test_atomic_formula_automaton(self):
        nba = ltl_to_buchi(parse_ltl("p"))
        assert nba.num_states > 0
        assert nba.initial_states

    def test_gba_has_acceptance_set_per_until(self):
        gba = ltl_to_generalized_buchi(parse_ltl("(a U b) & (c U d)"))
        assert len(gba.acceptance_sets) == 2

    def test_no_until_means_all_accepting(self):
        nba = ltl_to_buchi(parse_ltl("G a"))
        assert nba.accepting_states == nba.states

    def test_automaton_size_reasonable(self):
        nba = ltl_to_buchi(parse_ltl("G(a -> F b)"))
        assert nba.num_states <= 32

    @pytest.mark.parametrize("text", ["G a", "F a", "a U b", "G(a -> F b)", "G(a -> X b)", "F G a"])
    def test_translation_produces_valid_automata(self, text):
        nba = ltl_to_buchi(parse_ltl(text))
        nba.validate()
        assert nba.transitions

    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(["G(a -> F b)", "G(a -> !b)", "F a", "G a", "a U b"]),
        st.lists(st.sets(st.sampled_from(["a", "b"]), max_size=2), min_size=1, max_size=5),
    )
    def test_translation_agrees_with_finite_semantics_on_lassos(self, text, prefix):
        """Checking φ on a lasso word via the NBA (through the model checker)
        agrees with direct evaluation of the lasso's infinite unrolling being
        approximated by LTLf on a long finite unrolling for safety formulas.

        This is a smoke-level semantic consistency check; the precise
        equivalence is exercised in the model-checker tests.
        """
        from repro.automata import KripkeStructure
        from repro.modelcheck import ModelChecker

        formula = parse_ltl(text)
        # Build a single-lasso Kripke structure from the prefix (last state loops).
        kripke = KripkeStructure(name="lasso")
        for i, symbol in enumerate(prefix):
            kripke.add_state(i, frozenset(symbol), initial=(i == 0))
        for i in range(len(prefix) - 1):
            kripke.add_transition(i, i + 1)
        kripke.add_transition(len(prefix) - 1, len(prefix) - 1)
        result = ModelChecker().check(kripke, formula)

        from repro.logic import evaluate_trace

        unrolled = list(prefix) + [prefix[-1]] * 40
        finite_verdict = evaluate_trace(formula, unrolled)
        if "F" not in text and "U" not in text:
            # For safety-shaped formulas finite and infinite verdicts coincide.
            assert result.holds == finite_verdict
