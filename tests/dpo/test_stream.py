"""The streaming DPO training-data path: stream → writer → handle → trainer.

The contracts under test:

* ``PairStream`` delivers pairs in put order, applies back-pressure at its
  bound, and propagates producer failures (``abort``) to the consumer;
* ``DatasetHandle`` append/seal/fail/wait semantics: appends after seal
  raise, waiters are released by seal *and* by fail (re-raising), warm-up
  gating follows producer progress;
* a ``DPODatasetWriter``-built dataset — no matter how the pairs' arrival is
  chunked or timed — equals ``DPODataset.from_preference_pairs`` exactly
  (pair order, token ids, masks), and its JSONL spill round-trips;
* ``DPOTrainer.train`` on a handle: the blocking path is bitwise-identical
  to training on the sealed dataset directly; the streamed path consumes
  every pair exactly once across the epoch boundary and is reproducible;
* end to end, ``DPOAFPipeline.run(stream_training=True)`` produces the same
  preference pairs as the blocking run and a sealed dataset equal to the
  blocking-built one on all three serving backends.
"""

import dataclasses
import json
import threading
import time

import numpy as np
import pytest

from repro.dpo import (
    DatasetHandle,
    DPODataset,
    DPODatasetWriter,
    PairStream,
    StreamClosed,
    encode_preference_pair,
    read_encoded_pairs,
)
from repro.errors import TrainingError
from repro.feedback import PreferencePair
from repro.lm import Tokenizer


@pytest.fixture(scope="module")
def toy_tokenizer() -> Tokenizer:
    texts = [
        'Steps for "turn right" :',
        "1. observe the light.\n2. if green, turn right.",
        "1. turn right.",
        "1. drive carefully.",
        "1. stop at the line.\n2. wait for green.",
    ]
    return Tokenizer.fit(texts)


def _toy_pairs(count: int = 6) -> list:
    prompt = 'Steps for "turn right" :'
    responses = [
        "1. observe the light.\n2. if green, turn right.",
        "1. turn right.",
        "1. drive carefully.",
        "1. stop at the line.\n2. wait for green.",
    ]
    pairs = []
    for i in range(count):
        chosen = responses[i % len(responses)]
        rejected = responses[(i + 1) % len(responses)]
        pairs.append(
            PreferencePair(
                prompt=prompt,
                chosen=chosen,
                rejected=rejected,
                chosen_score=float(10 - i),
                rejected_score=float(i),
                task=f"task_{i}",
            )
        )
    return pairs


class TestPairStream:
    def test_delivers_in_put_order(self):
        stream = PairStream()
        pairs = _toy_pairs(5)
        stream.put_many(pairs)
        stream.close()
        assert list(stream) == pairs

    def test_put_after_close_raises(self):
        stream = PairStream()
        stream.close()
        with pytest.raises(StreamClosed):
            stream.put(_toy_pairs(1)[0])

    def test_bounded_put_blocks_until_consumed(self):
        stream = PairStream(maxsize=2)
        pairs = _toy_pairs(4)
        produced = []

        def produce():
            for pair in pairs:
                stream.put(pair)
                produced.append(pair)
            stream.close()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        deadline = time.monotonic() + 5
        while len(produced) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.05)
        # At the bound: two pairs in, the third put is blocked.
        assert len(produced) == 2, "producer should block at maxsize"
        consumed = list(stream)  # draining releases the producer
        producer.join(timeout=5)
        assert not producer.is_alive()
        assert consumed == pairs
        assert stream.blocked_seconds > 0

    def test_abort_propagates_to_consumer_and_unblocks_producer(self):
        stream = PairStream(maxsize=1)
        stream.put(_toy_pairs(1)[0])
        blocked = threading.Thread(target=lambda: _swallow(stream.put, _toy_pairs(2)[1]), daemon=True)
        blocked.start()
        stream.abort(RuntimeError("producer died"))
        blocked.join(timeout=5)
        assert not blocked.is_alive(), "abort must unblock a producer stuck on the bound"
        with pytest.raises(RuntimeError, match="producer died"):
            list(stream)


def _swallow(fn, *args):
    try:
        fn(*args)
    except Exception:
        pass


class TestDatasetHandle:
    def _handle(self, tokenizer) -> DatasetHandle:
        return DatasetHandle(DPODataset(pairs=[], tokenizer=tokenizer, max_seq_len=48))

    def test_append_after_seal_raises(self, toy_tokenizer):
        handle = self._handle(toy_tokenizer)
        encoded = encode_preference_pair(_toy_pairs(1)[0], toy_tokenizer, max_seq_len=48)
        handle.append(encoded)
        handle.seal()
        with pytest.raises(TrainingError):
            handle.append(encoded)
        assert len(handle) == 1 and handle.sealed

    def test_wait_available_returns_at_seal_with_fewer_pairs(self, toy_tokenizer):
        handle = self._handle(toy_tokenizer)
        encoded = encode_preference_pair(_toy_pairs(1)[0], toy_tokenizer, max_seq_len=48)
        handle.append(encoded)

        results = {}

        def wait():
            results["end"] = handle.wait_available(10)

        waiter = threading.Thread(target=wait, daemon=True)
        waiter.start()
        time.sleep(0.05)
        assert waiter.is_alive(), "wait_available should block until seal"
        handle.seal()
        waiter.join(timeout=5)
        assert results["end"] == 1

    def test_wait_trainable_gates_on_progress_and_first_pair(self, toy_tokenizer):
        handle = self._handle(toy_tokenizer)
        encoded = encode_preference_pair(_toy_pairs(1)[0], toy_tokenizer, max_seq_len=48)
        # Progress alone is not trainable: at least one pair must have landed.
        handle.report_progress(3, 4)
        with pytest.raises(TimeoutError):
            handle.wait_trainable(0.5, timeout=0.05)
        handle.append(encoded)
        assert handle.wait_trainable(0.5, timeout=5) == 1
        # A higher threshold still waits; seal satisfies it unconditionally.
        with pytest.raises(TimeoutError):
            handle.wait_trainable(0.9, timeout=0.05)
        handle.seal()
        assert handle.wait_trainable(0.9, timeout=5) == 1
        assert handle.progress == 1.0

    def test_wait_trainable_rejects_bad_fraction(self, toy_tokenizer):
        handle = self._handle(toy_tokenizer)
        with pytest.raises(ValueError):
            handle.wait_trainable(1.5)

    def test_fail_releases_waiters_with_the_error(self, toy_tokenizer):
        handle = self._handle(toy_tokenizer)
        errors = []

        def wait():
            try:
                handle.wait_sealed()
            except RuntimeError as exc:
                errors.append(exc)

        waiter = threading.Thread(target=wait, daemon=True)
        waiter.start()
        handle.fail(RuntimeError("upstream crashed"))
        waiter.join(timeout=5)
        assert errors and "upstream crashed" in str(errors[0])
        with pytest.raises(RuntimeError):
            handle.dataset()


class TestDatasetWriter:
    def test_streamed_dataset_equals_blocking_built(self, toy_tokenizer):
        """Property: however arrival is chunked, the sealed dataset matches
        DPODataset.from_preference_pairs exactly."""
        pairs = _toy_pairs(8)
        blocking = DPODataset.from_preference_pairs(pairs, toy_tokenizer, max_seq_len=48)
        rng = np.random.default_rng(7)
        for _ in range(10):
            stream = PairStream(maxsize=int(rng.integers(1, 5)))
            writer = DPODatasetWriter(toy_tokenizer, max_seq_len=48)

            def produce():
                position = 0
                while position < len(pairs):
                    chunk = int(rng.integers(1, 4))
                    stream.put_many(pairs[position: position + chunk])
                    position += chunk
                    time.sleep(float(rng.random()) * 0.002)
                stream.close()

            producer = threading.Thread(target=produce, daemon=True)
            producer.start()
            handle = writer.consume(stream)
            producer.join(timeout=5)
            sealed = handle.dataset()
            assert sealed.pairs == blocking.pairs  # order, ids, masks — all of it
            assert writer.telemetry.pairs_encoded == len(pairs)
            assert writer.telemetry.first_pair_seconds is not None

    def test_spill_round_trips_and_is_atomic(self, toy_tokenizer, tmp_path):
        pairs = _toy_pairs(5)
        spill = tmp_path / "pairs.jsonl"
        writer = DPODatasetWriter(toy_tokenizer, max_seq_len=48, spill_path=spill)
        for pair in pairs:
            writer.append(pair)
        # Incremental writes go to a tmp sibling; the final path appears at seal.
        assert not spill.exists()
        assert list(tmp_path.glob("pairs.jsonl.tmp.*"))
        writer.seal()
        assert spill.exists()
        assert list(tmp_path.glob("pairs.jsonl.tmp.*")) == []
        reloaded = read_encoded_pairs(spill)
        assert reloaded == writer.handle.dataset().pairs

    def test_failed_writer_drops_partial_spill(self, toy_tokenizer, tmp_path):
        spill = tmp_path / "pairs.jsonl"
        writer = DPODatasetWriter(toy_tokenizer, max_seq_len=48, spill_path=spill)
        writer.append(_toy_pairs(1)[0])
        writer.fail(RuntimeError("boom"))
        assert not spill.exists()
        assert list(tmp_path.glob("pairs.jsonl.tmp.*")) == []

    def test_read_encoded_pairs_rejects_corrupt_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"chosen_ids": [1]}\n')
        with pytest.raises(ValueError):
            read_encoded_pairs(bad)

    def test_failed_seal_fails_the_handle_instead_of_deadlocking(self, toy_tokenizer, tmp_path):
        """Regression: if committing the spill raises at seal time, a trainer
        blocked on the handle must be released with the error, not left
        waiting forever for a seal that cannot happen."""
        import shutil

        spill_dir = tmp_path / "spill"
        writer = DPODatasetWriter(toy_tokenizer, max_seq_len=48, spill_path=spill_dir / "pairs.jsonl")
        writer.append(_toy_pairs(1)[0])
        shutil.rmtree(spill_dir)  # the commit's os.replace target vanishes
        with pytest.raises(OSError):
            writer.seal()
        assert writer.handle.sealed
        with pytest.raises(OSError):
            writer.handle.wait_sealed(timeout=1)

    def test_fail_still_fails_the_handle_when_spill_cleanup_raises(self, toy_tokenizer, tmp_path):
        """Regression: a spill discard() re-raising (e.g. ENOSPC on the close
        flush) must not prevent the handle from being failed — waiters would
        hang."""
        writer = DPODatasetWriter(toy_tokenizer, max_seq_len=48, spill_path=tmp_path / "pairs.jsonl")
        writer._spill_file.discard()  # release the real spill's tmp file

        class ExplodingSpill:
            def commit(self):
                raise OSError("no space left on device")

            def discard(self):
                raise OSError("no space left on device")

            def write(self, _text):
                raise OSError("no space left on device")

        writer._spill_file = ExplodingSpill()
        writer.fail(RuntimeError("original failure"))
        with pytest.raises(RuntimeError, match="original failure"):
            writer.handle.wait_sealed(timeout=1)

    def test_consume_aborted_stream_fails_handle_and_raises(self, toy_tokenizer):
        stream = PairStream()
        stream.put(_toy_pairs(1)[0])
        writer = DPODatasetWriter(toy_tokenizer, max_seq_len=48)

        def abort_soon():
            time.sleep(0.02)
            stream.abort(RuntimeError("verification failed"))

        threading.Thread(target=abort_soon, daemon=True).start()
        with pytest.raises(RuntimeError, match="verification failed"):
            writer.consume(stream)
        with pytest.raises(RuntimeError, match="verification failed"):
            writer.handle.wait_sealed()


class TestTrainerWithHandle:
    def _model(self, tokenizer):
        from repro.lm import ModelConfig, TransformerLM

        config = ModelConfig(
            vocab_size=tokenizer.vocab_size, max_seq_len=48, dim=16, num_heads=2, num_layers=1, hidden_dim=32
        )
        return TransformerLM(config, seed=0)

    def test_blocking_handle_training_matches_dataset_training(self, toy_tokenizer):
        from repro.dpo import DPOConfig, DPOTrainer

        pairs = _toy_pairs(6)
        dataset = DPODataset.from_preference_pairs(pairs, toy_tokenizer, max_seq_len=48)
        config = DPOConfig(num_epochs=2, batch_size=3, checkpoint_every=1, lora_rank=2, seed=0)

        direct = DPOTrainer(self._model(toy_tokenizer), toy_tokenizer, config).train(dataset)

        writer = DPODatasetWriter(toy_tokenizer, max_seq_len=48)
        for pair in pairs:
            writer.append(pair)
        writer.seal()
        via_handle = DPOTrainer(self._model(toy_tokenizer), toy_tokenizer, config).train(writer.handle)

        assert via_handle.history.losses == direct.history.losses
        for key, value in direct.policy.state_dict().items():
            assert np.array_equal(via_handle.policy.state_dict()[key], value), key

    def test_streamed_training_consumes_every_pair_once_and_is_reproducible(self, toy_tokenizer):
        """Epoch-boundary semantics: the streamed epoch drains the growing
        prefix exactly once, waits for the seal, and later epochs shuffle the
        sealed dataset — identically however arrival was timed."""
        from repro.dpo import DPOConfig, DPOTrainer

        pairs = _toy_pairs(7)
        config = DPOConfig(num_epochs=3, batch_size=3, checkpoint_every=1, lora_rank=2, seed=0)
        results = []
        for delay in (0.0, 0.005):
            writer = DPODatasetWriter(toy_tokenizer, max_seq_len=48)
            handle = writer.handle

            def produce(delay=delay, writer=writer):
                for i, pair in enumerate(pairs):
                    writer.append(pair)
                    handle.report_progress(i + 1, len(pairs))
                    if delay:
                        time.sleep(delay)
                writer.seal()

            producer = threading.Thread(target=produce, daemon=True)
            producer.start()
            trainer = DPOTrainer(self._model(toy_tokenizer), toy_tokenizer, config)
            result = trainer.train(handle, stream=True, warmup_fraction=0.25)
            producer.join(timeout=5)
            assert trainer.first_batch_ready_seconds is not None
            # 3 epochs over 7 pairs at batch 3: epoch 1 streams ceil windows,
            # epochs 2-3 shuffle 3 batches each.
            assert result.history.num_epochs == 3
            results.append(result)

        fast, slow = results
        assert fast.history.losses == slow.history.losses, "streamed training must not depend on timing"
        for key, value in fast.policy.state_dict().items():
            assert np.array_equal(slow.policy.state_dict()[key], value), key

    def test_streamed_training_on_empty_handle_raises(self, toy_tokenizer):
        from repro.dpo import DPOConfig, DPOTrainer

        writer = DPODatasetWriter(toy_tokenizer, max_seq_len=48)
        writer.seal()
        trainer = DPOTrainer(self._model(toy_tokenizer), toy_tokenizer, DPOConfig(num_epochs=1))
        with pytest.raises(TrainingError):
            trainer.train(writer.handle, stream=True)


class TestPipelineStreaming:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_sealed_streamed_dataset_equals_blocking_dataset(self, backend, tmp_path):
        """Acceptance: on every backend, the streaming run collects the same
        pairs as the blocking run and its sealed dataset equals the
        blocking-built one (pair order, token ids, masks)."""
        from repro.core import DPOAFPipeline
        from repro.core.config import quick_pipeline_config
        from repro.driving import core_specifications, training_tasks
        from repro.serving import ServingConfig

        base = quick_pipeline_config(seed=0)
        spill = tmp_path / f"pairs-{backend}.jsonl"
        serving = ServingConfig(backend=backend, max_workers=2)
        blocking_cfg = dataclasses.replace(base, serving=serving)
        streaming_cfg = dataclasses.replace(
            base,
            serving=serving,
            stream_training=True,
            stream_warmup_fraction=0.25,
            stream_pairs_path=str(spill),
        )
        kwargs = dict(
            specifications=core_specifications(), tasks=training_tasks()[:2], validation=()
        )
        with DPOAFPipeline(blocking_cfg, **kwargs) as pipeline:
            blocking = pipeline.run()
        with DPOAFPipeline(streaming_cfg, **kwargs) as pipeline:
            streamed = pipeline.run()

        assert streamed.preference_pairs == blocking.preference_pairs, backend

        tokenizer = blocking.pretrain_result.tokenizer
        max_seq_len = blocking.pretrain_result.model.config.max_seq_len
        blocking_dataset = DPODataset.from_preference_pairs(
            blocking.preference_pairs, tokenizer, max_seq_len=max_seq_len
        )
        assert read_encoded_pairs(spill) == blocking_dataset.pairs, backend

        telemetry = streamed.stream_telemetry
        assert telemetry["pairs_encoded"] == len(blocking.preference_pairs)
        assert telemetry["first_trainable_pair_seconds"] is not None
        assert telemetry["spill_path"] == str(spill)

    def test_default_config_keeps_the_blocking_path(self):
        from repro.core.config import PipelineConfig

        config = PipelineConfig()
        assert config.stream_training is False

    def test_config_rejects_bad_stream_values(self):
        from repro.core.config import PipelineConfig

        with pytest.raises(ValueError):
            PipelineConfig(stream_warmup_fraction=1.5)
        with pytest.raises(ValueError):
            PipelineConfig(stream_buffer_pairs=-1)
