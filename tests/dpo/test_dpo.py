"""Tests for the DPO dataset, loss, metrics, and trainer."""

import numpy as np
import pytest

from repro.dpo import (
    DPOConfig,
    DPODataset,
    DPOTrainer,
    MultiSeedCurves,
    TrainingHistory,
    dpo_step,
    run_dpo,
    sigmoid,
    stack_pair_batch,
)
from repro.errors import TrainingError
from repro.feedback import PreferencePair
from repro.lm import ModelConfig, Tokenizer, TransformerLM


@pytest.fixture(scope="module")
def toy_tokenizer() -> Tokenizer:
    texts = [
        'Steps for "turn right" :',
        "1. observe the light.\n2. if green, turn right.",
        "1. turn right.",
        "1. drive carefully.",
    ]
    return Tokenizer.fit(texts)


@pytest.fixture(scope="module")
def toy_pairs() -> list:
    prompt = 'Steps for "turn right" :'
    good = "1. observe the light.\n2. if green, turn right."
    bad = "1. turn right."
    vague = "1. drive carefully."
    return [
        PreferencePair(prompt=prompt, chosen=good, rejected=bad, chosen_score=14, rejected_score=10, task="t"),
        PreferencePair(prompt=prompt, chosen=good, rejected=vague, chosen_score=14, rejected_score=0, task="t"),
        PreferencePair(prompt=prompt, chosen=bad, rejected=vague, chosen_score=10, rejected_score=0, task="t"),
    ]


@pytest.fixture()
def toy_model(toy_tokenizer) -> TransformerLM:
    config = ModelConfig(vocab_size=toy_tokenizer.vocab_size, max_seq_len=48, dim=16, num_heads=2, num_layers=1, hidden_dim=32)
    return TransformerLM(config, seed=0)


class TestSigmoid:
    def test_symmetry(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        assert sigmoid(np.array([5.0]))[0] + sigmoid(np.array([-5.0]))[0] == pytest.approx(1.0)

    def test_extremes_are_stable(self):
        assert np.isfinite(sigmoid(np.array([1000.0, -1000.0]))).all()


class TestDataset:
    def test_encoding_masks_only_response(self, toy_pairs, toy_tokenizer):
        dataset = DPODataset.from_preference_pairs(toy_pairs, toy_tokenizer, max_seq_len=48)
        batch = next(dataset.batches(3, shuffle=False))
        prompt_len = len(toy_tokenizer.encode(toy_pairs[0].prompt, add_bos=True))
        assert batch["chosen_mask"][:, : prompt_len - 1].sum() == 0
        assert batch["chosen_mask"].sum() > 0

    def test_rejects_non_pairs(self, toy_tokenizer):
        with pytest.raises(TrainingError):
            DPODataset.from_preference_pairs(["not a pair"], toy_tokenizer)

    def test_empty_dataset_raises_on_batching(self, toy_tokenizer):
        dataset = DPODataset(pairs=[], tokenizer=toy_tokenizer)
        with pytest.raises(TrainingError):
            next(dataset.batches(2, shuffle=False))

    def test_num_batches(self, toy_pairs, toy_tokenizer):
        dataset = DPODataset.from_preference_pairs(toy_pairs, toy_tokenizer)
        assert dataset.num_batches(2) == 2


class TestDPOStep:
    def test_initial_loss_is_log_two(self, toy_model, toy_pairs, toy_tokenizer):
        """Before any update the policy equals the reference, so L = -log σ(0) = log 2."""
        dataset = DPODataset.from_preference_pairs(toy_pairs, toy_tokenizer, max_seq_len=48)
        batch = next(dataset.batches(3, shuffle=False))
        metrics = dpo_step(toy_model, toy_model.clone(), batch, beta=0.5, backward=False)
        assert metrics.loss == pytest.approx(np.log(2.0), rel=1e-3)
        assert metrics.marginal_preference == pytest.approx(0.0, abs=1e-4)

    def test_gradients_reduce_loss(self, toy_model, toy_pairs, toy_tokenizer):
        from repro.lm import Adam

        reference = toy_model.clone()
        dataset = DPODataset.from_preference_pairs(toy_pairs, toy_tokenizer, max_seq_len=48)
        optimizer = Adam(toy_model.parameters(), learning_rate=5e-3)
        batch = next(dataset.batches(3, shuffle=False))
        first = dpo_step(toy_model, reference, batch, beta=0.5, backward=False).loss
        for _ in range(15):
            optimizer.zero_grad()
            dpo_step(toy_model, reference, batch, beta=0.5)
            optimizer.step()
        last = dpo_step(toy_model, reference, batch, beta=0.5, backward=False).loss
        assert last < first
        final = dpo_step(toy_model, reference, batch, beta=0.5, backward=False)
        assert final.marginal_preference > 0


class TestFusedDPOStep:
    """The fused (stacked chosen+rejected) forward is equivalent to the
    two-passes-per-model reference path — metrics and gradients alike."""

    @staticmethod
    def _batch(toy_pairs, toy_tokenizer):
        dataset = DPODataset.from_preference_pairs(toy_pairs, toy_tokenizer, max_seq_len=48)
        return next(dataset.batches(3, shuffle=False))

    def test_stack_pair_batch_shapes_and_padding(self, toy_pairs, toy_tokenizer):
        batch = self._batch(toy_pairs, toy_tokenizer)
        tokens, mask = stack_pair_batch(batch)
        width = max(batch["chosen_tokens"].shape[1], batch["rejected_tokens"].shape[1])
        assert tokens.shape == (6, width) and mask.shape == (6, width - 1)
        rows = batch["chosen_tokens"].shape[0]
        narrow = batch["rejected_tokens"].shape[1]
        assert np.array_equal(tokens[rows:, :narrow], batch["rejected_tokens"])
        assert not tokens[rows:, narrow:].any()  # pad id 0
        assert not mask[rows:, narrow - 1:].any()  # padded targets never count

    def test_fused_metrics_match_unfused(self, toy_model, toy_pairs, toy_tokenizer):
        batch = self._batch(toy_pairs, toy_tokenizer)
        reference = toy_model.clone()
        fused = dpo_step(toy_model, reference, batch, beta=0.7, backward=False, fused=True)
        unfused = dpo_step(toy_model, reference, batch, beta=0.7, backward=False, fused=False)
        for key, value in fused.as_dict().items():
            assert value == pytest.approx(unfused.as_dict()[key], abs=1e-5), key

    def test_fused_gradients_match_unfused(self, toy_pairs, toy_tokenizer):
        batch = self._batch(toy_pairs, toy_tokenizer)
        config = ModelConfig(vocab_size=toy_tokenizer.vocab_size, max_seq_len=48, dim=16, num_heads=2, num_layers=1, hidden_dim=32)
        models = [TransformerLM(config, seed=0) for _ in range(2)]
        for model, fused in zip(models, (True, False)):
            model.zero_grad()
            dpo_step(model, model.clone(), batch, beta=0.5, backward=True, fused=fused)
        for a, b in zip(models[0].parameters(), models[1].parameters()):
            scale = max(float(np.max(np.abs(b.grad))), 1e-3)
            assert np.allclose(a.grad, b.grad, atol=scale * 1e-4), a.name


class TestTrainer:
    def test_training_improves_metrics_and_checkpoints(self, toy_model, toy_pairs, toy_tokenizer):
        config = DPOConfig(num_epochs=6, batch_size=3, learning_rate=5e-3, checkpoint_every=2, lora_rank=2, seed=0)
        result = run_dpo(toy_model, toy_tokenizer, toy_pairs, config, max_seq_len=48)
        history = result.history
        assert history.num_steps == 6  # one batch per epoch
        assert history.losses[-1] < history.losses[0]
        assert history.marginal_preferences[-1] > 0
        assert set(result.checkpoint_epochs()) == {0, 2, 4, 6}
        assert result.lora_summary["trainable_parameters"] < result.lora_summary["total_parameters"]
        assert result.throughput["steps"] == 6
        assert result.throughput["pairs"] == 18  # 3 pairs × 6 epochs
        assert result.throughput["seconds"] > 0
        assert result.throughput["pairs_per_second"] == pytest.approx(
            result.throughput["pairs"] / result.throughput["seconds"]
        )

    def test_model_at_epoch_restores_weights(self, toy_model, toy_pairs, toy_tokenizer):
        config = DPOConfig(num_epochs=2, batch_size=3, checkpoint_every=1, lora_rank=2, seed=0)
        result = run_dpo(toy_model, toy_tokenizer, toy_pairs, config, max_seq_len=48)
        restored = result.model_at_epoch(0)
        reference_state = result.checkpoints[0]
        assert np.allclose(restored.state_dict()["head.lora_b"], reference_state["head.lora_b"])
        with pytest.raises(TrainingError):
            result.model_at_epoch(999)

    def test_empty_pairs_raise(self, toy_model, toy_tokenizer):
        trainer = DPOTrainer(toy_model, toy_tokenizer, DPOConfig(num_epochs=1))
        with pytest.raises(TrainingError):
            trainer.train(DPODataset(pairs=[], tokenizer=toy_tokenizer))

    def test_max_steps_caps_training(self, toy_model, toy_pairs, toy_tokenizer):
        config = DPOConfig(num_epochs=50, batch_size=1, max_steps=4, checkpoint_every=100, lora_rank=2, seed=0)
        result = run_dpo(toy_model, toy_tokenizer, toy_pairs, config, max_seq_len=48)
        assert result.history.num_steps == 4


class TestMetricsContainers:
    def test_training_history_records(self):
        history = TrainingHistory()

        class _M:
            loss, accuracy, marginal_preference = 0.5, 0.75, 1.2

        history.record(_M(), grad_norm=0.3)
        history.mark_epoch()
        assert history.num_steps == 1 and history.num_epochs == 1
        assert history.final()["accuracy"] == 0.75

    def test_multi_seed_aggregation(self):
        curves = MultiSeedCurves()
        for offset in (0.0, 1.0):
            history = TrainingHistory()
            history.losses = [1.0 + offset, 0.5 + offset]
            history.accuracies = [0.5, 0.9]
            history.marginal_preferences = [0.0, 1.0]
            curves.add(history)
        assert curves.num_seeds == 2
        assert curves.mean("losses")[0] == pytest.approx(1.5)
        assert curves.minimum("losses")[1] == pytest.approx(0.5)
        assert curves.maximum("losses")[1] == pytest.approx(1.5)
        rows = curves.summary_table("losses", every=1)
        assert rows[0][0] == 0 and len(rows) == 2
