"""Tests for synthetic scenes, the simulated detector, and calibration."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.perception import (
    CATEGORIES,
    PerceptionNoiseModel,
    SimulatedDetector,
    WEATHER_CONDITIONS,
    calibration_curve,
    compare_domains,
    detection_accuracy,
    generate_dataset,
    generate_scene,
    perfect_perception,
)
from repro.utils.rng import seeded_rng


class TestScenes:
    def test_scene_has_objects(self):
        scene = generate_scene("simulation", seed=0)
        assert len(scene) >= 2
        assert all(obj.category in CATEGORIES for obj in scene.objects)

    def test_weather_selection(self):
        scene = generate_scene("real", weather="rain", seed=0)
        assert scene.weather == "rain"

    def test_invalid_domain_and_weather(self):
        with pytest.raises(SimulationError):
            generate_scene("cartoon", seed=0)
        with pytest.raises(SimulationError):
            generate_scene("real", weather="hurricane", seed=0)

    def test_dataset_size(self):
        assert len(generate_dataset("simulation", 25, seed=0)) == 25
        with pytest.raises(SimulationError):
            generate_dataset("simulation", 0)

    def test_real_domain_is_harder_on_average(self):
        sim = generate_dataset("simulation", 200, seed=0)
        real = generate_dataset("real", 200, seed=0)
        sim_visibility = np.mean([o.visibility() for s in sim for o in s.objects])
        real_visibility = np.mean([o.visibility() for s in real for o in s.objects])
        assert real_visibility < sim_visibility

    def test_weather_conditions_cover_figure13(self):
        assert set(WEATHER_CONDITIONS) == {"sunny", "cloudy", "rain", "night"}


class TestDetector:
    def test_detections_have_confidences_in_range(self):
        detector = SimulatedDetector()
        detections = detector.detect_dataset(generate_dataset("simulation", 30, seed=0), seed=1)
        assert detections
        assert all(0.0 < d.confidence < 1.0 for d in detections)

    def test_higher_confidence_means_higher_accuracy(self):
        detector = SimulatedDetector()
        detections = detector.detect_dataset(generate_dataset("real", 400, seed=0), seed=1)
        high = [d for d in detections if d.confidence > 0.6]
        low = [d for d in detections if d.confidence < 0.3]
        assert detection_accuracy(high) > detection_accuracy(low)

    def test_night_weather_reduces_accuracy(self):
        detector = SimulatedDetector()
        sunny = detector.detect_dataset(generate_dataset("real", 250, weather="sunny", seed=0), seed=1)
        night = detector.detect_dataset(generate_dataset("real", 250, weather="night", seed=0), seed=1)
        assert detection_accuracy(night) < detection_accuracy(sunny)

    def test_detection_accuracy_empty(self):
        assert detection_accuracy([]) == 0.0


class TestCalibration:
    @pytest.fixture(scope="class")
    def detections(self):
        detector = SimulatedDetector()
        scenes = generate_dataset("simulation", 500, seed=0) + generate_dataset("real", 500, seed=1)
        return detector.detect_dataset(scenes, seed=2)

    def test_curve_shape(self, detections):
        curve = calibration_curve(detections, domain="simulation")
        assert len(curve.bin_centers) == 7
        assert len(curve.as_rows()) == 7

    def test_curves_are_increasing_overall(self, detections):
        curve = calibration_curve(detections, domain="real")
        smoothed = curve.smoothed[~np.isnan(curve.smoothed)]
        assert smoothed[-1] > smoothed[0]

    def test_figure12_consistency(self, detections):
        comparison = compare_domains(detections)
        assert comparison.is_consistent(tolerance=0.15)
        assert comparison.max_gap("overall") < 0.15

    def test_all_categories_present(self, detections):
        comparison = compare_domains(detections)
        for domain in ("simulation", "real"):
            for category in ("overall", *CATEGORIES):
                assert (domain, category) in comparison.curves

    def test_inconsistent_detector_is_flagged(self):
        """A detector with a large domain gap must fail the consistency check."""
        detector = SimulatedDetector(domain_gap=4.0)
        scenes = generate_dataset("simulation", 300, seed=0) + generate_dataset("real", 300, seed=1)
        comparison = compare_domains(detector.detect_dataset(scenes, seed=2))
        assert not comparison.is_consistent(tolerance=0.15)


class TestPerceptionNoise:
    def test_perfect_perception_identity(self):
        observations = frozenset({"green_traffic_light"})
        assert perfect_perception(observations, seeded_rng(0)) == observations

    def test_noise_model_probabilities_validated(self):
        with pytest.raises(ValueError):
            PerceptionNoiseModel(miss_rate={"car": 1.4})

    def test_misses_and_false_positives(self):
        noise = PerceptionNoiseModel(miss_rate={"car": 1.0, "pedestrian": 0.0, "traffic_light": 0.0},
                                     false_positive_rate={"car": 0.0, "pedestrian": 0.0, "traffic_light": 0.0})
        rng = seeded_rng(0)
        detected = noise(frozenset({"car_from_left", "pedestrian_at_right", "pedestrian"}), rng)
        assert "car_from_left" not in detected          # always missed
        assert "pedestrian_at_right" in detected        # never missed
        assert "pedestrian" in detected                 # derived proposition maintained

    def test_derived_pedestrian_removed_when_no_evidence(self):
        noise = PerceptionNoiseModel(miss_rate={"car": 0.0, "pedestrian": 1.0, "traffic_light": 0.0},
                                     false_positive_rate={"car": 0.0, "pedestrian": 0.0, "traffic_light": 0.0})
        detected = noise(frozenset({"pedestrian_at_right", "pedestrian"}), seeded_rng(0))
        assert "pedestrian" not in detected
