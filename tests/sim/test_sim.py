"""Tests for the driving simulator (agents, world, executor, traces)."""

import numpy as np
import pytest

from repro.driving import SCENARIO_BUILDERS
from repro.errors import SimulationError
from repro.sim import ControllerExecutor, DrivingWorld, SimulationGrounding, Trace
from repro.sim.agents import PedestrianAgent, StopSignAgent, TrafficLightAgent, VehicleAgent


class TestAgents:
    def test_traffic_light_cycles(self, rng):
        light = TrafficLightAgent(green_duration=(1, 1), red_duration=(1, 1))
        light.reset(rng)
        states = set()
        for _ in range(6):
            states.add(light.is_green)
            light.step(rng)
        assert states == {True, False}

    def test_left_turn_light_proposition(self, rng):
        light = TrafficLightAgent(kind="left_turn")
        light.is_green = True
        assert light.propositions() == {"green_left_turn_light"}

    def test_vehicle_approaches_and_passes(self, rng):
        vehicle = VehicleAgent(direction="left", spawn_probability=1.0, speed_range=(2.0, 2.0))
        vehicle.reset(rng)
        assert vehicle.visible
        for _ in range(10):
            vehicle.spawn_probability = 0.0
            vehicle.step(rng)
        assert not vehicle.visible

    def test_pedestrian_propositions_include_derived(self, rng):
        pedestrian = PedestrianAgent(position="right", spawn_probability=1.0)
        pedestrian.reset(rng)
        assert {"pedestrian_at_right", "pedestrian"} <= pedestrian.propositions()

    def test_front_pedestrian(self, rng):
        pedestrian = PedestrianAgent(position="front", spawn_probability=1.0)
        pedestrian.reset(rng)
        assert "pedestrian_in_front" in pedestrian.propositions()

    def test_stop_sign_is_static(self, rng):
        sign = StopSignAgent()
        sign.reset(rng)
        sign.step(rng)
        assert sign.propositions() == {"stop_sign"}

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            VehicleAgent(spawn_probability=1.5)


class TestWorld:
    @pytest.mark.parametrize("scenario", sorted(SCENARIO_BUILDERS))
    def test_every_scenario_has_a_world(self, scenario):
        world = DrivingWorld(scenario, seed=0, max_steps=5)
        observed = world.observations()
        assert isinstance(observed, set)
        world.apply_action("stop")
        assert world.tick == 1

    def test_maneuver_completes_episode(self):
        world = DrivingWorld("traffic_light_intersection", seed=0, max_steps=10)
        world.apply_action("go_straight")
        assert world.done and world.completed

    def test_step_budget_ends_episode(self):
        world = DrivingWorld("roundabout", seed=0, max_steps=3)
        for _ in range(3):
            world.apply_action("stop")
        assert world.done and not world.completed

    def test_unknown_scenario_and_action(self):
        with pytest.raises(SimulationError):
            DrivingWorld("mars_rover", seed=0)
        world = DrivingWorld("roundabout", seed=0)
        with pytest.raises(SimulationError):
            world.apply_action("teleport")

    def test_stop_sign_scenario_always_observes_sign(self):
        world = DrivingWorld("two_way_stop_intersection", seed=1, max_steps=5)
        for _ in range(5):
            assert "stop_sign" in world.observations()
            world.apply_action("stop")


class TestExecutorAndTraces:
    def test_trace_structure(self, right_turn_good_controller):
        executor = ControllerExecutor("traffic_light_intersection", max_steps=15)
        trace = executor.run_episode(right_turn_good_controller, seed=0)
        assert isinstance(trace, Trace)
        assert 1 <= len(trace) <= 15
        assert all(isinstance(symbol, frozenset) for symbol in trace.symbols())

    def test_reproducible_with_seed(self, right_turn_good_controller):
        executor = ControllerExecutor("traffic_light_intersection", max_steps=15)
        a = executor.run_episode(right_turn_good_controller, seed=7).symbols()
        b = executor.run_episode(right_turn_good_controller, seed=7).symbols()
        assert a == b

    def test_collect_traces_count_and_validation(self, right_turn_good_controller):
        executor = ControllerExecutor("traffic_light_intersection", max_steps=10)
        traces = executor.collect_traces(right_turn_good_controller, 5, seed=0)
        assert len(traces) == 5
        with pytest.raises(SimulationError):
            executor.collect_traces(right_turn_good_controller, 0)

    def test_good_controller_eventually_turns(self, right_turn_good_controller):
        grounding = SimulationGrounding("traffic_light_intersection", max_steps=25)
        traces = grounding.raw_traces(right_turn_good_controller, 10, seed=0)
        assert any(trace.count_action("turn_right") > 0 for trace in traces)

    def test_compliant_respects_phi5_in_simulation(self, right_turn_good_controller, core_specs):
        from repro.logic import satisfaction_fraction

        grounding = SimulationGrounding("traffic_light_intersection", max_steps=25)
        traces = grounding(right_turn_good_controller, 15, seed=1)
        assert satisfaction_fraction(core_specs["phi_5"], traces) >= 0.95

    def test_observation_filter_is_applied(self, right_turn_good_controller):
        def blind(observations, rng):  # noqa: ARG001 - the controller sees nothing
            return frozenset()

        executor = ControllerExecutor("traffic_light_intersection", max_steps=5, observation_filter=blind)
        trace = executor.run_episode(right_turn_good_controller, seed=0)
        # The controller never sees a green light, so it never progresses past waiting.
        assert trace.count_action("turn_right") == 0

    def test_trace_helpers(self):
        trace = Trace(scenario="s", controller="c")
        trace.append({"green_traffic_light"}, {"go_straight"})
        trace.append({"pedestrian"}, set())
        assert trace.count_action("go_straight") == 1
        assert "pedestrian" in trace.propositions_seen()
        assert trace.symbols()[0] == frozenset({"green_traffic_light", "go_straight"})
        assert "Trace" in trace.describe()
