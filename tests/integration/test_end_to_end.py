"""End-to-end integration tests of the DPO-AF reproduction.

These tests run the whole pipeline at a reduced scale: they are the slowest
tests in the suite (tens of seconds) but verify the cross-module contracts the
benchmarks rely on.
"""

import numpy as np
import pytest

from repro.core import DPOAFPipeline, PipelineConfig
from repro.core.config import FeedbackConfig, SamplingConfig
from repro.dpo import DPOConfig
from repro.driving import core_specifications, response_templates, task_by_name, training_tasks
from repro.feedback import FormalVerifier, rank_to_pairs
from repro.glm2fsa import build_controller_from_text
from repro.lm import PretrainConfig, build_corpus, format_prompt, pretrain
from repro.lm.sampling import sample_responses
from repro.sim import SimulationGrounding
from repro.feedback import EmpiricalEvaluator


@pytest.fixture(scope="module")
def small_tasks():
    return [task_by_name("turn_right_traffic_light"), task_by_name("go_straight_traffic_light")]


@pytest.fixture(scope="module")
def pretrained():
    corpus = build_corpus(samples_per_task=12, seed=0)
    return pretrain(corpus, PretrainConfig(num_steps=80, batch_size=8, seed=0))


class TestCorpusAndPretraining:
    def test_corpus_mixture_contains_all_categories(self):
        corpus = build_corpus(samples_per_task=20, seed=0)
        counts = corpus.category_counts()
        assert set(counts) == {"compliant", "flawed", "vague"}

    def test_pretraining_reduces_loss(self, pretrained):
        assert pretrained.losses[-1] < pretrained.losses[0] * 0.5

    def test_sampled_text_is_step_like(self, pretrained):
        prompt = format_prompt(task_by_name("turn_right_traffic_light"))
        responses = sample_responses(pretrained.model, pretrained.tokenizer, prompt, 3, seed=0)
        assert any("1." in response for response in responses)


class TestVerificationFeedbackLoop:
    def test_template_scores_drive_preferences(self, small_tasks):
        verifier = FormalVerifier(core_specifications())
        pairs = []
        for task in small_tasks:
            responses = [
                response_templates(task.name, "compliant")[0],
                response_templates(task.name, "flawed")[0],
            ]
            scores = [verifier.verify_response(task.model(), r, task=task.name).num_satisfied for r in responses]
            pairs.extend(rank_to_pairs(format_prompt(task), responses, scores, task=task.name))
        assert pairs
        assert all(pair.chosen_score > pair.rejected_score for pair in pairs)

    def test_formal_and_empirical_feedback_agree_on_ordering(self, small_tasks):
        """Section 5.2's consistency claim at unit scale: both feedback channels
        prefer the compliant controller."""
        task = small_tasks[0]
        good = build_controller_from_text(response_templates(task.name, "compliant")[0], task=task.name)
        bad = build_controller_from_text("1. Turn right at the corner.", task=task.name)

        formal = FormalVerifier(core_specifications())
        formal_good = formal.verify_controller(task.model(), good).num_satisfied
        formal_bad = formal.verify_controller(task.model(), bad).num_satisfied

        empirical = EmpiricalEvaluator(core_specifications(), SimulationGrounding(task.scenario), threshold=0.95)
        empirical_good = empirical.evaluate_controller(good, num_traces=15, seed=0).mean_satisfaction
        empirical_bad = empirical.evaluate_controller(bad, num_traces=15, seed=0).mean_satisfaction

        assert formal_good > formal_bad
        assert empirical_good > empirical_bad


class TestPipelineEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline_result(self):
        config = PipelineConfig(
            pretrain=PretrainConfig(num_steps=150, batch_size=12, seed=1),
            dpo=DPOConfig(num_epochs=10, batch_size=8, learning_rate=3e-3, beta=1.0, lora_rank=4, checkpoint_every=5, seed=1),
            sampling=SamplingConfig(responses_per_prompt=3, max_new_tokens=64),
            feedback=FeedbackConfig(),
            corpus_samples_per_task=16,
            seed=1,
        )
        with DPOAFPipeline(config, specifications=core_specifications(), tasks=training_tasks()[:4], validation=()) as pipeline:
            return pipeline.run(evaluate_checkpoints=True)

    def test_dpo_metrics_move_in_the_right_direction(self, pipeline_result):
        history = pipeline_result.dpo_result.history
        assert history.losses[-1] < history.losses[0]
        assert np.mean(history.accuracies[-5:]) >= np.mean(history.accuracies[:5])
        assert history.marginal_preferences[-1] > 0

    def test_fine_tuning_improves_specification_satisfaction(self, pipeline_result):
        before = pipeline_result.before_evaluation.satisfaction_ratio()
        after = pipeline_result.after_evaluation.satisfaction_ratio()
        assert after > before
        assert pipeline_result.improvement > 0

    def test_checkpoint_evaluations_cover_epochs(self, pipeline_result):
        epochs = sorted(pipeline_result.checkpoint_evaluations)
        assert epochs[0] == 0
        assert epochs[-1] == pipeline_result.dpo_result.checkpoint_epochs()[-1]

    def test_preference_pairs_prefer_higher_scores(self, pipeline_result):
        assert pipeline_result.preference_pairs
        assert all(pair.chosen_score >= pair.rejected_score for pair in pipeline_result.preference_pairs)
