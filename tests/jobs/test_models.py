"""The job/batch records and their explicit state machine."""

import pytest

from repro.jobs import (
    CANCELLED,
    FAILED,
    JOB_STATES,
    PENDING,
    RETRYING,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    Batch,
    InvalidTransitionError,
    Job,
)


def _job(**kwargs) -> Job:
    defaults = dict(
        job_id="j-000001",
        client_id="c",
        task="t",
        scenario="s",
        response="r",
        created_at=1.0,
        updated_at=1.0,
    )
    defaults.update(kwargs)
    return Job(**defaults)


class TestStateMachine:
    def test_happy_path_sets_score_and_timestamps(self):
        job = _job()
        running = job.transition(RUNNING, at=2.0, attempts=1)
        done = running.transition(SUCCEEDED, at=3.0, score=7)
        assert (running.state, running.attempts, running.updated_at) == (RUNNING, 1, 2.0)
        assert (done.state, done.score, done.updated_at) == (SUCCEEDED, 7, 3.0)
        assert done.created_at == 1.0  # creation time never moves
        assert done.is_terminal and not running.is_terminal
        assert job.state == PENDING  # frozen: the original is untouched

    def test_retry_loop_and_failure(self):
        job = _job().transition(RUNNING, at=2.0, attempts=1)
        retrying = job.transition(RETRYING, at=3.0, error="boom")
        again = retrying.transition(RUNNING, at=4.0, attempts=2)
        failed = again.transition(FAILED, at=5.0, error="boom again")
        assert retrying.error == "boom"
        assert again.attempts == 2
        assert (failed.state, failed.error) == (FAILED, "boom again")

    def test_success_clears_stale_error(self):
        job = _job().transition(RUNNING, at=2.0, attempts=1)
        job = job.transition(RETRYING, at=3.0, error="transient")
        job = job.transition(RUNNING, at=4.0, attempts=2)
        done = job.transition(SUCCEEDED, at=5.0, score=1)
        assert done.error is None

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
    def test_terminal_states_are_final(self, terminal):
        path = {SUCCEEDED: SUCCEEDED, FAILED: FAILED, CANCELLED: CANCELLED}[terminal]
        if terminal == CANCELLED:
            job = _job().transition(CANCELLED, at=2.0)
        else:
            job = _job().transition(RUNNING, at=2.0, attempts=1).transition(
                path, at=3.0, score=0 if terminal == SUCCEEDED else None
            )
        for state in JOB_STATES:
            with pytest.raises(InvalidTransitionError):
                job.transition(state, at=4.0)

    def test_illegal_moves_raise(self):
        with pytest.raises(InvalidTransitionError):
            _job().transition(SUCCEEDED, at=2.0, score=1)  # pending cannot skip running
        with pytest.raises(InvalidTransitionError):
            _job().transition(RETRYING, at=2.0)
        running = _job().transition(RUNNING, at=2.0, attempts=1)
        with pytest.raises(InvalidTransitionError):
            running.transition(CANCELLED, at=3.0)  # a running attempt cannot be aborted

    def test_validation(self):
        with pytest.raises(ValueError):
            _job(state="bogus")
        with pytest.raises(ValueError):
            _job(attempts=-1)
        with pytest.raises(ValueError):
            _job().transition("bogus", at=2.0)
        with pytest.raises(ValueError):  # a score only accompanies success
            _job().transition(RUNNING, at=2.0, score=3)

    def test_transition_table_is_total(self):
        assert set(VALID_TRANSITIONS) == set(JOB_STATES)
        for state in TERMINAL_STATES:
            assert not VALID_TRANSITIONS[state]


class TestRecords:
    def test_job_roundtrip(self):
        job = _job(batch_id="b-000001").transition(RUNNING, at=2.0, attempts=1).transition(
            SUCCEEDED, at=3.0, score=9
        )
        assert Job.from_record(job.to_record()) == job

    def test_batch_roundtrip(self):
        batch = Batch(
            batch_id="b-000001", client_id="c", job_ids=("j-000001", "j-000002"), created_at=1.0
        )
        assert Batch.from_record(batch.to_record()) == batch
        assert batch.to_record()["job_ids"] == ["j-000001", "j-000002"]
