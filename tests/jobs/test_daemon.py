"""The jobs daemon over a stub scorer: lifecycle, retries, quota, fairness."""

import time

import pytest

from repro.jobs import (
    CANCELLED,
    FAILED,
    PENDING,
    RETRYING,
    RUNNING,
    SUCCEEDED,
    JobsClient,
    JobsError,
    JobStore,
    QuotaExceededError,
    UnknownJobError,
)
from repro.utils.retry import RetryPolicy

TASK = "turn_right_traffic_light"  # resolves to scenario traffic_light_intersection


class TestLifecycle:
    def test_job_runs_to_success(self, daemon_factory, client):
        daemon, store, stub = daemon_factory()
        job = client.create_job(TASK, "1. Stop.")
        assert job["state"] == PENDING
        assert job["job_id"] == "j-000001"
        assert job["scenario"] == "traffic_light_intersection"  # resolved from the catalogue
        final = client.wait([job["job_id"]])[job["job_id"]]
        assert final["state"] == SUCCEEDED
        assert final["score"] == len("1. Stop.")  # the stub's score
        assert final["attempts"] == 1
        assert final["error"] is None

    def test_batch_is_admitted_atomically(self, daemon_factory, client):
        daemon_factory()
        result = client.create_batch(
            [
                {"task": TASK, "response": "1. Stop."},
                {"task": TASK, "response": "1. Go.", "scenario": "traffic_light_intersection"},
            ]
        )
        batch = result["batch"]
        assert batch["job_ids"] == ["j-000001", "j-000002"]
        assert all(job["batch_id"] == batch["batch_id"] for job in result["jobs"])
        final = client.wait_batch(batch["batch_id"])
        assert sorted(final) == batch["job_ids"]
        assert all(job["state"] == SUCCEEDED for job in final.values())

    def test_invalid_submissions_are_typed_errors(self, daemon_factory, client):
        daemon_factory()
        with pytest.raises(JobsError) as excinfo:
            client.create_job("no_such_task", "1. Stop.")
        assert excinfo.value.error_type == "invalid-request"
        with pytest.raises(JobsError) as excinfo:
            client.create_job(TASK, "1. Stop.", scenario="no_such_scenario")
        assert excinfo.value.error_type == "invalid-request"
        with pytest.raises(UnknownJobError):
            client.get_status("j-999999")
        with pytest.raises(UnknownJobError):
            client.get_batch("b-999999")

    def test_list_jobs_filters(self, daemon_factory, client):
        daemon_factory()
        job = client.create_job(TASK, "1. Stop.")
        client.wait([job["job_id"]])
        assert [j["job_id"] for j in client.list_jobs(state=SUCCEEDED)] == [job["job_id"]]
        assert client.list_jobs(state=PENDING) == []
        assert client.list_jobs(client_id="tester") != []
        assert client.list_jobs(client_id="someone-else") == []

    def test_stats_counts_states(self, daemon_factory, client):
        daemon_factory()
        job = client.create_job(TASK, "1. Stop.")
        client.wait([job["job_id"]])
        stats = client.stats()
        assert stats["states"][SUCCEEDED] == 1
        assert stats["queue_depth"] == 0
        assert stats["inflight"] == {}  # released on completion


class TestRetries:
    def test_transient_failures_retry_to_success(self, daemon_factory, client):
        daemon, store, stub = daemon_factory(
            fail_times={"1. Stop.": 2}, retry=RetryPolicy(max_attempts=3, base_delay=0.01)
        )
        job = client.create_job(TASK, "1. Stop.")
        final = client.wait([job["job_id"]])[job["job_id"]]
        assert final["state"] == SUCCEEDED
        assert final["attempts"] == 3  # two failures + the success
        assert stub.calls == ["1. Stop."] * 3

    def test_exhausted_retries_fail_and_release_quota(self, daemon_factory, client):
        daemon, store, stub = daemon_factory(
            fail_times={"1. Stop.": 99},
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            max_inflight_per_client=1,
        )
        job = client.create_job(TASK, "1. Stop.")
        final = client.wait([job["job_id"]])[job["job_id"]]
        assert final["state"] == FAILED
        assert final["attempts"] == 2
        assert "injected failure" in final["error"]
        assert client.stats()["inflight"] == {}
        # The quota slot is free again: a new submission is admitted.
        assert client.create_job(TASK, "1. Go.")["state"] == PENDING

    def test_retry_states_are_journaled(self, daemon_factory, client, jobs_root):
        daemon, store, stub = daemon_factory(
            fail_times={"1. Stop.": 1}, retry=RetryPolicy(max_attempts=2, base_delay=0.01)
        )
        job = client.create_job(TASK, "1. Stop.")
        client.wait([job["job_id"]])
        journal = (jobs_root / "store" / JobStore.JOURNAL_NAME).read_text()
        states = [
            line.split('"state": "')[1].split('"')[0]
            for line in journal.splitlines()
            if '"kind": "job"' in line
        ]
        assert states == [PENDING, RUNNING, RETRYING, RUNNING, SUCCEEDED]


class TestCancel:
    def test_pending_job_cancels_before_running(self, daemon_factory, client):
        daemon, store, stub = daemon_factory()
        gate = stub.gate("1. Blocker.")
        blocker = client.create_job(TASK, "1. Blocker.")
        victim = client.create_job(TASK, "1. Victim.")
        cancelled = client.cancel(victim["job_id"])
        assert cancelled["state"] == CANCELLED
        gate.set()
        client.wait([blocker["job_id"]])
        final = client.get_status(victim["job_id"])
        assert final["state"] == CANCELLED
        assert final["attempts"] == 0  # never started
        assert "1. Victim." not in stub.calls

    def test_terminal_and_running_jobs_are_not_cancellable(self, daemon_factory, client):
        daemon, store, stub = daemon_factory()
        gate = stub.gate("1. Running.")
        running = client.create_job(TASK, "1. Running.")
        deadline = time.monotonic() + 10
        while client.get_status(running["job_id"])["state"] != RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        with pytest.raises(JobsError) as excinfo:
            client.cancel(running["job_id"])
        assert excinfo.value.error_type == "not-cancellable"
        gate.set()
        client.wait([running["job_id"]])
        with pytest.raises(JobsError) as excinfo:
            client.cancel(running["job_id"])
        assert excinfo.value.error_type == "not-cancellable"


class TestQuota:
    def test_over_quota_submission_is_a_typed_client_error(self, daemon_factory, client):
        daemon, store, stub = daemon_factory(max_inflight_per_client=2)
        gate = stub.gate("1. Hold.")
        held = client.create_job(TASK, "1. Hold.")
        client.create_job(TASK, "1. Waiting.")
        with pytest.raises(QuotaExceededError) as excinfo:
            client.create_job(TASK, "1. Overflow.")
        assert excinfo.value.error_type == "quota-exceeded"
        # All-or-nothing for batches: nothing was admitted, so completing the
        # held job frees exactly one slot.
        with pytest.raises(QuotaExceededError):
            client.create_batch(
                [{"task": TASK, "response": "1. A."}, {"task": TASK, "response": "1. B."}]
            )
        gate.set()
        client.wait([held["job_id"]])
        assert client.create_job(TASK, "1. Fits now.")["state"] == PENDING

    def test_greedy_client_cannot_starve_another(self, daemon_factory, jobs_root):
        """With a greedy client's backlog queued first, a second client's job
        runs after at most one more greedy job — round-robin, not FIFO."""
        daemon, store, stub = daemon_factory(max_inflight_per_client=8)
        greedy = JobsClient(jobs_root / "daemon.sock", client_id="greedy", timeout=30)
        polite = JobsClient(jobs_root / "daemon.sock", client_id="polite", timeout=30)
        gate = stub.gate("1. Greedy 0.")
        greedy.create_batch(
            [{"task": TASK, "response": f"1. Greedy {n}."} for n in range(6)]
        )
        polite_job = polite.create_job(TASK, "1. Polite.")
        gate.set()
        polite.wait([polite_job["job_id"]])
        position = stub.calls.index("1. Polite.")
        assert position <= 2, f"polite job starved: execution order {stub.calls}"


class TestStreams:
    def test_stream_progress_reports_every_transition(self, daemon_factory, client):
        daemon_factory()
        job = client.create_job(TASK, "1. Stop.")
        events = list(client.stream_progress(job_ids=[job["job_id"]]))
        states = [e["job"]["state"] for e in events if e["type"] == "job"]
        # Initial snapshot + transitions; the stream may attach before or
        # after the run starts, but always ends with the terminal state.
        assert states[-1] == SUCCEEDED
        assert events[-1] == {"type": "end", "reason": "done"}

    def test_stream_by_batch(self, daemon_factory, client):
        daemon_factory()
        batch = client.create_batch(
            [{"task": TASK, "response": "1. A."}, {"task": TASK, "response": "1. B."}]
        )["batch"]
        events = list(client.stream_progress(batch_id=batch["batch_id"]))
        terminal = {
            e["job"]["job_id"]: e["job"]["state"]
            for e in events
            if e["type"] == "job" and e["job"]["state"] == SUCCEEDED
        }
        assert sorted(terminal) == batch["job_ids"]

    def test_stream_unknown_target_is_typed(self, daemon_factory, client):
        daemon_factory()
        with pytest.raises(UnknownJobError):
            list(client.stream_progress(job_ids=["j-424242"]))
        with pytest.raises(JobsError) as excinfo:
            list(client.stream_progress())
        assert excinfo.value.error_type == "invalid-request"


class TestRestart:
    def test_restart_resumes_pending_jobs(self, daemon_factory, client, jobs_root):
        daemon1, store1, stub1 = daemon_factory()
        gate = stub1.gate("1. Running one.")
        running = client.create_job(TASK, "1. Running one.")
        queued = client.create_batch(
            [{"task": TASK, "response": "1. Queued A."}, {"task": TASK, "response": "1. Queued B."}]
        )["batch"]
        deadline = time.monotonic() + 10
        while client.get_status(running["job_id"])["state"] != RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        daemon1.stop()  # graceful: queued jobs skip execution and stay durable
        gate.set()  # the in-flight attempt finishes and journals its success
        deadline = time.monotonic() + 10
        while store1.get(running["job_id"]).state != SUCCEEDED:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert [job.job_id for job in store1.pending_jobs()] == queued["job_ids"]
        store1.close()

        store2 = JobStore(jobs_root / "store", fsync=False)
        daemon2, _store, stub2 = daemon_factory(store=store2)
        final = client.wait(queued["job_ids"])
        assert all(job["state"] == SUCCEEDED for job in final.values())
        # The first daemon's completed job was not re-run by the second.
        assert "1. Running one." not in stub2.calls
        assert store2.get(running["job_id"]).state == SUCCEEDED

    def test_restart_requeues_job_killed_mid_attempt(self, daemon_factory, client, jobs_root):
        # Simulate dying mid-RUNNING: write the RUNNING record, never finish.
        store1 = JobStore(jobs_root / "store", fsync=False)
        from repro.jobs import Job

        job = Job(
            job_id="j-000001",
            client_id="tester",
            task=TASK,
            scenario="traffic_light_intersection",
            response="1. Interrupted.",
            created_at=1.0,
            updated_at=1.0,
        )
        store1.append_job(job)
        store1.append_job(job.transition(RUNNING, at=2.0, attempts=1))
        store1._journal.close()  # abandon without close(): no final snapshot

        store2 = JobStore(jobs_root / "store", fsync=False)
        daemon, _store, stub = daemon_factory(store=store2)
        final = client.wait(["j-000001"])["j-000001"]
        assert final["state"] == SUCCEEDED
        assert final["attempts"] == 2  # the interrupted attempt plus the re-run
        assert stub.calls == ["1. Interrupted."]
