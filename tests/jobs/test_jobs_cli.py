"""The ``repro-serve`` daemon/submit/status/watch subcommands end to end.

The headline assertion: ``submit --wait -o`` through a daemon produces a
byte-identical output file to the plain one-shot ``repro-serve`` run on the
same input — same records, same order, same JSON formatting — on every
backend.  The daemon is a *service* wrapper, never a different scorer.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.jobs import JobsClient

REPO_ROOT = Path(__file__).resolve().parents[2]
ENV = {**os.environ, "PYTHONPATH": "src"}
TASK = "turn_right_traffic_light"
RESPONSES = (
    "1. Observe the traffic light.\n"
    "2. If the traffic light is not green, stop.\n"
    "3. If there is no car from the left and no pedestrian, turn right.",
    "1. Go.",
    "1. If the traffic light is green, turn right.",
)


def _cli(*args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.serving.cli", *args],
        env=ENV,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        **kwargs,
    )


def _write_inputs(path: Path) -> None:
    with path.open("w", encoding="utf-8") as handle:
        for response in RESPONSES:
            handle.write(json.dumps({"task": TASK, "response": response}) + "\n")


@pytest.fixture
def cli_root():
    root = Path(tempfile.mkdtemp(prefix="repro-clijobs-", dir="/tmp"))
    yield root
    shutil.rmtree(root, ignore_errors=True)


@pytest.fixture
def daemon(cli_root):
    """A live subprocess daemon; yields (socket_path, client)."""
    procs = []

    def start(*extra_args):
        socket_path = cli_root / "daemon.sock"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serving.cli",
                "daemon",
                "--socket",
                str(socket_path),
                "--store",
                str(cli_root / "store"),
                *extra_args,
            ],
            env=ENV,
            cwd=REPO_ROOT,
            stderr=subprocess.PIPE,
            text=True,
        )
        procs.append(proc)
        client = JobsClient(socket_path, client_id="cli-test", timeout=60)
        deadline = time.monotonic() + 30
        while True:
            try:
                client.stats()
                return socket_path, client
            except (ConnectionRefusedError, FileNotFoundError):
                assert proc.poll() is None, f"daemon died:\n{proc.stderr.read()}"
                assert time.monotonic() < deadline, "daemon socket never came up"
                time.sleep(0.1)

    yield start
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


@pytest.fixture(scope="module")
def oneshot_output(tmp_path_factory):
    """The one-shot scored file every daemon backend must reproduce exactly."""
    root = tmp_path_factory.mktemp("cli-oneshot")
    inputs = root / "in.jsonl"
    output = root / "out.jsonl"
    _write_inputs(inputs)
    result = _cli(str(inputs), "-o", str(output))
    assert result.returncode == 0, result.stderr
    return output.read_bytes()


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_submit_wait_matches_oneshot_bytes(daemon, cli_root, oneshot_output, backend):
    socket_path, _client = daemon("--backend", backend)
    inputs = cli_root / "in.jsonl"
    output = cli_root / "out.jsonl"
    _write_inputs(inputs)
    result = _cli(str(inputs), "--socket", str(socket_path), "--wait", "-o", str(output))
    # Note: no subcommand word — "submit" is the positional-file form's twin.
    assert result.returncode == 2  # the one-shot parser rejects --socket
    result = _cli(
        "submit", str(inputs), "--socket", str(socket_path), "--wait", "-o", str(output)
    )
    assert result.returncode == 0, result.stderr
    assert output.read_bytes() == oneshot_output


def test_status_and_watch(daemon, cli_root):
    socket_path, client = daemon()
    batch = client.create_batch(
        [{"task": TASK, "response": "1. Stop."}, {"task": TASK, "response": "1. Go."}]
    )["batch"]

    watch = _cli("watch", "--socket", str(socket_path), "--batch", batch["batch_id"])
    assert watch.returncode == 0, watch.stderr
    events = [json.loads(line) for line in watch.stdout.splitlines()]
    assert events[-1] == {"type": "end", "reason": "done"}

    stats = _cli("status", "--socket", str(socket_path))
    assert stats.returncode == 0
    assert json.loads(stats.stdout)["states"]["succeeded"] == 2

    one = _cli("status", batch["job_ids"][0], "--socket", str(socket_path))
    assert one.returncode == 0
    record = json.loads(one.stdout)
    assert record["state"] == "succeeded"

    whole_batch = _cli(
        "status", "--socket", str(socket_path), "--batch", batch["batch_id"]
    )
    assert whole_batch.returncode == 0
    assert json.loads(whole_batch.stdout)["batch"]["job_ids"] == batch["job_ids"]


def test_submit_validates_before_contacting_the_daemon(cli_root):
    inputs = cli_root / "bad.jsonl"
    inputs.write_text(json.dumps({"task": "no_such_task", "response": "1. Go."}) + "\n")
    result = _cli("submit", str(inputs), "--socket", str(cli_root / "nowhere.sock"))
    assert result.returncode == 2
    assert "no_such_task" in result.stderr


def test_unreachable_daemon_is_a_clean_error(cli_root):
    inputs = cli_root / "in.jsonl"
    _write_inputs(inputs)
    result = _cli("submit", str(inputs), "--socket", str(cli_root / "nowhere.sock"))
    assert result.returncode == 1
    assert "cannot reach a daemon" in result.stderr


def test_daemon_and_oneshot_share_the_service_arguments():
    oneshot_help = _cli("--help").stdout
    daemon_help = _cli("daemon", "--help").stdout
    for flag in ("--backend", "--mode", "--cache-dir", "--seed"):
        assert flag in oneshot_help
        assert flag in daemon_help
    assert "daemon" in oneshot_help  # the epilog advertises daemon mode
