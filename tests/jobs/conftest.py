"""Fixtures for the jobs-daemon suite: an in-process daemon over a stub scorer.

The daemon's durability, quota, fairness and retry behavior are independent
of what actually computes scores, so most tests run a :class:`StubService`
(score = response length, with injectable failures and gates) on a real
dispatcher, store and Unix socket — fast, deterministic, and exercising the
same locking as production.  The crash-recovery and CLI suites use real
subprocess daemons with the real ``FeedbackService`` instead.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from pathlib import Path

import pytest

from repro.jobs import JobsClient, JobsDaemon, JobStore
from repro.serving import Dispatcher

#: A task from the driving catalogue (resolves to a scenario without extras).
TASK = "turn_right_traffic_light"


class StubService:
    """Scores a response as ``len(response)``; failures and gates injectable.

    ``fail_times`` maps a response string to how many attempts on it must
    raise before one succeeds.  ``gate(response)`` returns an event the next
    attempt on that response blocks on, which lets a test hold a job
    mid-``RUNNING`` deterministically.  ``calls`` records the responses in
    execution order (the dispatcher runs jobs one at a time).
    """

    def __init__(self, fail_times: dict | None = None):
        self.fail_times = dict(fail_times) if fail_times is not None else {}
        self.calls: list = []
        self._gates: dict = {}

    def gate(self, response: str) -> threading.Event:
        event = threading.Event()
        self._gates[response] = event
        return event

    def release_all(self) -> None:
        for event in self._gates.values():
            event.set()

    def score_batch(self, jobs) -> list:
        scores = []
        for job in jobs:
            self.calls.append(job.response)
            gate = self._gates.get(job.response)
            if gate is not None:
                assert gate.wait(timeout=30), f"gate for {job.response!r} never released"
            remaining = self.fail_times.get(job.response, 0)
            if remaining:
                self.fail_times[job.response] = remaining - 1
                raise RuntimeError(f"injected failure for {job.response!r}")
            scores.append(len(job.response))
        return scores


@pytest.fixture
def jobs_root():
    """A short-pathed scratch directory (AF_UNIX paths are length-capped)."""
    root = Path(tempfile.mkdtemp(prefix="repro-jobs-", dir="/tmp"))
    yield root
    shutil.rmtree(root, ignore_errors=True)


@pytest.fixture
def daemon_factory(jobs_root):
    """Start in-process daemons over stub scorers; tears everything down.

    Returns ``start(**kwargs) -> (daemon, store, stub)``.  Recognized kwargs:
    ``fail_times`` (for the stub), ``store`` (to restart on an existing
    store), ``real_sleep`` (keep real backoff sleeps instead of no-ops), and
    anything :class:`JobsDaemon` accepts.
    """
    started: list = []

    def start(*, fail_times=None, store=None, real_sleep=False, **daemon_kwargs):
        dispatcher = Dispatcher(name="test-jobs")
        stub = StubService(fail_times)
        if store is None:
            store = JobStore(jobs_root / "store", fsync=False)
        if not real_sleep:
            daemon_kwargs.setdefault("sleep", lambda _seconds: None)
        daemon = JobsDaemon(
            jobs_root / "daemon.sock", store, stub, dispatcher=dispatcher, **daemon_kwargs
        )
        daemon.start()
        started.append((daemon, dispatcher, store, stub))
        return daemon, store, stub

    yield start
    for daemon, dispatcher, store, stub in started:
        stub.release_all()
        daemon.stop()
        dispatcher.close()
        store.close()


@pytest.fixture
def client(jobs_root):
    """A :class:`JobsClient` pointed at the factory daemon's socket."""
    return JobsClient(jobs_root / "daemon.sock", client_id="tester", timeout=30)
