"""Per-client admission: all-or-nothing caps, explicit rejections."""

import pytest

from repro.jobs import QuotaExceeded, QuotaLedger


class TestQuotaLedger:
    def test_counts_per_client(self):
        ledger = QuotaLedger()
        ledger.admit("a", 2)
        ledger.admit("b")
        assert ledger.inflight("a") == 2
        assert ledger.inflight("b") == 1
        assert ledger.inflight("unknown") == 0
        ledger.release("a")
        assert ledger.snapshot() == {"a": 1, "b": 1}
        ledger.release("a")
        ledger.release("b")
        assert ledger.snapshot() == {}

    def test_cap_rejects_whole_batch(self):
        ledger = QuotaLedger(max_inflight=3)
        ledger.admit("a", 2)
        with pytest.raises(QuotaExceeded) as excinfo:
            ledger.admit("a", 2)  # 2 + 2 > 3: nothing is reserved
        assert ledger.inflight("a") == 2
        exc = excinfo.value
        assert (exc.client_id, exc.inflight, exc.requested, exc.limit) == ("a", 2, 2, 3)
        ledger.admit("a")  # exactly at the cap is fine
        assert ledger.inflight("a") == 3

    def test_caps_are_per_client(self):
        ledger = QuotaLedger(max_inflight=1)
        ledger.admit("a")
        ledger.admit("b")  # a's full quota does not consume b's
        with pytest.raises(QuotaExceeded):
            ledger.admit("a")

    def test_force_bypasses_cap(self):
        # The restart path re-admits already-accepted jobs even when the new
        # daemon was started with a lower cap.
        ledger = QuotaLedger(max_inflight=1)
        ledger.admit("a", 5, force=True)
        assert ledger.inflight("a") == 5
        with pytest.raises(QuotaExceeded):
            ledger.admit("a")  # new submissions still respect the cap

    def test_uncapped_ledger_still_counts(self):
        ledger = QuotaLedger(max_inflight=None)
        ledger.admit("a", 10_000)
        assert ledger.inflight("a") == 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            QuotaLedger(max_inflight=0)
        ledger = QuotaLedger()
        with pytest.raises(ValueError):
            ledger.admit("a", 0)
        with pytest.raises(ValueError):
            ledger.release("a", 1)  # nothing inflight to release
        ledger.admit("a")
        with pytest.raises(ValueError):
            ledger.release("a", 2)
