"""Durability of the journal + snapshot job store."""

import json

import pytest

from repro.jobs import Batch, Job, JobStore, PENDING, RUNNING, SUCCEEDED


def _job(n: int, state: str = PENDING, **kwargs) -> Job:
    defaults = dict(
        job_id=f"j-{n:06d}",
        client_id="c",
        task="t",
        scenario="s",
        response=f"r{n}",
        state=state,
        created_at=1.0,
        updated_at=1.0,
    )
    defaults.update(kwargs)
    return Job(**defaults)


class TestJournalReplay:
    def test_reopen_restores_jobs_and_batches(self, tmp_path):
        with JobStore(tmp_path / "s") as store:
            store.append_job(_job(1))
            store.append_job(_job(2))
            store.append_batch(
                Batch(batch_id="b-000001", client_id="c", job_ids=("j-000001",), created_at=1.0)
            )
        with JobStore(tmp_path / "s") as reopened:
            assert [job.job_id for job in reopened.jobs()] == ["j-000001", "j-000002"]
            assert reopened.get_batch("b-000001").job_ids == ("j-000001",)

    def test_last_record_per_job_wins(self, tmp_path):
        with JobStore(tmp_path / "s") as store:
            job = _job(1)
            store.append_job(job)
            job = job.transition(RUNNING, at=2.0, attempts=1)
            store.append_job(job)
            store.append_job(job.transition(SUCCEEDED, at=3.0, score=4))
        with JobStore(tmp_path / "s") as reopened:
            final = reopened.get("j-000001")
            assert (final.state, final.score, final.attempts) == (SUCCEEDED, 4, 1)
            assert reopened.pending_jobs() == []

    def test_torn_final_line_is_dropped(self, tmp_path):
        store = JobStore(tmp_path / "s")
        store.append_job(_job(1))
        store.append_job(_job(2))
        # Simulate a crash mid-append: a truncated trailing line, no close().
        journal = tmp_path / "s" / JobStore.JOURNAL_NAME
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "job", "job": {"job_id": "j-0000')
        with JobStore(tmp_path / "s") as reopened:
            assert [job.job_id for job in reopened.jobs()] == ["j-000001", "j-000002"]

    def test_unknown_record_kind_rejected(self, tmp_path):
        store = JobStore(tmp_path / "s")
        journal = tmp_path / "s" / JobStore.JOURNAL_NAME
        with journal.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="unknown journal record kind"):
            JobStore(tmp_path / "s")
        store.close()


class TestSnapshot:
    def test_periodic_snapshot_truncates_journal(self, tmp_path):
        store = JobStore(tmp_path / "s", snapshot_every=3, fsync=False)
        for n in range(1, 4):
            store.append_job(_job(n))
        journal = tmp_path / "s" / JobStore.JOURNAL_NAME
        snapshot = tmp_path / "s" / JobStore.SNAPSHOT_NAME
        assert snapshot.exists()
        assert journal.read_text() == ""  # everything rolled into the snapshot
        # Appends after the snapshot land in the (reset) journal again.
        store.append_job(_job(4))
        assert json.loads(journal.read_text())["job"]["job_id"] == "j-000004"
        store.close()
        with JobStore(tmp_path / "s") as reopened:
            assert len(reopened.jobs()) == 4

    def test_snapshot_is_idempotent_with_journal_replay(self, tmp_path):
        # A crash *between* snapshot and truncation replays journal records
        # already in the snapshot; last-wins replay makes that harmless.
        store = JobStore(tmp_path / "s", fsync=False)
        job = _job(1)
        store.append_job(job)
        store.snapshot()
        journal = tmp_path / "s" / JobStore.JOURNAL_NAME
        with journal.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "job", "job": job.to_record()}) + "\n")
        with JobStore(tmp_path / "s") as reopened:
            assert len(reopened.jobs()) == 1
        store.close()

    def test_close_snapshots_and_rejects_appends(self, tmp_path):
        store = JobStore(tmp_path / "s")
        store.append_job(_job(1))
        store.close()
        store.close()  # idempotent
        assert (tmp_path / "s" / JobStore.SNAPSHOT_NAME).exists()
        with pytest.raises(ValueError, match="closed JobStore"):
            store.append_job(_job(2))

    def test_snapshot_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            JobStore(tmp_path / "s", snapshot_every=0)


class TestQueries:
    def test_pending_jobs_excludes_terminal(self, tmp_path):
        with JobStore(tmp_path / "s") as store:
            store.append_job(_job(1))
            running = _job(2).transition(RUNNING, at=2.0, attempts=1)
            store.append_job(running)
            store.append_job(running.transition(SUCCEEDED, at=3.0, score=1))
            store.append_job(_job(3))
            assert [job.job_id for job in store.pending_jobs()] == ["j-000001", "j-000003"]

    def test_get_unknown_returns_none(self, tmp_path):
        with JobStore(tmp_path / "s") as store:
            assert store.get("j-999999") is None
            assert store.get_batch("b-999999") is None
